"""Command-line interface.

Subcommands::

    repro-floorplan circuits                 # list bundled circuits
    repro-floorplan generate ...             # write a synthetic circuit
    repro-floorplan floorplan CIRCUIT ...    # anneal, report, render
    repro-floorplan estimate CIRCUIT ...     # congestion of one packing
    repro-floorplan experiment {1,2,3} ...   # reproduce the paper tables
    repro-floorplan figure8                  # approximation accuracy
    repro-floorplan trace TRACE.jsonl        # summarize a --trace file
    repro-floorplan serve --root DIR ...     # run the floorplanning service
    repro-floorplan submit CIRCUIT ...       # submit a job to a service
    repro-floorplan peek CKPT                # identify a checkpoint file

``CIRCUIT`` is an MCNC name (apte/xerox/hp/ami33/ami49) or a path to a
YAL-flavoured circuit file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.anneal import FloorplanObjective
from repro.congestion import FixedGridModel, IrregularGridModel, JudgingModel
from repro.data import MCNC_CIRCUITS, load_mcnc, read_yal, write_yal
from repro.experiments.config import active_profile, circuit_config
from repro.experiments.exp1 import format_experiment1, run_experiment1
from repro.experiments.exp2 import format_experiment2, run_experiment2
from repro.experiments.exp3 import format_experiment3, run_experiment3
from repro.experiments.figures import figure8_default_cases
from repro.experiments.runner import run_once
from repro.experiments.tables import format_table
from repro.netlist import Netlist, clustered_circuit, random_circuit
from repro.pins import assign_pins
from repro.viz import (
    congestion_svg,
    floorplan_svg,
    render_congestion_ascii,
    render_floorplan_ascii,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-floorplan",
        description="Irregular-Grid congestion model for floorplan design "
        "(reproduction of Hsieh & Hsieh, DATE 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("circuits", help="list the bundled MCNC-like circuits")

    gen = sub.add_parser("generate", help="write a synthetic circuit file")
    gen.add_argument("output", type=Path, help="destination .yal path")
    gen.add_argument("--modules", type=int, default=20)
    gen.add_argument("--nets", type=int, default=60)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--clustered",
        action="store_true",
        help="bias nets into clusters (creates congestion hot spots)",
    )

    fp = sub.add_parser("floorplan", help="anneal a circuit and report")
    fp.add_argument(
        "circuit",
        nargs="?",
        default=None,
        help="MCNC name or .yal path (optional with --list-* flags)",
    )
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument(
        "--repr",
        dest="representation",
        choices=("polish", "sp", "btree"),
        default="polish",
        help="floorplan representation to anneal over",
    )
    fp.add_argument(
        "--driver",
        choices=("multistart", "tempering", "portfolio"),
        default="multistart",
        help="search driver: independent best-of-N restarts (default), "
        "replica-exchange tempering, or the representation portfolio",
    )
    fp.add_argument(
        "--rounds",
        type=int,
        default=None,
        metavar="N",
        help="scheduling rounds for --driver tempering/portfolio "
        "(default 3); on --resume, extends or shortens the remaining "
        "schedule",
    )
    fp.add_argument(
        "--restarts",
        type=int,
        default=1,
        help="independent seeded runs; the best result is reported "
        "(for tempering: replica count; for portfolio: legs per round)",
    )
    fp.add_argument(
        "--list-drivers",
        action="store_true",
        help="list the registered search drivers and exit",
    )
    fp.add_argument(
        "--list-reprs",
        action="store_true",
        help="list the registered floorplan representations and exit",
    )
    fp.add_argument(
        "--list-backends",
        action="store_true",
        help="list the registered compute backends and exit",
    )
    fp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for --restarts > 1 (1 = sequential; "
        "results are identical either way)",
    )
    fp.add_argument("--gamma", type=float, default=0.0, help="congestion weight")
    fp.add_argument("--grid-size", type=float, default=None, help="IR unit pitch (um)")
    fp.add_argument(
        "--backend",
        choices=("numpy", "numba", "python"),
        default="numpy",
        help="compute backend for the hot-path kernels (numba falls "
        "back to numpy with a warning when not installed)",
    )
    fp.add_argument(
        "--perf",
        action="store_true",
        help="print the per-phase timing breakdown and cache statistics",
    )
    fp.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="stream a structured JSONL trace (spans, per-step events, "
        "progress snapshots) to PATH; summarize it later with the "
        "`trace` subcommand",
    )
    fp.add_argument(
        "--metrics-every",
        type=int,
        default=0,
        metavar="N",
        help="sample a progress snapshot every N temperature steps "
        "(workers stream theirs back to the coordinator); 0 disables "
        "sampling",
    )
    fp.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable the dirty-net delta path and per-net congestion "
        "memoization (the always-from-scratch evaluator)",
    )
    fp.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="write atomic checkpoints to this file during annealing "
        "(single runs, or driver-level for tempering/portfolio); "
        "resume later with --resume",
    )
    fp.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="STEPS",
        help="temperature steps between checkpoints (default 1); for "
        "tempering/portfolio: scheduling *rounds* between driver "
        "checkpoints",
    )
    fp.add_argument(
        "--resume",
        type=Path,
        default=None,
        help="continue an interrupted run from its checkpoint file "
        "(bit-identical to the uninterrupted run; the checkpoint's "
        "circuit and configuration are used; driver checkpoints "
        "restore their driver automatically)",
    )
    fp.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; the run stops gracefully with "
        "best-so-far (and a final checkpoint, if configured) when it "
        "expires",
    )
    fp.add_argument("--render", action="store_true", help="print an ASCII floorplan")
    fp.add_argument("--svg", type=Path, default=None, help="write an SVG rendering")
    fp.add_argument(
        "--save-placement",
        type=Path,
        default=None,
        help="save the annealed floorplan to a placement file",
    )

    est = sub.add_parser(
        "estimate", help="estimate congestion of an annealed floorplan"
    )
    est.add_argument("circuit", help="MCNC name or .yal path")
    est.add_argument("--seed", type=int, default=0)
    est.add_argument(
        "--model",
        choices=("irgrid", "fixed"),
        default="irgrid",
    )
    est.add_argument("--grid-size", type=float, default=None)
    est.add_argument(
        "--placement",
        type=Path,
        default=None,
        help="estimate a saved placement instead of annealing",
    )
    est.add_argument("--render", action="store_true", help="ASCII heat map")
    est.add_argument("--svg", type=Path, default=None, help="write heat map SVG")
    est.add_argument(
        "--explain",
        action="store_true",
        help="attribute the hottest IR-grids to their contributing nets",
    )

    exp = sub.add_parser("experiment", help="reproduce a paper experiment")
    exp.add_argument("number", type=int, choices=(1, 2, 3))
    exp.add_argument(
        "--circuits",
        nargs="+",
        default=None,
        help="experiment 1 circuit subset (default: all five)",
    )
    exp.add_argument(
        "--circuit", default="ami33", help="experiment 2/3 circuit"
    )

    sub.add_parser("figure8", help="approximation accuracy curves")

    tr = sub.add_parser(
        "trace", help="validate and summarize a --trace JSONL file"
    )
    tr.add_argument("path", type=Path, help="trace file written by --trace")
    tr.add_argument(
        "--json",
        action="store_true",
        help="print the summary as JSON instead of tables",
    )
    tr.add_argument(
        "--width", type=int, default=60, help="cost-curve plot width"
    )

    srv = sub.add_parser(
        "serve",
        help="run the floorplanning job service (crash-safe queue + "
        "supervised worker fleet; SIGTERM drains gracefully)",
    )
    srv.add_argument(
        "--root",
        type=Path,
        default=Path("service-data"),
        help="state directory (journal, snapshots, results, checkpoints); "
        "restarting on the same root resumes interrupted jobs",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8712)
    srv.add_argument("--workers", type=int, default=2)
    srv.add_argument(
        "--tenant-quota",
        type=int,
        default=None,
        help="max active (queued+running) jobs per tenant (default: none)",
    )
    srv.add_argument(
        "--client-timeout",
        type=float,
        default=10.0,
        help="seconds a client may stall mid-request before a 408",
    )
    srv.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="wall-clock seconds per job attempt before the pool is killed",
    )
    srv.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=30.0,
        help="seconds of worker heartbeat staleness that count as a hang",
    )
    srv.add_argument("--max-retries", type=int, default=2)
    srv.add_argument("--max-pool-rebuilds", type=int, default=2)

    sm = sub.add_parser(
        "submit", help="submit a floorplanning job to a running service"
    )
    sm.add_argument("circuit", help="MCNC name or YAL circuit file")
    sm.add_argument("--host", default="127.0.0.1")
    sm.add_argument("--port", type=int, default=8712)
    sm.add_argument("--representation", default="polish",
                    choices=("polish", "sp", "btree"))
    sm.add_argument("--seed", type=int, default=0)
    sm.add_argument("--alpha", type=float, default=1.0)
    sm.add_argument("--beta", type=float, default=1.0)
    sm.add_argument("--gamma", type=float, default=0.0)
    sm.add_argument("--grid-size", type=float, default=None,
                    help="congestion grid pitch (default: per-circuit)")
    sm.add_argument("--backend", default=None)
    sm.add_argument("--max-steps", type=int, default=200)
    sm.add_argument("--moves-per-temperature", type=int, default=None)
    sm.add_argument("--priority", type=int, default=0,
                    help="higher runs first")
    sm.add_argument("--tenant", default="default")
    sm.add_argument("--deadline", type=float, default=None,
                    help="wall-clock budget; the job returns best-so-far")
    sm.add_argument("--idempotency-key", default=None,
                    help="client identity for safe resubmits "
                    "(default: generated)")
    sm.add_argument("--no-wait", action="store_true",
                    help="print the job id and exit instead of waiting")
    sm.add_argument("--timeout", type=float, default=600.0,
                    help="seconds to wait for the result")

    pk = sub.add_parser(
        "peek", help="identify a checkpoint file without resuming it"
    )
    pk.add_argument("path", type=Path, help="engine or driver checkpoint")
    pk.add_argument("--json", action="store_true")
    return parser


def _load_circuit(spec: str) -> Netlist:
    if spec.lower() in MCNC_CIRCUITS:
        return load_mcnc(spec)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"error: {spec!r} is neither an MCNC circuit "
            f"({sorted(MCNC_CIRCUITS)}) nor an existing file"
        )
    return read_yal(path)


def _grid_size_for(netlist: Netlist, override: Optional[float]) -> float:
    if override is not None:
        return override
    try:
        return circuit_config(netlist.name).ir_grid_size
    except KeyError:
        # Synthetic circuit: a pitch around 1/30 of the chip edge keeps
        # the route model meaningful at any scale.
        edge = netlist.total_module_area ** 0.5
        return max(edge / 30.0, 1e-6)


def _cmd_circuits() -> int:
    rows = []
    for name, spec in MCNC_CIRCUITS.items():
        rows.append(
            [
                name,
                spec.n_modules,
                spec.n_nets,
                spec.total_area_um2 / 1e6,
            ]
        )
    print(
        format_table(
            ["circuit", "modules", "nets", "module area mm2"],
            rows,
            title="Bundled MCNC-like circuits",
        )
    )
    return 0


def _cmd_generate(args) -> int:
    if args.clustered:
        netlist = clustered_circuit(args.modules, args.nets, seed=args.seed)
    else:
        netlist = random_circuit(args.modules, args.nets, seed=args.seed)
    write_yal(netlist, args.output)
    print(f"wrote {netlist} to {args.output}")
    return 0


def _cmd_list_registries(args) -> int:
    """Print the requested registries (drivers, representations,
    backends) with their one-line descriptions."""
    from repro.backend import backend_descriptions
    from repro.engine import driver_descriptions, representation_descriptions

    sections = []
    if args.list_drivers:
        sections.append(("search drivers", driver_descriptions()))
    if args.list_reprs:
        sections.append(("representations", representation_descriptions()))
    if args.list_backends:
        sections.append(("compute backends", backend_descriptions()))
    for i, (title, entries) in enumerate(sections):
        if i:
            print()
        print(f"{title}:")
        width = max(len(name) for name in entries)
        for name, description in entries.items():
            print(f"  {name:<{width}}  {description}")
    return 0


def _cmd_floorplan(args) -> int:
    if args.list_drivers or args.list_reprs or args.list_backends:
        return _cmd_list_registries(args)
    if args.circuit is None and args.resume is None:
        raise SystemExit(
            "error: a circuit is required (or --resume / a --list-* flag)"
        )
    if args.restarts < 1:
        raise SystemExit("error: --restarts must be >= 1")
    if args.rounds is not None and args.rounds < 1:
        raise SystemExit("error: --rounds must be >= 1")
    if args.workers < 1:
        raise SystemExit("error: --workers must be >= 1")
    if args.checkpoint_every < 1:
        raise SystemExit("error: --checkpoint-every must be >= 1")
    if args.metrics_every < 0:
        raise SystemExit("error: --metrics-every must be >= 0")
    observer = _make_observer(args)
    if args.driver != "multistart":
        netlist = None
        grid_size = None
        if args.circuit is not None:
            netlist = _load_circuit(args.circuit)
            grid_size = _grid_size_for(netlist, args.grid_size)
        result, judging_cost, netlist, outcome = _run_driver(
            args, netlist, grid_size, not args.no_incremental, observer
        )
        floorplan = result.floorplan
        b = result.breakdown
        print(
            f"{netlist.name} [{args.driver}/{result.representation}, "
            f"seed {result.seed}]: area {b.area / 1e6:.4g} mm^2, "
            f"wirelength {b.wirelength:.0f} um, "
            f"congestion {b.congestion:.4g}, judge {judging_cost:.4g}"
        )
        perf, cache_stats = _merged_perf_view(
            outcome, result.perf, result.cache_stats
        )
        moves_per_second = result.moves_per_second
        n_moves = result.n_moves
        _finish_observer(args, observer)
        return _floorplan_outputs(
            args, netlist, floorplan, perf, moves_per_second, n_moves,
            cache_stats,
        )
    if args.rounds is not None:
        raise SystemExit(
            "error: --rounds only applies to --driver tempering/portfolio"
        )
    if args.circuit is None:
        raise SystemExit("error: a circuit is required")
    netlist = _load_circuit(args.circuit)
    grid_size = _grid_size_for(netlist, args.grid_size)
    incremental = not args.no_incremental
    fault_tolerant = (
        args.checkpoint is not None
        or args.resume is not None
        or args.deadline is not None
    )
    if args.restarts > 1:
        if args.checkpoint is not None or args.resume is not None:
            raise SystemExit(
                "error: --checkpoint/--resume support single runs only "
                "(--restarts 1)"
            )
        result, judging_cost, outcome = _run_multistart(
            args, netlist, grid_size, incremental, observer
        )
        floorplan = result.floorplan
        b = result.breakdown
        print(
            f"{netlist.name} [{args.representation}, best of "
            f"{args.restarts}, seed {result.seed}]: "
            f"area {b.area / 1e6:.4g} mm^2, "
            f"wirelength {b.wirelength:.0f} um, congestion {b.congestion:.4g}, "
            f"judge {judging_cost:.4g}, {result.runtime_seconds:.1f} s"
        )
        perf, cache_stats = _merged_perf_view(
            outcome, result.perf, result.cache_stats
        )
        moves_per_second = result.moves_per_second
        n_moves = result.n_moves
    elif fault_tolerant or observer is not None:
        result, judging_cost, netlist = _run_single_controlled(
            args, netlist, grid_size, incremental, observer
        )
        floorplan = result.floorplan
        b = result.breakdown
        status = (
            "" if result.completed else f", stopped early ({result.stop_reason})"
        )
        print(
            f"{netlist.name} [{result.representation}, seed {result.seed}]: "
            f"area {b.area / 1e6:.4g} mm^2, "
            f"wirelength {b.wirelength:.0f} um, congestion {b.congestion:.4g}, "
            f"judge {judging_cost:.4g}, {result.runtime_seconds:.1f} s{status}"
        )
        perf = result.perf
        moves_per_second = result.moves_per_second
        n_moves = result.n_moves
        cache_stats = result.cache_stats
    else:
        objective = _build_objective(args, netlist, grid_size, incremental)
        record = run_once(
            netlist,
            objective,
            seed=args.seed,
            representation=args.representation,
        )
        floorplan = record.floorplan
        b = record.result.breakdown
        print(
            f"{netlist.name}: area {record.area_mm2:.4g} mm^2, "
            f"wirelength {b.wirelength:.0f} um, congestion {b.congestion:.4g}, "
            f"judge {record.judging_cost:.4g}, {record.runtime_seconds:.1f} s"
        )
        perf = record.result.perf
        moves_per_second = record.result.moves_per_second
        n_moves = record.result.n_moves
        cache_stats = record.result.cache_stats
    _finish_observer(args, observer)
    return _floorplan_outputs(
        args, netlist, floorplan, perf, moves_per_second, n_moves, cache_stats
    )


def _make_observer(args):
    """Build the coordinator :class:`~repro.obs.RunObserver` from
    ``--trace``/``--metrics-every``; None when observability is off."""
    if args.trace is None and args.metrics_every == 0:
        return None
    from repro.obs import RunObserver, Tracer

    tracer = Tracer(args.trace) if args.trace is not None else None
    return RunObserver(tracer=tracer, progress_every=args.metrics_every)


def _obs_plan_for(observer):
    """The picklable worker-side recipe matching a coordinator
    observer (None when snapshot sampling is off)."""
    if observer is None or observer.progress_every <= 0:
        return None
    from repro.obs import ObsPlan

    return ObsPlan(
        progress_every=observer.progress_every,
        top_k=observer.progress_top_k,
    )


def _run_span(observer, **attrs):
    """The root ``run`` span for the whole search (a null context when
    tracing is off)."""
    from contextlib import nullcontext

    if observer is None:
        return nullcontext()
    return observer.span("run", **attrs)


def _finish_observer(args, observer) -> None:
    """Close out the observer: emit the aggregated ``run_metrics``
    line, flush the trace file, and tell the user where it went."""
    if observer is None:
        return
    observer.finalize()
    observer.tracer.close()
    if args.trace is not None:
        print(
            f"wrote trace to {args.trace} "
            f"({observer.tracer.n_events} events)"
        )


def _merged_perf_view(outcome, fallback_perf, fallback_cache_stats):
    """The ``--perf`` view for a multi-job outcome: every delivered
    job's timers/counters and cache statistics folded together
    (worker-side measurements included), falling back to the best
    result's own numbers when the outcome carries none (e.g. tempering
    sweeps, which run outside engine perf accounting)."""
    merged = outcome.merged_perf()
    caches = outcome.merged_cache_stats()
    perf = merged if (merged.timers or merged.counters) else fallback_perf
    return perf, caches if caches else fallback_cache_stats


def _floorplan_outputs(
    args, netlist, floorplan, perf, moves_per_second, n_moves, cache_stats
) -> int:
    """The floorplan subcommand's shared reporting tail (--perf,
    --render, --svg, --save-placement)."""
    if args.perf:
        if perf is not None:
            print(perf.report(title="-- perf breakdown --"))
            print(f"moves/sec: {moves_per_second:.1f} ({n_moves} moves)")
        from repro.perf import format_cache_stats

        print(format_cache_stats(cache_stats, title="-- cache statistics --"))
    if args.render:
        print(render_floorplan_ascii(floorplan))
    if args.svg is not None:
        args.svg.write_text(floorplan_svg(floorplan))
        print(f"wrote {args.svg}")
    if args.save_placement is not None:
        from repro.data import write_placement

        write_placement(floorplan, args.save_placement, netlist.name)
        print(f"wrote {args.save_placement}")
    return 0


def _build_objective(args, netlist, grid_size, incremental) -> FloorplanObjective:
    backend = getattr(args, "backend", None)
    if args.gamma > 0:
        return FloorplanObjective(
            netlist,
            alpha=1.0,
            beta=1.0,
            gamma=args.gamma,
            congestion_model=IrregularGridModel(
                grid_size, use_cache=incremental
            ),
            incremental=incremental,
            backend=backend,
        )
    return FloorplanObjective(
        netlist,
        alpha=1.0,
        beta=1.0,
        gamma=0.0,
        pin_grid_size=grid_size,
        incremental=incremental,
        backend=backend,
    )


def _objective_spec(args, grid_size, incremental):
    from repro.engine import ObjectiveSpec

    return ObjectiveSpec(
        alpha=1.0,
        beta=1.0,
        gamma=args.gamma,
        congestion_grid_size=grid_size,
        pin_grid_size=grid_size if args.gamma <= 0 else None,
        incremental=incremental,
        backend=getattr(args, "backend", None),
    )


def _run_single_controlled(args, netlist, grid_size, incremental, observer=None):
    """One annealing run under a RunControl: checkpointing, resume,
    deadline, graceful Ctrl-C, and (with ``--trace``) tracing."""
    from repro.engine import AnnealEngine, RunControl, install_signal_handlers
    from repro.experiments.runner import judge_floorplan

    checkpoint_path = args.checkpoint
    if args.resume is not None and checkpoint_path is None:
        # Resuming without an explicit --checkpoint keeps checkpointing
        # into the same file, so a resumed run is itself resumable.
        checkpoint_path = args.resume
    control = RunControl(
        deadline_seconds=args.deadline,
        checkpoint_path=checkpoint_path,
        checkpoint_every=args.checkpoint_every,
    )
    if args.resume is not None:
        engine = AnnealEngine.resume(args.resume)
        netlist = engine.netlist
        print(f"resuming from {args.resume}")
    else:
        profile = active_profile()
        engine = AnnealEngine(
            netlist,
            representation=args.representation,
            objective_spec=_objective_spec(args, grid_size, incremental),
            seed=args.seed,
            moves_per_temperature=profile.moves_per_temperature(
                netlist.n_modules
            ),
            schedule=profile.schedule(),
        )
    span = _run_span(
        observer, circuit=netlist.name, driver="single",
        representation=engine.representation.name, seed=engine.seed,
    )
    with install_signal_handlers(control), span:
        result = engine.run(control=control, observer=observer)
    if control.checkpoints_written:
        print(
            f"wrote {control.checkpoints_written} checkpoint(s) to "
            f"{control.checkpoint_path}"
        )
    judging_cost = judge_floorplan(result.floorplan, netlist, 10.0)
    return result, judging_cost, netlist


def _run_multistart(args, netlist, grid_size, incremental, observer=None):
    from repro.engine import (
        MultiStartEngine,
        RunControl,
        install_signal_handlers,
    )
    from repro.experiments.runner import judge_floorplan

    profile = active_profile()
    multi = MultiStartEngine(
        netlist,
        representation=args.representation,
        restarts=args.restarts,
        seed=args.seed,
        objective_spec=_objective_spec(args, grid_size, incremental),
        moves_per_temperature=profile.moves_per_temperature(netlist.n_modules),
        schedule=profile.schedule(),
        workers=args.workers,
        obs_plan=_obs_plan_for(observer),
    )
    control = RunControl(deadline_seconds=args.deadline)
    span = _run_span(
        observer, circuit=netlist.name, driver="multistart",
        representation=args.representation, restarts=args.restarts,
    )
    with install_signal_handlers(control), span:
        outcome = multi.run(control=control, observer=observer)
    costs = ", ".join(f"{r.seed}: {r.cost:.4g}" for r in outcome.results)
    print(f"restart costs ({outcome.workers} worker(s)): {costs}")
    for report in outcome.reports:
        if report.failures or report.status != "ok":
            print(f"  {report.summary()}")
    if outcome.degraded:
        print(
            f"  (pool unhealthy after {outcome.pool_rebuilds} rebuild(s); "
            f"remaining restarts ran sequentially)"
        )
    judging_cost = judge_floorplan(outcome.best.floorplan, netlist, 10.0)
    return outcome.best, judging_cost, outcome


def _run_driver(args, netlist, grid_size, incremental, observer=None):
    """Run (or resume) a tempering/portfolio search driver."""
    from dataclasses import replace

    from repro.engine import (
        DriverConfig,
        RunControl,
        install_signal_handlers,
        make_driver,
        resume_driver,
    )
    from repro.experiments.runner import judge_floorplan

    control = RunControl(deadline_seconds=args.deadline)
    if args.resume is not None:
        driver, state = resume_driver(
            args.resume, workers=args.workers, rounds=args.rounds
        )
        if driver.name != args.driver:
            raise SystemExit(
                f"error: {args.resume} is a {driver.name!r} checkpoint; "
                f"--driver {args.driver} cannot resume it"
            )
        if driver.config.checkpoint_path is None:
            # Keep checkpointing into the same file, so a resumed run
            # is itself resumable.
            driver.config = replace(
                driver.config, checkpoint_path=str(args.resume)
            )
        if args.metrics_every > 0:
            # Snapshot cadence is observability, not search state: it
            # may change across a resume without perturbing the walk.
            driver.config = replace(
                driver.config, progress_every=args.metrics_every
            )
        netlist = driver.config.netlist
        print(f"resuming {driver.name} from {args.resume}")
    else:
        profile = active_profile()
        config = DriverConfig(
            netlist=netlist,
            representation=args.representation,
            restarts=args.restarts,
            rounds=args.rounds if args.rounds is not None else 3,
            seed=args.seed,
            objective_spec=_objective_spec(args, grid_size, incremental),
            moves_per_temperature=profile.moves_per_temperature(
                netlist.n_modules
            ),
            schedule=profile.schedule(),
            workers=args.workers,
            checkpoint_path=(
                str(args.checkpoint) if args.checkpoint is not None else None
            ),
            checkpoint_every=args.checkpoint_every,
            progress_every=args.metrics_every,
        )
        driver = make_driver(args.driver, config)
        state = None
    span = _run_span(
        observer, circuit=driver.config.netlist.name, driver=args.driver,
        representation=driver.config.representation,
        restarts=driver.config.restarts,
    )
    with install_signal_handlers(control), span:
        outcome = driver.run(
            control=control, resume_state=state, observer=observer
        )
    costs = ", ".join(f"{r.cost:.4g}" for r in outcome.results)
    print(f"{args.driver} costs ({outcome.workers} worker(s)): {costs}")
    if args.driver == "tempering":
        swaps = outcome.ledger.get("swaps", [])
        taken = sum(1 for s in swaps if s["accepted"])
        print(f"replica swaps: {taken}/{len(swaps)} accepted")
    elif args.driver == "portfolio":
        rounds = outcome.ledger.get("rounds", [])
        if rounds:
            final = rounds[-1]["arm_best"]
            ranking = ", ".join(
                f"{arm}: {cost:.4g}" for arm, cost in sorted(final.items())
            )
            print(f"arm bests: {ranking}")
    for report in outcome.reports:
        if report.failures or report.status != "ok":
            print(f"  {report.summary()}")
    if outcome.degraded:
        print(
            f"  (pool unhealthy after {outcome.pool_rebuilds} rebuild(s); "
            f"remaining jobs ran sequentially)"
        )
    if not outcome.completed:
        print(f"stopped early ({outcome.stop_reason})")
    if outcome.checkpoints_written:
        print(
            f"wrote {outcome.checkpoints_written} driver checkpoint(s) to "
            f"{driver.config.checkpoint_path}"
        )
    judging_cost = judge_floorplan(outcome.best.floorplan, netlist, 10.0)
    return outcome.best, judging_cost, netlist, outcome


def _cmd_estimate(args) -> int:
    netlist = _load_circuit(args.circuit)
    grid_size = _grid_size_for(netlist, args.grid_size)
    if args.placement is not None:
        from repro.data import read_placement

        floorplan = read_placement(args.placement)
    else:
        objective = FloorplanObjective(
            netlist, alpha=1.0, beta=1.0, gamma=0.0, pin_grid_size=grid_size
        )
        record = run_once(netlist, objective, seed=args.seed)
        floorplan = record.floorplan
    assignment = assign_pins(floorplan, netlist, grid_size)
    if args.model == "irgrid":
        model = IrregularGridModel(grid_size)
        congestion_map, irgrid = model.evaluate_with_grid(
            floorplan.chip, assignment.two_pin_nets
        )
        print(
            f"IR-grid model: {irgrid.n_cells} IR-grids, score "
            f"{model.score(congestion_map):.6g}"
        )
        if args.explain:
            from repro.congestion import analyze_hotspots

            report = analyze_hotspots(
                model, floorplan.chip, assignment.two_pin_nets, top_cells=3
            )
            for rank, cell in enumerate(report.cells, start=1):
                nets_desc = ", ".join(
                    f"{name} ({amount:.2f})"
                    for name, amount in cell.contributors
                )
                r = cell.rect
                print(
                    f"  hotspot {rank}: [{r.x_lo:.0f},{r.y_lo:.0f}]-"
                    f"[{r.x_hi:.0f},{r.y_hi:.0f}] density "
                    f"{cell.density:.4g} <- {nets_desc}"
                )
    else:
        model = FixedGridModel(grid_size)
        congestion_map = model.evaluate(floorplan.chip, assignment.two_pin_nets)
        print(
            f"fixed-grid model: {congestion_map.n_cells} grids, score "
            f"{model.score(congestion_map):.6g}"
        )
    judge = JudgingModel(10.0)
    print(f"judging model (10 um): {judge.judge(floorplan, netlist):.6g}")
    if args.render:
        print(render_congestion_ascii(congestion_map))
    if args.svg is not None:
        args.svg.write_text(congestion_svg(congestion_map, floorplan=floorplan))
        print(f"wrote {args.svg}")
    return 0


def _cmd_experiment(args) -> int:
    profile = active_profile()
    print(f"profile: {profile.name} ({profile.n_seeds} seeds)")
    if args.number == 1:
        circuits = args.circuits or ("apte", "xerox", "hp", "ami33", "ami49")
        print(format_experiment1(run_experiment1(circuits, profile)))
    elif args.number == 2:
        print(format_experiment2(run_experiment2(args.circuit, profile)))
    else:
        print(
            format_experiment3(
                run_experiment3(args.circuit, profile), args.circuit
            )
        )
    return 0


def _cmd_figure8() -> int:
    case_b, case_d = figure8_default_cases()
    for label, series in (("(b) y2=15", case_b), ("(d) y2=19", case_d)):
        rows = [
            [
                p.x,
                p.exact,
                "n/a" if p.approx is None else p.approx,
                "n/a" if p.deviation is None else p.deviation,
            ]
            for p in series
        ]
        print(
            format_table(
                ["x", "exact", "approx", "|deviation|"],
                rows,
                title=f"Figure 8 {label} (31 x 21 type-I net)",
            )
        )
        print()
    return 0


def _cmd_trace(args) -> int:
    """Validate and summarize a ``--trace`` JSONL file."""
    import json

    from repro.obs import format_trace_summary, summarize_trace

    if not args.path.exists():
        raise SystemExit(f"error: no such trace file: {args.path}")
    try:
        summary = summarize_trace(args.path)
    except ValueError as exc:
        raise SystemExit(f"error: invalid trace file: {exc}")
    if args.json:
        print(json.dumps(summary.to_json(), indent=2, sort_keys=True))
    else:
        print(format_trace_summary(summary, width=args.width))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import FloorplanService
    from repro.service.server import serve as serve_async

    service = FloorplanService(
        args.root,
        workers=args.workers,
        tenant_quota=args.tenant_quota,
        client_timeout=args.client_timeout,
        job_timeout=args.job_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.max_retries,
        max_pool_rebuilds=args.max_pool_rebuilds,
    )
    recovered = service.queue.recovered_jobs
    if recovered:
        print(
            f"recovered {len(recovered)} interrupted job(s) from the "
            f"journal: {', '.join(recovered)}"
        )

    def ready(server) -> None:
        print(
            f"floorplan service on http://{server.host}:{server.port} "
            f"({args.workers} worker(s), root {args.root}); "
            f"SIGTERM drains gracefully",
            flush=True,
        )

    asyncio.run(serve_async(service, args.host, args.port, ready=ready))
    print("drained; journal compacted")
    return 0


def _cmd_submit(args) -> int:
    from repro.data import dumps_yal
    from repro.service import ServiceClient, ServiceClientError

    netlist = _load_circuit(args.circuit)
    spec = {
        "netlist_yal": dumps_yal(netlist),
        "representation": args.representation,
        "seed": args.seed,
        "alpha": args.alpha,
        "beta": args.beta,
        "gamma": args.gamma,
        "congestion_grid_size": _grid_size_for(netlist, args.grid_size),
        "backend": args.backend,
        "max_steps": args.max_steps,
        "moves_per_temperature": args.moves_per_temperature,
        "priority": args.priority,
        "tenant": args.tenant,
        "deadline_seconds": args.deadline,
        "idempotency_key": args.idempotency_key,
    }
    client = ServiceClient(args.host, args.port)
    try:
        status = client.submit(spec)
        job_id = status["job_id"]
        print(
            f"job {job_id}: {status['state']}"
            + (" (cache hit)" if status.get("cached") else "")
        )
        if args.no_wait:
            return 0
        result = client.wait(job_id, timeout=args.timeout)
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    breakdown = result["breakdown"]
    chip = result["chip"]
    print(
        f"done: cost {breakdown['cost']:.4f} "
        f"(area {breakdown['area']:.4g}, wire {breakdown['wirelength']:.4g}, "
        f"congestion {breakdown['congestion']:.4g}), "
        f"chip {chip['width']:.1f} x {chip['height']:.1f}"
    )
    return 0


def _cmd_peek(args) -> int:
    import dataclasses
    import json as json_mod

    from repro.engine import peek_checkpoint
    from repro.errors import CheckpointError

    try:
        info = peek_checkpoint(args.path)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_mod.dumps(dataclasses.asdict(info), indent=2))
    else:
        print(info.summary())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse ``argv`` and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    if args.command == "circuits":
        return _cmd_circuits()
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "floorplan":
        return _cmd_floorplan(args)
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "figure8":
        return _cmd_figure8()
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "peek":
        return _cmd_peek(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
