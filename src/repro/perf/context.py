"""Engine-scoped cache ownership: the :class:`CacheContext`.

Annealing memoization used to live in module-global stores (a per-net
congestion memo, a probability-matrix memo, an exact-probability memo,
a subtree shape-list memo).  Globals make concurrent or multi-tenant
use unsafe: two annealing engines running in one process would share
hit/miss accounting, evict each other's working sets, and make cache
memory unaccountable.  A :class:`CacheContext` instead *owns* one
instance of every hot-path cache; each engine (or standalone objective
/ congestion model) creates its own context and injects it down the
stack, so two engines never share mutable cache state.

The class lives in :mod:`repro.perf` -- the instrumentation layer,
which imports nothing above it -- so the congestion kernels, the
floorplan packing memo and the annealing objective can all receive a
context without import cycles.  Its public home is
:mod:`repro.engine`, which re-exports it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.perf.cache import BoundedCache, CacheStats

__all__ = ["CacheContext", "format_cache_stats", "merge_cache_stats"]


def merge_cache_stats(
    earlier: Mapping[str, CacheStats], later: Mapping[str, CacheStats]
) -> Dict[str, CacheStats]:
    """Stitch two cache-stats snapshots from different epochs into one.

    A resumed run starts with fresh (empty) caches, so its context's
    stats cover only the post-resume segment; the checkpoint carries the
    pre-crash segment's stats.  Merging the two keeps the reported
    hit/miss accounting covering the whole *logical* run: cumulative
    counters add, point-in-time size/maxsize come from the later epoch.
    Caches present in only one snapshot pass through unchanged.
    """
    merged: Dict[str, CacheStats] = dict(earlier)
    for name, stats in later.items():
        prior = merged.get(name)
        merged[name] = stats if prior is None else prior.merged(stats)
    return merged


def format_cache_stats(
    stats: Mapping[str, CacheStats], title: Optional[str] = None
) -> str:
    """One table over named cache stats: hits, misses, size, evictions.

    Works on a live context's :meth:`CacheContext.stats` or on the
    picklable snapshot an engine result carries.
    """
    lines = []
    if title:
        lines.append(title)
    width = max([len(n) for n in stats] + [len("cache")])
    lines.append(
        f"{'cache'.ljust(width)}  {'hits':>10}  {'misses':>10}  "
        f"{'hit%':>6}  {'size':>9}  {'max':>9}  {'evicted':>8}"
    )
    for name in sorted(stats):
        s = stats[name]
        lines.append(
            f"{name.ljust(width)}  {s.hits:>10d}  {s.misses:>10d}  "
            f"{100.0 * s.hit_rate:>5.1f}%  {s.size:>9d}  "
            f"{s.maxsize:>9d}  {s.evictions:>8d}"
        )
    return "\n".join(lines)

# Default bounds, tuned in PR 1: a floorplan has O(100) regular nets
# and a full annealing run's working set of per-net signatures measures
# in the low hundreds of thousands (a 65k store thrashed with ~120k
# evictions on an ami33-scale run).  Worst-case memory is a few hundred
# MB of short float vectors per context; real runs stay far below it.
#
# On sizing vs hit rate: every capacity is a constructor kwarg, but a
# bigger store only helps when the bounded cache actually evicts.  The
# exact_prob rate drop from 60% (ami33-scale) to 40% (ami49-scale)
# recorded in BENCH_incremental.json comes with ZERO evictions at
# either scale (see the bench's ``cache_evictions`` field and the
# ``evicted`` column of ``--perf``): the working set fits, and the
# lower rate is compulsory misses -- the larger netlist simply
# produces more distinct exact-fallback signatures per eviction-free
# lookup stream.  Resizing cannot recover it; within a workload the
# rate is stable across runs.
DEFAULT_NET_MASS_SIZE = 262_144
DEFAULT_NET_MATRIX_SIZE = 65_536
DEFAULT_EXACT_PROB_SIZE = 262_144
DEFAULT_SUBTREE_SHAPE_SIZE = 131_072


class CacheContext:
    """One engine's fleet of bounded hot-path caches.

    Attributes
    ----------
    net_mass:
        Per-net flat probability vectors keyed by local signature
        (:mod:`repro.congestion.batched`).
    net_matrix:
        Per-net probability matrices of the scalar model path
        (:mod:`repro.congestion.model`).
    exact_prob:
        Scalar Formula-3 results for the approximation's exact
        fallback cells.
    subtree_shapes:
        Interned slicing-subtree shape lists
        (:mod:`repro.floorplan.slicing`).

    Additional caches may be attached with :meth:`register`; every
    registered cache shows up in :meth:`stats` and :meth:`report`, so
    cache memory stays accountable per engine.
    """

    def __init__(
        self,
        net_mass_size: int = DEFAULT_NET_MASS_SIZE,
        net_matrix_size: int = DEFAULT_NET_MATRIX_SIZE,
        exact_prob_size: int = DEFAULT_EXACT_PROB_SIZE,
        subtree_shapes_size: int = DEFAULT_SUBTREE_SHAPE_SIZE,
    ):
        self.net_mass = BoundedCache(net_mass_size, name="net_mass")
        self.net_matrix = BoundedCache(net_matrix_size, name="net_matrix")
        self.exact_prob = BoundedCache(exact_prob_size, name="exact_prob")
        self.subtree_shapes = BoundedCache(
            subtree_shapes_size, name="subtree_shapes"
        )
        self._caches: Dict[str, BoundedCache] = {
            "net_mass": self.net_mass,
            "net_matrix": self.net_matrix,
            "exact_prob": self.exact_prob,
            "subtree_shapes": self.subtree_shapes,
        }

    # -- registry ------------------------------------------------------

    def register(self, name: str, cache: BoundedCache) -> BoundedCache:
        """Attach an additional cache under ``name`` and return it."""
        if name in self._caches:
            raise ValueError(f"cache name {name!r} already registered")
        self._caches[name] = cache
        return cache

    @property
    def caches(self) -> Dict[str, BoundedCache]:
        """Name -> cache mapping (a copy; mutate via :meth:`register`)."""
        return dict(self._caches)

    # -- accounting ----------------------------------------------------

    def stats(self) -> Dict[str, CacheStats]:
        """Point-in-time stats of every cache, keyed by name."""
        return {name: c.stats() for name, c in sorted(self._caches.items())}

    def hit_rates(self) -> Dict[str, float]:
        """Hit rate of every cache that saw at least one lookup."""
        return {
            name: s.hit_rate
            for name, s in self.stats().items()
            if s.lookups
        }

    def clear(self) -> None:
        """Empty every cache and reset its accounting."""
        for cache in self._caches.values():
            cache.clear()

    def report(self, title: Optional[str] = None) -> str:
        """One table over all caches: hits, misses, size, evictions."""
        return format_cache_stats(self.stats(), title=title)

    def __repr__(self) -> str:
        used = sum(len(c) for c in self._caches.values())
        return f"CacheContext({len(self._caches)} caches, {used} entries)"
