"""Lightweight performance instrumentation for the annealing hot path.

A :class:`PerfRecorder` accumulates named wall-clock timers and event
counters with near-zero overhead, so the annealer can attribute every
evaluation's cost to its phases (packing, pin assignment, IR-grid
build, mass evaluation, scoring) without a profiler.  The shared
:data:`NULL_RECORDER` is a do-nothing drop-in: hot-path code can always
write ``with self.perf.timeit("phase"):`` and pay essentially nothing
when nobody is listening.

Phases nest (the objective's ``congestion`` timer encloses the model's
``irgrid_build`` / ``mass_eval`` timers), so per-phase seconds are not
additive across nesting levels; the report groups them as measured.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.perf.cache import BoundedCache, CacheStats
from repro.perf.context import (
    CacheContext,
    format_cache_stats,
    merge_cache_stats,
)

__all__ = [
    "PhaseStat",
    "PerfRecorder",
    "NULL_RECORDER",
    "BoundedCache",
    "CacheStats",
    "CacheContext",
    "format_cache_stats",
    "merge_cache_stats",
]


class PhaseStat:
    """Accumulated wall-clock time and call count of one phase."""

    __slots__ = ("seconds", "calls")

    def __init__(self, seconds: float = 0.0, calls: int = 0):
        self.seconds = seconds
        self.calls = calls

    @property
    def ms_per_call(self) -> float:
        return 1000.0 * self.seconds / self.calls if self.calls else 0.0

    def __repr__(self) -> str:
        return f"PhaseStat(seconds={self.seconds:.6f}, calls={self.calls})"


class _PhaseTimer:
    """One ``with``-block measurement feeding a recorder."""

    __slots__ = ("_recorder", "_name", "_t0")

    def __init__(self, recorder: "PerfRecorder", name: str):
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_PhaseTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._recorder.add_time(self._name, time.perf_counter() - self._t0)


class PerfRecorder:
    """Named wall-clock timers + event counters.

    Not thread-safe by design: each annealing chain owns its recorder;
    merge recorders from parallel chains afterwards with :meth:`merge`.
    """

    def __init__(self) -> None:
        self.timers: Dict[str, PhaseStat] = {}
        self.counters: Dict[str, int] = {}

    # -- recording ----------------------------------------------------

    def timeit(self, name: str) -> _PhaseTimer:
        """Context manager timing one phase occurrence."""
        return _PhaseTimer(self, name)

    def add_time(self, name: str, seconds: float) -> None:
        """Add one timed occurrence of phase ``name``."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = PhaseStat()
        stat.seconds += seconds
        stat.calls += 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- aggregation --------------------------------------------------

    def merge(self, other: "PerfRecorder") -> None:
        """Fold another recorder's measurements into this one."""
        for name, stat in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                mine = self.timers[name] = PhaseStat()
            mine.seconds += stat.seconds
            mine.calls += stat.calls
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n

    def snapshot(self) -> dict:
        """Machine-readable copy: ``{"timers": ..., "counters": ...}``."""
        return {
            "timers": {
                name: {"seconds": s.seconds, "calls": s.calls}
                for name, s in sorted(self.timers.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def report(self, title: Optional[str] = None) -> str:
        """Human-readable per-phase breakdown."""
        lines = []
        if title:
            lines.append(title)
        if self.timers:
            width = max(len(n) for n in self.timers)
            lines.append(
                f"{'phase'.ljust(width)}  {'seconds':>10}  {'calls':>8}  "
                f"{'ms/call':>9}"
            )
            for name, s in sorted(
                self.timers.items(), key=lambda kv: -kv[1].seconds
            ):
                lines.append(
                    f"{name.ljust(width)}  {s.seconds:>10.4f}  {s.calls:>8d}  "
                    f"{s.ms_per_call:>9.3f}"
                )
        if self.counters:
            lines.append(
                "counters: "
                + "  ".join(
                    f"{name}={n}" for name, n in sorted(self.counters.items())
                )
            )
        return "\n".join(lines) if lines else "(no measurements)"


class _NullTimer:
    """Shared no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _NullRecorder(PerfRecorder):
    """Recorder that measures nothing; safe to share globally."""

    def timeit(self, name: str) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER

    def add_time(self, name: str, seconds: float) -> None:
        return None

    def count(self, name: str, n: int = 1) -> None:
        return None


NULL_RECORDER = _NullRecorder()
