"""Bounded, instrumented memoization shared by the hot paths.

:class:`BoundedCache` is a thread-safe LRU mapping with hit/miss
accounting, bounded so day-long annealing runs cannot grow memory
without limit.  It lives in :mod:`repro.perf` (the instrumentation
layer, which imports nothing above it) so both the congestion stores
and the floorplan packing memo can use it without import cycles.

Instances are *not* registered anywhere global: every cache belongs to
a :class:`~repro.perf.context.CacheContext` (or to whoever constructed
it), so two annealing engines in one process never share cache state
or accounting.  The ``name`` parameter is a pure label used by the
owning context's report.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, NamedTuple, Optional

__all__ = [
    "CacheStats",
    "BoundedCache",
]


class CacheStats(NamedTuple):
    """One cache's accounting at a point in time."""

    hits: int
    misses: int
    size: int
    maxsize: int
    evictions: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merged(self, later: "CacheStats") -> "CacheStats":
        """Combine with a *later* snapshot of a different cache epoch.

        Used when a resumed run stitches its stats onto the checkpoint's:
        cumulative counters (hits, misses, evictions) add; point-in-time
        values (size, maxsize) come from the later epoch, since that is
        the cache actually live at report time.
        """
        return CacheStats(
            hits=self.hits + later.hits,
            misses=self.misses + later.misses,
            size=later.size,
            maxsize=later.maxsize,
            evictions=self.evictions + later.evictions,
        )

    def to_json(self) -> dict:
        """A lossless JSON-serializable image of this snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "maxsize": self.maxsize,
            "evictions": self.evictions,
        }

    @classmethod
    def from_json(cls, data) -> "CacheStats":
        """Rebuild a snapshot from :meth:`to_json` output."""
        return cls(
            hits=int(data["hits"]),
            misses=int(data["misses"]),
            size=int(data["size"]),
            maxsize=int(data["maxsize"]),
            evictions=int(data["evictions"]),
        )


class BoundedCache:
    """A thread-safe bounded LRU map with hit/miss accounting.

    ``get`` refreshes recency; inserting beyond ``maxsize`` evicts the
    least-recently-used entry.  ``name`` is a display label for the
    owning :class:`~repro.perf.context.CacheContext`'s report; it
    carries no registration side effect.
    """

    def __init__(self, maxsize: int, name: Optional[str] = None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.name = name
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing its recency) or ``default``.

        Like :meth:`get_many`, recency refresh is skipped until the
        cache is three-quarters full -- eviction order cannot matter
        before the bound is approached, and the hot paths issue tens of
        ``get`` calls per annealing evaluation.
        """
        with self._lock:
            data = self._data
            try:
                value = data[key]
            except KeyError:
                self._misses += 1
                return default
            if 4 * len(data) >= 3 * self.maxsize:
                data.move_to_end(key)
            self._hits += 1
            return value

    def get_many(self, keys) -> list:
        """Look up many keys under one lock acquisition.

        Returns a list aligned with ``keys``; missing entries are
        ``None``.  The annealing hot path looks up ~100 per-net
        signatures per evaluation -- batching turns 100 lock round
        trips into one.  Recency refresh is skipped until the cache is
        three-quarters full: eviction order cannot matter before the
        bound is approached, and ``move_to_end`` per hit is measurable
        at this call rate.
        """
        with self._lock:
            data = self._data
            if 4 * len(data) >= 3 * self.maxsize:
                move = data.move_to_end
                out = []
                for key in keys:
                    value = data.get(key)
                    if value is not None:
                        move(key)
                    out.append(value)
            else:
                # ``dict.get``'s None default doubles as the miss
                # sentinel -- no per-key exception handling.
                lookup = data.get
                out = [lookup(key) for key in keys]
            # Identity test, not ``==``: values may be numpy arrays.
            misses = sum(1 for value in out if value is None)
            self._hits += len(out) - misses
            self._misses += misses
        return out

    def put_many(self, items) -> None:
        """Insert many ``(key, value)`` pairs under one lock acquisition."""
        with self._lock:
            data = self._data
            for key, value in items:
                if key in data:
                    data.move_to_end(key)
                    data[key] = value
                    continue
                data[key] = value
                if len(data) > self.maxsize:
                    data.popitem(last=False)
                    self._evictions += 1

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU one past ``maxsize``."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss accounting."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        """A consistent point-in-time :class:`CacheStats` snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                maxsize=self.maxsize,
                evictions=self._evictions,
            )

    def __repr__(self) -> str:
        s = self.stats()
        label = f" {self.name!r}" if self.name else ""
        return (
            f"BoundedCache{label}({s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses})"
        )
