"""Exact monotone-route counting (Definition 1, Formulas 1 and 2).

A 2-pin net whose routing range spans ``g1 x g2`` unit grids routes
along monotone shortest Manhattan paths.  With the range's lower-left
grid at (0, 0):

* **type I** nets have pins in grids (0, 0) and (g1-1, g2-1); routes
  step right/up;
* **type II** nets have pins in grids (0, g2-1) and (g1-1, 0); routes
  step right/down.

``Ta(x, y)`` counts routes from the first pin's grid to (x, y) and
``Tb(x, y)`` counts routes from (x, y) to the second pin's grid; the
probability that a route crosses (x, y) is ``Ta*Tb / total``
(Formula 2).  Everything here is evaluated through log-space binomials
so ranges of hundreds of grids stay in float range.
"""

from __future__ import annotations

import math
from typing import List

from repro.mathutils import binomial, log_binomial
from repro.netlist import NetType

__all__ = [
    "total_routes",
    "log_total_routes",
    "route_count_from_p1",
    "route_count_to_p2",
    "crossing_probability",
    "probability_table",
]


def _check_dims(g1: int, g2: int) -> None:
    if g1 < 1 or g2 < 1:
        raise ValueError(f"grid dimensions must be >= 1, got {g1} x {g2}")


def _check_type(net_type: NetType) -> None:
    if net_type is NetType.DEGENERATE:
        raise ValueError(
            "route counting applies to type I/II nets; degenerate nets "
            "cross every covered grid with probability 1"
        )


def total_routes(g1: int, g2: int) -> int:
    """Number of monotone routes across a ``g1 x g2`` routing range:
    ``C(g1 + g2 - 2, g2 - 1)`` (same for both net types)."""
    _check_dims(g1, g2)
    return binomial(g1 + g2 - 2, g2 - 1)


def log_total_routes(g1: int, g2: int) -> float:
    """Natural log of :func:`total_routes` (stays finite at any size)."""
    _check_dims(g1, g2)
    return log_binomial(g1 + g2 - 2, g2 - 1)


def route_count_from_p1(x: int, y: int, g1: int, g2: int, net_type: NetType) -> int:
    """``Ta_i(x, y)`` of Formula 1 (0 outside the routing range)."""
    _check_dims(g1, g2)
    _check_type(net_type)
    if not (0 <= x < g1 and 0 <= y < g2):
        return 0
    if net_type is NetType.TYPE_I:
        return binomial(x + y, y)
    # type II: routes start at (0, g2-1) and step right/down.
    return binomial(x + (g2 - 1 - y), x)


def route_count_to_p2(x: int, y: int, g1: int, g2: int, net_type: NetType) -> int:
    """``Tb_i(x, y)`` of Formula 1 (0 outside the routing range)."""
    _check_dims(g1, g2)
    _check_type(net_type)
    if not (0 <= x < g1 and 0 <= y < g2):
        return 0
    if net_type is NetType.TYPE_I:
        return binomial((g1 - 1 - x) + (g2 - 1 - y), g2 - 1 - y)
    # type II: routes end at (g1-1, 0).
    return binomial((g1 - 1 - x) + y, g1 - 1 - x)


def _log_ta(x: int, y: int, g1: int, g2: int, net_type: NetType) -> float:
    if net_type is NetType.TYPE_I:
        return log_binomial(x + y, y)
    return log_binomial(x + (g2 - 1 - y), x)


def _log_tb(x: int, y: int, g1: int, g2: int, net_type: NetType) -> float:
    if net_type is NetType.TYPE_I:
        return log_binomial((g1 - 1 - x) + (g2 - 1 - y), g2 - 1 - y)
    return log_binomial((g1 - 1 - x) + y, g1 - 1 - x)


def crossing_probability(
    x: int, y: int, g1: int, g2: int, net_type: NetType
) -> float:
    """``P_i(x, y)`` of Formula 2: probability that a uniformly random
    monotone route crosses grid (x, y).  Zero outside the range."""
    _check_dims(g1, g2)
    _check_type(net_type)
    if not (0 <= x < g1 and 0 <= y < g2):
        return 0.0
    log_p = (
        _log_ta(x, y, g1, g2, net_type)
        + _log_tb(x, y, g1, g2, net_type)
        - log_total_routes(g1, g2)
    )
    return math.exp(log_p)


def probability_table(g1: int, g2: int, net_type: NetType) -> List[List[float]]:
    """The full ``g1 x g2`` table of crossing probabilities.

    Indexed ``table[x][y]``.  Built row-by-row from log binomials; used
    by the fixed-grid model and by tests as ground truth for the
    approximation.  Cost O(g1 * g2).
    """
    _check_dims(g1, g2)
    _check_type(net_type)
    log_total = log_total_routes(g1, g2)
    table: List[List[float]] = []
    for x in range(g1):
        column = []
        for y in range(g2):
            log_p = (
                _log_ta(x, y, g1, g2, net_type)
                + _log_tb(x, y, g1, g2, net_type)
                - log_total
            )
            column.append(math.exp(log_p))
        table.append(column)
    return table
