"""Exact IR-grid crossing probability (Formula 3).

An IR-grid covering unit-grid columns ``x1..x2`` and rows ``y1..y2`` of
a net's routing range is crossed by exactly the routes that leave it
through its top boundary (type I; bottom for type II) or its right
boundary, and each crossing route leaves exactly once.  Summing the
route counts over those boundary transitions and dividing by the total
route count gives the exact crossing probability:

* type I:  ``[sum_x Ta(x, y2) Tb(x, y2+1) + sum_y Ta(x2, y) Tb(x2+1, y)] / total``
* type II: ``[sum_x Ta(x, y1) Tb(x, y1-1) + sum_y Ta(x2, y) Tb(x2+1, y)] / total``

Out-of-range ``Tb`` factors are zero (Definition 1), which silently
drops the boundary sums of IR-grids flush with the routing range's far
edges -- exactly right, because routes reaching those edges exit through
the other boundary (or terminate at the pin, and pin-covering IR-grids
are assigned probability 1 by the Algorithm before this formula is ever
consulted).

The paper's worked example (Figure 6) is reproduced in the tests:
a 6x6 range with the IR-grid ``x in [1,3], y in [1,4]`` (0-based) gives
245/252.
"""

from __future__ import annotations

import math

from repro.congestion.routes import (
    _log_ta,
    _log_tb,
    log_total_routes,
)
from repro.netlist import NetType

__all__ = ["exact_ir_probability"]


def exact_ir_probability(
    g1: int,
    g2: int,
    net_type: NetType,
    x1: int,
    x2: int,
    y1: int,
    y2: int,
) -> float:
    """Formula 3: probability that the net crosses the IR-grid
    ``[x1..x2] x [y1..y2]`` of its ``g1 x g2`` routing range.

    Coordinates are inclusive unit-grid indices, 0-based, and must lie
    inside the range.  Works for arbitrarily large ranges via log-space
    route counts.
    """
    _check(g1, g2, net_type, x1, x2, y1, y2)
    log_total = log_total_routes(g1, g2)
    acc = 0.0
    if net_type is NetType.TYPE_I:
        # Routes leaving through the top boundary: (x, y2) -> (x, y2+1).
        if y2 + 1 < g2:
            for x in range(x1, x2 + 1):
                acc += _transition(g1, g2, net_type, x, y2, x, y2 + 1, log_total)
        # Routes leaving through the right boundary: (x2, y) -> (x2+1, y).
        if x2 + 1 < g1:
            for y in range(y1, y2 + 1):
                acc += _transition(g1, g2, net_type, x2, y, x2 + 1, y, log_total)
        # An IR-grid flush with both far edges contains the destination
        # pin: every route that reaches it stays, so its probability is
        # the chance of reaching the pin cell -- which is 1 only if the
        # grid covers the pin; the model's pin rule handles that before
        # calling here, but we keep the formula total-probability-safe.
        if y2 + 1 >= g2 and x2 + 1 >= g1:
            acc += math.exp(
                _log_ta(x2, y2, g1, g2, net_type)
                + _log_tb(x2, y2, g1, g2, net_type)
                - log_total
            )
    else:
        # Type II routes run from the top-left pin toward bottom-right:
        # exits are through the bottom boundary and the right boundary.
        if y1 - 1 >= 0:
            for x in range(x1, x2 + 1):
                acc += _transition(g1, g2, net_type, x, y1, x, y1 - 1, log_total)
        if x2 + 1 < g1:
            for y in range(y1, y2 + 1):
                acc += _transition(g1, g2, net_type, x2, y, x2 + 1, y, log_total)
        if y1 - 1 < 0 and x2 + 1 >= g1:
            acc += math.exp(
                _log_ta(x2, y1, g1, g2, net_type)
                + _log_tb(x2, y1, g1, g2, net_type)
                - log_total
            )
    # Clamp float-roundoff excursions; the mathematical value is in [0, 1].
    return min(max(acc, 0.0), 1.0)


def _transition(
    g1: int,
    g2: int,
    net_type: NetType,
    from_x: int,
    from_y: int,
    to_x: int,
    to_y: int,
    log_total: float,
) -> float:
    """Probability mass of routes using one boundary transition:
    ``Ta(from) * Tb(to) / total``."""
    log_ta = _log_ta(from_x, from_y, g1, g2, net_type)
    log_tb = _log_tb(to_x, to_y, g1, g2, net_type)
    if log_ta == float("-inf") or log_tb == float("-inf"):
        return 0.0
    return math.exp(log_ta + log_tb - log_total)


def _check(
    g1: int, g2: int, net_type: NetType, x1: int, x2: int, y1: int, y2: int
) -> None:
    if net_type is NetType.DEGENERATE:
        raise ValueError(
            "Formula 3 applies to type I/II nets; degenerate nets cross "
            "every covered IR-grid with probability 1"
        )
    if g1 < 2 or g2 < 2:
        raise ValueError(
            f"type I/II routing ranges span >= 2 grids per axis, got {g1} x {g2}"
        )
    if not (0 <= x1 <= x2 < g1 and 0 <= y1 <= y2 < g2):
        raise ValueError(
            f"IR-grid [{x1}..{x2}] x [{y1}..{y2}] outside range {g1} x {g2}"
        )
