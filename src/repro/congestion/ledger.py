"""The committed-grid congestion ledger: O(dirty) re-estimation.

Evaluating the IR model from scratch costs O(all nets + all covered
cells) per annealing move, even though a move dirties only a handful of
nets (PR 1 made the *pin/MST* stages O(dirty); congestion stayed
global).  The ledger closes that gap for the common case where the
candidate floorplan's **merged cut lines are identical** to the
committed grid's:

* pins snap to a lattice whose pitch is the congestion model's own
  ``grid_size``, so cut-line candidates are occupied lattice points and
  ``np.unique`` collapses duplicates -- a move that shuffles pins among
  already-occupied positions (or is rejected back onto the committed
  state) reproduces the committed grid *exactly*, detectable with two
  ``np.array_equal`` calls;
* the ledger stores the committed mass array plus every edge's last
  scatter block (flat CSR: covered cell indices + weight-scaled
  probabilities, in edge order), so the candidate's mass is
  ``committed_mass - sum(dirty old blocks) + sum(dirty new blocks)``
  over only the dirty edges.

Delta accumulation reorders float additions relative to the full-batch
scatter, so a ledger-built mass agrees with a from-scratch evaluation
to float-summation dust (~1e-14 relative), not bitwise; strict mode
asserts the 1e-12 contract every evaluation, and the ``age`` counter
bounds drift by forcing a periodic full rebuild
(:attr:`IrregularGridModel.ledger_refresh`).

All CSR surgery here is pure vectorized gather/scatter (repeat/cumsum/
arange enumeration) -- no per-edge Python anywhere.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.congestion.batched import EdgeContributions

__all__ = ["CongestionLedger"]


def _csr_positions(
    offsets: np.ndarray, counts: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Flat positions of every element of the CSR rows in ``rows``.

    Repeat/cumsum enumeration: element ``e`` of selected row ``r`` maps
    to ``offsets[r] + e``, all rows back to back in ``rows`` order.
    """
    cnt = counts[rows]
    total = int(cnt.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    inner = np.concatenate([[0], np.cumsum(cnt)[:-1]])
    within = np.arange(total) - np.repeat(inner, cnt)
    return np.repeat(offsets[rows], cnt) + within


class CongestionLedger:
    """One committed floorplan's congestion state, delta-updatable.

    Immutable by convention: the delta path builds a *new* ledger for
    the candidate state (sharing the clean edges' CSR data by copy)
    and leaves the committed one untouched, so the pipeline's
    reject-by-reference-swap transaction protocol needs no rollback
    hooks here.
    """

    __slots__ = (
        "x_lines",
        "y_lines",
        "mass",
        "counts",
        "offsets",
        "cells",
        "values",
        "age",
    )

    def __init__(
        self,
        x_lines: np.ndarray,
        y_lines: np.ndarray,
        mass: np.ndarray,
        contributions: EdgeContributions,
        age: int = 0,
    ):
        self.x_lines = x_lines
        self.y_lines = y_lines
        self.mass = mass
        self.counts = contributions.counts
        self.offsets = contributions.offsets
        self.cells = contributions.cells
        self.values = contributions.values
        self.age = age

    def matches(self, x_lines: np.ndarray, y_lines: np.ndarray) -> bool:
        """Whether a candidate grid's merged cut lines equal this
        ledger's -- the fingerprint gating the O(dirty) delta path."""
        return np.array_equal(self.x_lines, x_lines) and np.array_equal(
            self.y_lines, y_lines
        )

    def gather(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(cells, values)`` of the CSR rows in ``rows``, flattened."""
        pos = _csr_positions(self.offsets, self.counts, rows)
        return self.cells[pos], self.values[pos]

    def replaced(
        self,
        rows: np.ndarray,
        fresh: EdgeContributions,
        mass: np.ndarray,
        x_lines: Optional[np.ndarray] = None,
        y_lines: Optional[np.ndarray] = None,
    ) -> "CongestionLedger":
        """A new ledger with the CSR rows in ``rows`` replaced by
        ``fresh`` (whose row ``k`` is edge ``rows[k]``) and ``mass``
        installed as the committed mass.  ``age`` advances by one; the
        cut-line arrays carry over unless new ones are given.

        Clean rows' cell/value data is block-copied through one gather
        per side -- no per-edge Python.
        """
        n = len(self.counts)
        counts = self.counts.copy()
        counts[rows] = fresh.counts
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(
            np.int64
        )
        total = int(counts.sum())
        cells = np.empty(total, dtype=np.int64)
        values = np.empty(total)

        keep = np.ones(n, dtype=bool)
        keep[rows] = False
        keep_rows = np.nonzero(keep)[0]
        src = _csr_positions(self.offsets, self.counts, keep_rows)
        dst = _csr_positions(offsets, counts, keep_rows)
        cells[dst] = self.cells[src]
        values[dst] = self.values[src]

        dst_new = _csr_positions(offsets, counts, rows)
        cells[dst_new] = fresh.cells
        values[dst_new] = fresh.values

        out = CongestionLedger.__new__(CongestionLedger)
        out.x_lines = self.x_lines if x_lines is None else x_lines
        out.y_lines = self.y_lines if y_lines is None else y_lines
        out.mass = mass
        out.counts = counts
        out.offsets = offsets
        out.cells = cells
        out.values = values
        out.age = self.age + 1
        return out
