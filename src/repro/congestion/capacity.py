"""Routability estimation against track capacity (extension).

The congestion models output probability mass per cell; a router sees
*tracks*.  The reference the paper builds on -- Sham & Young's
routability-driven floorplanner [4] -- converts between the two: a
cell's expected wire demand is its crossing mass, its supply is the
number of routing tracks its width affords, and the floorplan is
routable when demand stays under supply everywhere that matters.

:func:`estimate_routability` performs that conversion for any
equal-pitch congestion map and reports the overflow picture the
:mod:`repro.routing` router can then confirm (the capacity
cross-validation test ties the two together).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.congestion.base import CongestionMap

__all__ = ["RoutabilityEstimate", "estimate_routability"]


@dataclass(frozen=True)
class RoutabilityEstimate:
    """Capacity-aware summary of a congestion map.

    ``demand`` is crossing mass per cell; ``supply`` is
    ``tracks_per_um * pitch`` (the tracks crossing one cell boundary).
    """

    supply_per_cell: float
    total_overflow: float  # sum over cells of max(demand - supply, 0)
    n_overflowed_cells: int
    n_cells: int
    max_utilization: float  # max demand / supply
    mean_utilization: float

    @property
    def overflow_fraction(self) -> float:
        return self.n_overflowed_cells / self.n_cells if self.n_cells else 0.0

    @property
    def is_routable(self) -> bool:
        """No cell demands more than its track supply.

        A necessary-not-sufficient screen: real routers also face
        blockages and layer constraints, but a floorplan failing this
        screen will certainly overflow.
        """
        return self.n_overflowed_cells == 0


def estimate_routability(
    congestion_map: CongestionMap,
    tracks_per_um: float,
    utilization_target: float = 1.0,
) -> RoutabilityEstimate:
    """Compare a congestion map's demand against track supply.

    Parameters
    ----------
    congestion_map:
        Any congestion map whose cells share (approximately) one pitch
        -- the fixed-grid or judging maps (clipped boundary rows are
        tolerated).  IR-grids have broadly mixed cell sizes; their
        density score serves ranking, not capacity math, so maps where
        fewer than 70 % of cells are full-pitch are rejected.
    tracks_per_um:
        Routing-track density of the technology (e.g. 1 track / 2 um
        in a 2004-era two-layer estimate).
    utilization_target:
        Fraction of the raw supply considered usable (routers
        congest far below 100 %; 0.8 is a common planning target).
    """
    if tracks_per_um <= 0:
        raise ValueError(f"tracks_per_um must be positive, got {tracks_per_um}")
    if not 0.0 < utilization_target <= 1.0:
        raise ValueError(
            f"utilization_target must be in (0, 1], got {utilization_target}"
        )
    cells = congestion_map.cells
    areas = [c.rect.area for c in cells if c.rect.area > 0]
    if not areas:
        raise ValueError("congestion map has no cells with positive area")
    # Equal-pitch check: uniform grids have (almost) all cells at the
    # full pitch, with at most one clipped row/column at the chip's
    # top/right edge; IR-grids have broadly mixed sizes.  Require a
    # majority of full-size cells.
    max_area = max(areas)
    full_cells = sum(1 for a in areas if a >= 0.5 * max_area)
    if full_cells < 0.7 * len(areas):
        raise ValueError(
            "estimate_routability needs an (approximately) equal-pitch "
            "map; IR-grids have mixed cell sizes -- evaluate a "
            "FixedGridModel map instead"
        )
    # Supply: tracks crossing one boundary of a cell of this pitch.
    pitch = max(c.rect.width for c in cells)
    supply = tracks_per_um * pitch * utilization_target

    overflow = 0.0
    n_over = 0
    max_util = 0.0
    util_sum = 0.0
    for cell in cells:
        demand = cell.mass
        util = demand / supply if supply > 0 else float("inf")
        max_util = max(max_util, util)
        util_sum += util
        if demand > supply:
            overflow += demand - supply
            n_over += 1
    return RoutabilityEstimate(
        supply_per_cell=supply,
        total_overflow=overflow,
        n_overflowed_cells=n_over,
        n_cells=len(cells),
        max_utilization=max_util,
        mean_utilization=util_sum / len(cells),
    )
