"""Congestion estimation -- the paper's contribution and its baseline.

Layers, bottom-up:

* :mod:`repro.congestion.routes` -- exact monotone-route counting and
  per-unit-grid crossing probabilities (Formulas 1-2);
* :mod:`repro.congestion.fixed_grid` -- the fixed-size-grid model of
  Sham & Young [4] (Section 3): the baseline *and*, at fine pitch, the
  paper's "judging model";
* :mod:`repro.congestion.irgrid` -- Irregular-Grid construction from
  routing-range cut lines, with close-line merging (Section 4.2,
  Algorithm step 2);
* :mod:`repro.congestion.exact_ir` -- the exact IR-grid crossing
  probability (Formula 3);
* :mod:`repro.congestion.approx` -- the constant-time normal
  approximation (Theorem 1) with Simpson integration and the Section 4.5
  domain guards;
* :mod:`repro.congestion.model` -- the full Irregular-Grid congestion
  model (Algorithm of Section 4.6);
* :mod:`repro.congestion.judging` -- the fine-pitch judging wrapper used
  by every experiment.
"""

from repro.congestion.base import CongestionCell, CongestionMap, CongestionModel
from repro.congestion.cache import BoundedCache, CacheContext, CacheStats
from repro.congestion.routes import (
    total_routes,
    route_count_from_p1,
    route_count_to_p2,
    crossing_probability,
    probability_table,
)
from repro.congestion.fixed_grid import FixedGridModel
from repro.congestion.irgrid import IRGrid, build_irgrid, build_irgrid_arrays
from repro.congestion.exact_ir import exact_ir_probability
from repro.congestion.approx import (
    ApproximationDomainError,
    approx_ir_probability,
    approx_function1_pointwise,
)
from repro.congestion.model import IrregularGridModel
from repro.congestion.analysis import (
    CellAttribution,
    HotspotReport,
    analyze_hotspots,
)
from repro.congestion.judging import JudgingModel
from repro.congestion.rudy import RudyModel
from repro.congestion.bendweighted import BendWeightedModel, bend_weighted_table
from repro.congestion.capacity import RoutabilityEstimate, estimate_routability
from repro.congestion.comparison import map_rank_correlation, resample_to_grid

__all__ = [
    "CongestionCell",
    "CongestionMap",
    "CongestionModel",
    "BoundedCache",
    "CacheContext",
    "CacheStats",
    "total_routes",
    "route_count_from_p1",
    "route_count_to_p2",
    "crossing_probability",
    "probability_table",
    "FixedGridModel",
    "IRGrid",
    "build_irgrid",
    "build_irgrid_arrays",
    "exact_ir_probability",
    "ApproximationDomainError",
    "approx_ir_probability",
    "approx_function1_pointwise",
    "IrregularGridModel",
    "CellAttribution",
    "HotspotReport",
    "analyze_hotspots",
    "JudgingModel",
    "RudyModel",
    "BendWeightedModel",
    "bend_weighted_table",
    "RoutabilityEstimate",
    "estimate_routability",
    "map_rank_correlation",
    "resample_to_grid",
]
