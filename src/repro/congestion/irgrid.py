"""Irregular-Grid construction (Section 4.2 + Algorithm steps 1-2).

Every net's routing range contributes its four boundary lines as cut
lines; together with the chip boundary they partition the chip into
IR-grids.  Step 2 of the paper's algorithm merges cut lines closer than
twice the unit-grid pitch ("Remove any two lines whose interval is
smaller than the double of the width/length of a grid and modify the
corresponding routing ranges"), which bounds the IR-grid count and
removes sliver cells; the affected routing ranges are then *snapped*
onto the surviving lines.

The result, :class:`IRGrid`, answers the two queries the model needs:

* the rectangle and area of each IR-cell;
* for a routing range, the index span of the IR-cells it covers (an
  exact cover -- ranges are snapped onto cut lines, so "every net will
  pass through several entire IR-grids").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.geometry import CutLines, Rect, merge_close_lines
from repro.netlist import TwoPinArrays, TwoPinNet

__all__ = ["IRGrid", "build_irgrid", "build_irgrid_arrays"]


@dataclass(frozen=True)
class IRGrid:
    """The merged cut-line partition of a chip."""

    chip: Rect
    x_lines: CutLines
    y_lines: CutLines

    @property
    def n_columns(self) -> int:
        return self.x_lines.n_cells

    @property
    def n_rows(self) -> int:
        return self.y_lines.n_cells

    @property
    def n_cells(self) -> int:
        return self.n_columns * self.n_rows

    def cell_rect(self, i: int, j: int) -> Rect:
        """Rectangle of IR-cell in column ``i``, row ``j``."""
        x_lo, x_hi = self.x_lines.cell_bounds(i)
        y_lo, y_hi = self.y_lines.cell_bounds(j)
        return Rect(x_lo, y_lo, x_hi, y_hi)

    def cells(self) -> Iterable[Tuple[int, int, Rect]]:
        """All cells as ``(column, row, rect)`` in row-major order."""
        for i in range(self.n_columns):
            for j in range(self.n_rows):
                yield i, j, self.cell_rect(i, j)

    def snap_range(self, rect: Rect) -> Rect:
        """A routing range snapped onto the nearest cut lines.

        This is the Algorithm's "modify the corresponding routing
        ranges": after merging, a range boundary may sit between lines;
        the evaluated range is the snapped one.  Snapping may collapse a
        thin range onto a single line (degenerate), which the model
        treats like an aligned-pin net.
        """
        return Rect(
            self.x_lines.snap(rect.x_lo),
            self.y_lines.snap(rect.y_lo),
            self.x_lines.snap(rect.x_hi),
            self.y_lines.snap(rect.y_hi),
        )

    def cell_span(self, snapped: Rect) -> Tuple[int, int, int, int]:
        """Inclusive IR-cell index span covered by a *snapped* range:
        ``(col_lo, col_hi, row_lo, row_hi)``.

        A degenerate snapped range (zero width/height) still covers the
        single line of cells it lies on; a range collapsed onto the
        chip's top/right boundary folds into the last cell.
        """
        col_lo = self.x_lines.nearest_line_index(snapped.x_lo)
        col_hi = self.x_lines.nearest_line_index(snapped.x_hi) - 1
        row_lo = self.y_lines.nearest_line_index(snapped.y_lo)
        row_hi = self.y_lines.nearest_line_index(snapped.y_hi) - 1
        col_hi = max(col_hi, col_lo)
        row_hi = max(row_hi, row_lo)
        col_lo = min(col_lo, self.n_columns - 1)
        col_hi = min(col_hi, self.n_columns - 1)
        row_lo = min(row_lo, self.n_rows - 1)
        row_hi = min(row_hi, self.n_rows - 1)
        return col_lo, col_hi, row_lo, row_hi


def build_irgrid(
    chip: Rect,
    nets: Sequence[TwoPinNet],
    grid_size: float,
    merge_factor: float = 2.0,
) -> IRGrid:
    """Build the Irregular-Grid for a set of placed 2-pin nets.

    Parameters
    ----------
    chip:
        Chip outline; its boundaries are always cut lines and survive
        merging unmoved.
    nets:
        Placed 2-pin nets; each contributes its routing range's four
        boundary lines (degenerate ranges contribute their segment's
        lines too -- they still occupy track capacity).
    grid_size:
        The unit-grid pitch (paper: 30 or 60 um).  Governs both the
        merge threshold and the per-net unit-grid resolution used by the
        probability formulas.
    merge_factor:
        Lines closer than ``merge_factor * grid_size`` merge (paper
        step 2 uses "double", i.e. 2.0; the ablation bench sweeps this).
    """
    if grid_size <= 0:
        raise ValueError(f"grid_size must be positive, got {grid_size}")
    if merge_factor < 0:
        raise ValueError(f"merge_factor must be >= 0, got {merge_factor}")
    xs: List[float] = [chip.x_lo, chip.x_hi]
    ys: List[float] = [chip.y_lo, chip.y_hi]
    for net in nets:
        p1, p2 = net.p1, net.p2
        xs.append(p1.x if p1.x < p2.x else p2.x)
        xs.append(p2.x if p1.x < p2.x else p1.x)
        ys.append(p1.y if p1.y < p2.y else p2.y)
        ys.append(p2.y if p1.y < p2.y else p1.y)
    x_lo, x_hi = chip.x_lo, chip.x_hi
    y_lo, y_hi = chip.y_lo, chip.y_hi
    xs = [x_lo if x < x_lo else (x_hi if x > x_hi else x) for x in xs]
    ys = [y_lo if y < y_lo else (y_hi if y > y_hi else y) for y in ys]
    return _merge_and_assemble(chip, xs, ys, grid_size, merge_factor)


def build_irgrid_arrays(
    chip: Rect,
    arr: TwoPinArrays,
    grid_size: float,
    merge_factor: float = 2.0,
) -> IRGrid:
    """:func:`build_irgrid` over a :class:`TwoPinArrays` batch.

    Identical output to the net-object variant for the same geometry
    (the cut-line multiset is the same, and the merge pass sorts its
    input): the annealer's fast lane, skipping per-net attribute reads.
    """
    if grid_size <= 0:
        raise ValueError(f"grid_size must be positive, got {grid_size}")
    if merge_factor < 0:
        raise ValueError(f"merge_factor must be >= 0, got {merge_factor}")
    xs: Sequence[float] = [chip.x_lo, chip.x_hi]
    ys: Sequence[float] = [chip.y_lo, chip.y_hi]
    if len(arr):
        # The chip bounds ride along through the clip (clipping them to
        # themselves is exact), and the merge pass sorts its input, so
        # handing the raw ndarray over is identical to the list path.
        x_pairs = np.concatenate(
            [xs, np.minimum(arr.p1x, arr.p2x), np.maximum(arr.p1x, arr.p2x)]
        )
        y_pairs = np.concatenate(
            [ys, np.minimum(arr.p1y, arr.p2y), np.maximum(arr.p1y, arr.p2y)]
        )
        np.clip(x_pairs, chip.x_lo, chip.x_hi, out=x_pairs)
        np.clip(y_pairs, chip.y_lo, chip.y_hi, out=y_pairs)
        xs = x_pairs
        ys = y_pairs
    return _merge_and_assemble(chip, xs, ys, grid_size, merge_factor)


def _merge_and_assemble(
    chip: Rect,
    xs: Sequence[float],
    ys: Sequence[float],
    grid_size: float,
    merge_factor: float,
) -> IRGrid:
    """Merge clamped cut-line candidates and build the grid."""
    keep_x = (chip.x_lo, chip.x_hi)
    keep_y = (chip.y_lo, chip.y_hi)
    min_gap = merge_factor * grid_size
    merged_x = merge_close_lines(xs, min_gap, keep=keep_x)
    merged_y = merge_close_lines(ys, min_gap, keep=keep_y)
    # A chip edge shorter than the merge threshold can collapse both of
    # its boundary lines into one cluster; fall back to the bare chip
    # boundaries so the partition always has at least one cell.
    if len(merged_x) < 2:
        merged_x = [chip.x_lo, chip.x_hi]
    if len(merged_y) < 2:
        merged_y = [chip.y_lo, chip.y_hi]
    return IRGrid(chip, CutLines(merged_x), CutLines(merged_y))
