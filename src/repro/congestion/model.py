"""The Irregular-Grid congestion model (Algorithm, Section 4.6).

Given a chip and its placed 2-pin nets, the model:

1. collects the nets' routing-range boundaries as cut lines and merges
   lines closer than twice the unit-grid pitch (steps 1-2, in
   :mod:`repro.congestion.irgrid`);
2. for every net, assigns probability 1 to the IR-grids covering its
   pins (step 3.1) and computes every other covered IR-grid's crossing
   probability with the Theorem-1 approximation (step 3.2), falling
   back to the exact Formula 3 where the approximation's domain guards
   fire (Section 4.5) or the range is too thin for the normal
   approximation (g1 or g2 < 3);
3. accumulates the per-net probabilities into each IR-grid's congestion
   record (step 3.3) and derives per-area-unit densities (step 4);
4. scores the floorplan as the area-weighted average density of the top
   10 % most congested area units (step 5).

The per-net math runs through the numpy kernels in
:mod:`repro.congestion.vectorized`; the scalar reference formulas in
:mod:`repro.congestion.exact_ir` / :mod:`repro.congestion.approx` remain
the ground truth the kernels are tested against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import KernelBackend, make_backend
from repro.congestion.base import CongestionCell, CongestionMap, CongestionModel
from repro.congestion.batched import (
    batched_approx_mass,
    batched_approx_mass_arrays,
    batched_edge_contributions,
)
from repro.congestion.cache import CacheContext
from repro.congestion.ledger import CongestionLedger
from repro.congestion.exact_ir import exact_ir_probability
from repro.congestion.irgrid import IRGrid, build_irgrid, build_irgrid_arrays
from repro.congestion.vectorized import approx_ir_matrix, exact_ir_matrix
from repro.geometry import Point, Rect
from repro.netlist import NetType, TwoPinNet
from repro.perf import NULL_RECORDER

__all__ = ["IrregularGridModel"]

_METHODS = ("approx", "exact")


def _nets_from_arrays(arr) -> List[TwoPinNet]:
    """Materialize :class:`TwoPinNet` objects from edge arrays (the
    exact-rescue path only -- the hot path never builds objects)."""
    p1x, p1y, p2x, p2y, weights = arr
    return [
        TwoPinNet(
            name=f"edge{k}",
            p1=Point(float(p1x[k]), float(p1y[k])),
            p2=Point(float(p2x[k]), float(p2y[k])),
            weight=float(weights[k]),
        )
        for k in range(len(p1x))
    ]


class IrregularGridModel(CongestionModel):
    """The paper's congestion model.

    Parameters
    ----------
    grid_size:
        Unit-grid pitch in micrometres (paper: 30x30; 60x60 for apte).
        Sets the route-model resolution and the cut-line merge
        threshold.
    merge_factor:
        Cut lines closer than ``merge_factor * grid_size`` are merged
        (Algorithm step 2; paper value 2.0).
    method:
        ``"approx"`` (Theorem 1 + exact fallback; the paper's model) or
        ``"exact"`` (Formula 3 everywhere via prefix sums).
    panels:
        Simpson panels per integral for the approximation.
    paper_bounds:
        Integrate over the paper's literal ``[x1, x2]`` bounds instead
        of the midpoint-corrected ``[x1-1/2, x2+1/2]``.
    top_fraction:
        Chip-area fraction whose densest cells form the score.
    use_cache:
        Memoize per-net probability results in the model's
        :class:`~repro.perf.context.CacheContext`.  Identical results
        either way; disable for cache-free timing baselines.
    use_ledger:
        Let :meth:`estimate_arrays_ledger` take the O(dirty) delta path
        when the caller supplies a committed-grid ledger whose merged
        cut lines match the candidate's (see
        :mod:`repro.congestion.ledger`).  Disable for ablation runs; the
        plain :meth:`estimate_arrays` never uses a ledger either way.
    ledger_refresh:
        Delta evaluations allowed before a full rebuild is forced.
        Each delta reorders float additions relative to a from-scratch
        scatter (agreement to ~1e-14 per step); the periodic rebuild
        bounds accumulated drift far inside the strict-mode 1e-12
        contract.
    cache_context:
        The cache fleet to memoize into.  Normally injected by the
        owning engine/objective so all of a run's caches share one
        accountable context; when ``None`` and ``use_cache`` is true, a
        private context is created on first use, so standalone models
        still never share state with one another.
    backend:
        Compute backend for the batched mass evaluation: a registered
        name (``"numpy"`` / ``"numba"`` / ``"python"``), a built
        :class:`~repro.backend.KernelBackend`, or ``None`` for numpy.
        ``None`` also lets an owning objective inject its backend,
        mirroring ``cache_context``.  Results agree across backends to
        <= 1e-12 relative (see :mod:`repro.backend.registry`).

    The ``perf`` attribute may be set to a
    :class:`~repro.perf.PerfRecorder` to time the evaluation phases
    (``irgrid_build`` / ``mass_eval`` / ``scoring``).
    """

    def __init__(
        self,
        grid_size: float,
        merge_factor: float = 2.0,
        method: str = "approx",
        panels: int = 8,
        paper_bounds: bool = False,
        top_fraction: float = 0.1,
        use_cache: bool = True,
        cache_context: Optional[CacheContext] = None,
        backend=None,
        use_ledger: bool = True,
        ledger_refresh: int = 64,
    ):
        if grid_size <= 0:
            raise ValueError(f"grid_size must be positive, got {grid_size}")
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
        if ledger_refresh < 1:
            raise ValueError(
                f"ledger_refresh must be >= 1, got {ledger_refresh}"
            )
        self.grid_size = float(grid_size)
        self.merge_factor = float(merge_factor)
        self.method = method
        self.panels = int(panels)
        self.paper_bounds = bool(paper_bounds)
        self.top_fraction = float(top_fraction)
        self.use_cache = bool(use_cache)
        self.use_ledger = bool(use_ledger)
        self.ledger_refresh = int(ledger_refresh)
        self.cache_context = cache_context
        if backend is not None and not isinstance(backend, KernelBackend):
            backend = make_backend(backend)
        self.backend = backend
        self.perf = NULL_RECORDER
        self._exact_twin_model: Optional["IrregularGridModel"] = None

    def _context(self) -> Optional[CacheContext]:
        """The cache fleet to memoize into, or ``None`` when disabled.

        Lazily creates a private context for standalone models so two
        models never share mutable state unless a caller injected the
        same context into both.
        """
        if not self.use_cache:
            return None
        if self.cache_context is None:
            self.cache_context = CacheContext()
        return self.cache_context

    # -- public API ---------------------------------------------------

    def evaluate(self, chip: Rect, nets: Sequence[TwoPinNet]) -> CongestionMap:
        """Build the IR congestion map of ``nets`` over ``chip``."""
        congestion_map, _ = self.evaluate_with_grid(chip, nets)
        return congestion_map

    def evaluate_with_grid(
        self, chip: Rect, nets: Sequence[TwoPinNet]
    ) -> Tuple[CongestionMap, IRGrid]:
        """Like :meth:`evaluate`, also returning the IR-grid (Experiment
        3 reports its cell count)."""
        with self.perf.timeit("irgrid_build"):
            irgrid = build_irgrid(
                chip, nets, self.grid_size, self.merge_factor
            )
        with self.perf.timeit("mass_eval"):
            mass = self._mass_array(irgrid, nets)
        cells = [
            CongestionCell(rect, float(mass[i, j]))
            for i, j, rect in irgrid.cells()
        ]
        return CongestionMap(chip, cells), irgrid

    def score(self, congestion_map: CongestionMap) -> float:
        """Step 5: area-weighted mean density of the densest
        ``top_fraction`` of the chip."""
        return congestion_map.top_density_score(self.top_fraction)

    def estimate(self, chip: Rect, nets: Sequence[TwoPinNet]) -> float:
        """Scalar congestion cost without materializing cell objects.

        Computes the mass array and scores it directly from the
        cut-line geometry (identical result to ``score(evaluate(...))``,
        covered by tests).
        """
        with self.perf.timeit("irgrid_build"):
            irgrid = build_irgrid(
                chip, nets, self.grid_size, self.merge_factor
            )
        with self.perf.timeit("mass_eval"):
            mass = self._mass_array(irgrid, nets)
        return self._score_mass(irgrid, mass)

    def estimate_arrays(self, chip: Rect, arr) -> float:
        """Scalar congestion cost straight from edge coordinate arrays.

        The annealing hot path: no :class:`TwoPinNet` objects are read
        or built anywhere downstream -- the IR-grid and the batched
        probability kernel consume the arrays directly.  Identical
        result to :meth:`estimate` over the same edge geometry; the
        ``"exact"`` method has no array kernel and falls back to the
        generic object-materializing implementation.
        """
        if self.method != "approx":
            return super().estimate_arrays(chip, arr)
        with self.perf.timeit("irgrid_build"):
            irgrid = build_irgrid_arrays(
                chip, arr, self.grid_size, self.merge_factor
            )
        ctx = self._context()
        with self.perf.timeit("mass_eval"):
            mass = batched_approx_mass_arrays(
                irgrid,
                arr,
                self.grid_size,
                panels=self.panels,
                paper_bounds=self.paper_bounds,
                cache=ctx.net_mass if ctx else None,
                exact_cache=ctx.exact_prob if ctx else None,
                backend=self.backend,
            )
            if not np.isfinite(mass).all():
                mass = self._exact_rescue(irgrid, _nets_from_arrays(arr))
        return self._score_mass(irgrid, mass)

    def estimate_arrays_ledger(
        self, chip: Rect, arr, ledger=None, dirty=None
    ) -> Tuple[float, Optional[CongestionLedger]]:
        """:meth:`estimate_arrays` with the committed-grid delta path.

        ``ledger`` is the committed state's
        :class:`~repro.congestion.ledger.CongestionLedger` and ``dirty``
        the indices (into ``arr``) of the edges whose geometry changed
        since it was recorded.  When the candidate's merged cut lines
        equal the ledger's (the ``np.array_equal`` fingerprint) and the
        ledger has delta budget left, the new mass is
        ``committed_mass - dirty old blocks + dirty new blocks`` over
        only the dirty edges -- O(dirty), counted as
        ``congestion_delta``/``ledger_hits``.  Otherwise the full batch
        runs and records a fresh ledger (``congestion_grid_rebuilt``).
        Returns ``(score, new_ledger)``; the committed ledger is never
        mutated, so a rejected candidate rolls back by dropping the
        returned one.
        """
        if self.method != "approx":
            return super().estimate_arrays(chip, arr), None
        with self.perf.timeit("irgrid_build"):
            irgrid = build_irgrid_arrays(
                chip, arr, self.grid_size, self.merge_factor
            )
        ctx = self._context()
        cache = ctx.net_mass if ctx else None
        exact_cache = ctx.exact_prob if ctx else None
        if (
            self.use_ledger
            and ledger is not None
            and dirty is not None
            and ledger.age < self.ledger_refresh
            and ledger.matches(
                np.asarray(irgrid.x_lines.lines),
                np.asarray(irgrid.y_lines.lines),
            )
        ):
            self.perf.count("ledger_hits")
            with self.perf.timeit("mass_eval"):
                rows = np.asarray(dirty, dtype=np.intp)
                fresh = batched_edge_contributions(
                    irgrid,
                    arr,
                    rows,
                    self.grid_size,
                    panels=self.panels,
                    paper_bounds=self.paper_bounds,
                    cache=cache,
                    exact_cache=exact_cache,
                    backend=self.backend,
                )
                if np.isfinite(fresh.values).all():
                    mass = ledger.mass.copy()
                    flat = mass.ravel()
                    old_cells, old_values = ledger.gather(rows)
                    self._scatter_into(flat, old_cells, np.negative(old_values))
                    self._scatter_into(flat, fresh.cells, fresh.values)
                    new_ledger = ledger.replaced(rows, fresh, mass)
                    self.perf.count("congestion_delta")
                    return self._score_mass(irgrid, mass), new_ledger
            # Non-finite dirty contributions: fall through to the full
            # batch, whose exact rescue knows how to recover.
        self.perf.count("congestion_grid_rebuilt")
        with self.perf.timeit("mass_eval"):
            mass, contrib = batched_approx_mass_arrays(
                irgrid,
                arr,
                self.grid_size,
                panels=self.panels,
                paper_bounds=self.paper_bounds,
                cache=cache,
                exact_cache=exact_cache,
                backend=self.backend,
                want_contributions=True,
            )
            new_ledger = None
            if np.isfinite(mass).all():
                if self.use_ledger:
                    new_ledger = CongestionLedger(
                        np.asarray(irgrid.x_lines.lines),
                        np.asarray(irgrid.y_lines.lines),
                        mass,
                        contrib,
                    )
            else:
                mass = self._exact_rescue(irgrid, _nets_from_arrays(arr))
        return self._score_mass(irgrid, mass), new_ledger

    def _scatter_into(self, flat, cells, values) -> None:
        """Input-order ``flat[cells] += values`` through the backend's
        scatter kernel (``np.add.at`` semantics either way)."""
        kern = None if self.backend is None else self.backend.scatter_kernel
        if kern is not None:
            kern(cells, values, flat)
        else:
            np.add.at(flat, cells, values)

    def densities_arrays(self, chip: Rect, arr) -> np.ndarray:
        """Per-cell densities straight from edge coordinate arrays.

        The progress-snapshot path (``repro.obs``): observers sample the
        committed floorplan's hottest densities between moves, and
        recomputing pins/nets from scratch there costs a full scalar
        evaluation per sample.  This reuses the array kernels and the
        memo caches the walk itself populates, so a cache-warm snapshot
        costs one batched mass call plus the IR-grid build.  Values
        match :meth:`evaluate`'s ``CongestionMap.densities()`` over the
        same edge geometry; the ``"exact"`` method falls back to exactly
        that path.
        """
        if self.method != "approx":
            congestion_map = self.evaluate(chip, _nets_from_arrays(arr))
            return np.asarray(congestion_map.densities())
        with self.perf.timeit("irgrid_build"):
            irgrid = build_irgrid_arrays(
                chip, arr, self.grid_size, self.merge_factor
            )
        ctx = self._context()
        with self.perf.timeit("mass_eval"):
            mass = batched_approx_mass_arrays(
                irgrid,
                arr,
                self.grid_size,
                panels=self.panels,
                paper_bounds=self.paper_bounds,
                cache=ctx.net_mass if ctx else None,
                exact_cache=ctx.exact_prob if ctx else None,
                backend=self.backend,
            )
            if not np.isfinite(mass).all():
                mass = self._exact_rescue(irgrid, _nets_from_arrays(arr))
        density, _ = self._densities(irgrid, mass)
        return density

    def _densities(
        self, irgrid: IRGrid, mass: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(density, areas)`` flat vectors of a computed mass array.

        The one shared density derivation (step 4) behind both the
        scoring hot path and the observability snapshot path: per-cell
        areas from the cut-line diffs, density = mass / area with
        zero-area cells scored 0.
        """
        widths = np.diff(np.asarray(irgrid.x_lines.lines))
        heights = np.diff(np.asarray(irgrid.y_lines.lines))
        areas = np.outer(widths, heights).ravel()
        flat = mass.ravel()
        with np.errstate(invalid="ignore", divide="ignore"):
            density = np.where(areas > 0, flat / areas, 0.0)
        return density, areas

    def _score_mass(self, irgrid: IRGrid, mass: np.ndarray) -> float:
        """Step 5 scoring of a computed mass array (shared hot path)."""
        with self.perf.timeit("scoring"):
            density, areas = self._densities(irgrid, mass)
            return self._top_density_score(density, areas)

    def _top_density_score(
        self, density: np.ndarray, areas: np.ndarray
    ) -> float:
        """Area-weighted mean density of the densest ``top_fraction``.

        Selection-based: a quickselect-style partition loop consumes or
        descends into the cells above the running median until the pool
        is small, then finishes with the argsort greedy -- O(C) expected
        work instead of the full sort's O(C log C).  Equal to the
        argsort greedy to float-summation dust (<= 1e-12, property
        tested): full cells contribute ``density * area`` regardless of
        visit order, and when the area target lands inside a group of
        equal-density cells the partial take contributes the tied
        density per unit area no matter which tied cells are chosen, so
        tie order cannot change the score.
        """
        total_area = float(areas.sum())
        if total_area <= 0:
            return 0.0
        target = self.top_fraction * total_area
        num = 0.0  # density-times-area mass of the cells taken so far
        taken = 0.0  # area taken so far (always < target in the loop)
        d = density
        a = areas
        while len(d) > 32:
            v = float(np.partition(d, len(d) // 2)[len(d) // 2])
            hi = d > v
            area_hi = float(a[hi].sum())
            if taken + area_hi >= target:
                # Boundary inside the upper half: discard the rest.
                d = d[hi]
                a = a[hi]
                continue
            eq = d == v
            area_eq = float(a[eq].sum())
            num += float((d[hi] * a[hi]).sum())
            if taken + area_hi + area_eq >= target:
                # Boundary inside the tie group at density v: the
                # partial take contributes v per unit area whichever
                # tied cells are "chosen", so the score is tie-order
                # independent.
                num += v * (target - taken - area_hi)
                return float(num / target)
            num += v * area_eq
            taken += area_hi + area_eq
            lo = d < v
            d = d[lo]
            a = a[lo]
        if len(d) == 0:
            # Float dust in the subset sums can exhaust the pool a hair
            # before `taken` reaches `target` (only when top_fraction
            # covers the whole chip): everything is taken.
            return float(num / taken) if taken > 0 else 0.0
        # Small-pool finish: the seed path's argsort greedy.
        order = np.argsort(d)[::-1]
        a_s = a[order]
        d_s = d[order]
        ca = np.cumsum(a_s)
        rem = target - taken
        j = min(int(np.searchsorted(ca, rem, side="left")), len(a_s) - 1)
        prev_area = float(ca[j - 1]) if j > 0 else 0.0
        prev_mass = (
            float(np.cumsum(d_s[: j + 1] * a_s[: j + 1])[j - 1])
            if j > 0
            else 0.0
        )
        take = min(float(a_s[j]), rem - prev_area)
        mass_sum = num + prev_mass + float(d_s[j]) * take
        covered = taken + prev_area + take
        return float(mass_sum / covered) if covered > 0 else 0.0

    # -- internals -----------------------------------------------------

    def _mass_array(self, irgrid: IRGrid, nets: Sequence[TwoPinNet]) -> np.ndarray:
        """Congestion mass per IR-cell, shape ``(n_columns, n_rows)``."""
        if self.method == "approx":
            ctx = self._context()
            mass = batched_approx_mass(
                irgrid,
                nets,
                self.grid_size,
                panels=self.panels,
                paper_bounds=self.paper_bounds,
                cache=ctx.net_mass if ctx else None,
                exact_cache=ctx.exact_prob if ctx else None,
                backend=self.backend,
            )
            if not np.isfinite(mass).all():
                mass = self._exact_rescue(irgrid, nets)
            return mass
        mass = np.zeros((irgrid.n_columns, irgrid.n_rows))
        for net in nets:
            self._add_net(irgrid, net, mass)
        return mass

    def _exact_rescue(
        self, irgrid: IRGrid, nets: Sequence[TwoPinNet]
    ) -> np.ndarray:
        """Recompute a non-finite mass array with the exact model.

        The last line of NaN/inf defense: the cell-level guards already
        reroute individual failed approximations to Formula 3, so a
        non-finite *mass* means something upstream is feeding the
        kernel garbage the guards cannot see.  The whole floorplan is
        re-evaluated exactly (cache-free -- the twin must not launder
        poisoned entries back in), which is slow but always finite, and
        the rescue is counted so tests and perf reports can see it
        fired.
        """
        self.perf.count("congestion_exact_rescue")
        if self._exact_twin_model is None:
            self._exact_twin_model = IrregularGridModel(
                self.grid_size,
                merge_factor=self.merge_factor,
                method="exact",
                top_fraction=self.top_fraction,
                use_cache=False,
            )
        return self._exact_twin_model._mass_array(irgrid, nets)

    def _add_net(
        self,
        irgrid: IRGrid,
        net: TwoPinNet,
        mass: np.ndarray,
    ) -> None:
        snapped = irgrid.snap_range(net.routing_range)
        col_lo, col_hi, row_lo, row_hi = irgrid.cell_span(snapped)
        g1 = max(1, round(snapped.width / self.grid_size))
        g2 = max(1, round(snapped.height / self.grid_size))
        net_type = net.net_type
        if (
            net_type is NetType.DEGENERATE
            or snapped.is_degenerate
            or g1 == 1
            or g2 == 1
        ):
            # Point/segment ranges: every shortest route crosses every
            # covered IR-grid (Section 2), probability 1.
            mass[col_lo : col_hi + 1, row_lo : row_hi + 1] += net.weight
            return

        col_spans = self._unit_spans(
            irgrid.x_lines, col_lo, col_hi, snapped.x_lo, snapped.width, g1
        )
        row_spans = self._unit_spans(
            irgrid.y_lines, row_lo, row_hi, snapped.y_lo, snapped.height, g2
        )

        # The probability matrix depends only on this local signature
        # (the spans are already unit-grid integers), so it is reusable
        # across moves and floorplans whenever the geometry recurs.
        ctx = self._context()
        key = None
        if ctx is not None:
            key = (
                self.method,
                self.panels,
                self.paper_bounds,
                net_type,
                g1,
                g2,
                tuple(col_spans),
                tuple(row_spans),
            )
            cached = ctx.net_matrix.get(key)
            if cached is not None:
                mass[col_lo : col_hi + 1, row_lo : row_hi + 1] += (
                    net.weight * cached
                )
                return

        if self.method == "exact" or g1 < 3 or g2 < 3:
            probs = exact_ir_matrix(g1, g2, net_type, col_spans, row_spans)
        else:
            probs, invalid = approx_ir_matrix(
                g1,
                g2,
                net_type,
                col_spans,
                row_spans,
                panels=self.panels,
                paper_bounds=self.paper_bounds,
            )
            # A non-finite probability is a failed approximation the
            # domain guards missed; send it to the exact fallback too.
            invalid = invalid | ~np.isfinite(probs)
            if invalid.any():
                # Section 4.5: the approximation fails only next to the
                # pins; the exact boundary sum there is short and valid.
                for j, i in zip(*np.nonzero(invalid)):
                    x1, x2 = col_spans[i]
                    y1, y2 = row_spans[j]
                    probs[j, i] = exact_ir_probability(
                        g1, g2, net_type, x1, x2, y1, y2
                    )

        # Step 3.1: IR-grids covering a pin are certain.
        if net_type is NetType.TYPE_I:
            probs[0, 0] = 1.0
            probs[-1, -1] = 1.0
        else:
            probs[-1, 0] = 1.0
            probs[0, -1] = 1.0

        block = np.ascontiguousarray(probs.T)
        if key is not None:
            block.setflags(write=False)
            ctx.net_matrix.put(key, block)
        mass[col_lo : col_hi + 1, row_lo : row_hi + 1] += net.weight * block

    def _unit_spans(
        self,
        lines,
        cell_lo: int,
        cell_hi: int,
        origin: float,
        extent: float,
        count: int,
    ) -> List[Tuple[int, int]]:
        """Unit-grid index spans of the covered IR-cells along one axis."""
        unit = extent / count
        spans: List[Tuple[int, int]] = []
        for c in range(cell_lo, cell_hi + 1):
            lo, hi = lines.cell_bounds(c)
            i1 = _unit_index(lo, origin, unit, count)
            i2 = max(i1, _unit_index(hi, origin, unit, count, upper=True))
            spans.append((i1, i2))
        return spans


def _unit_index(
    coord: float,
    origin: float,
    unit: float,
    count: int,
    upper: bool = False,
) -> int:
    """Map an IR-cell boundary coordinate to a unit-grid index.

    Lower boundaries map to the unit column they start, upper
    boundaries to the last unit column they cover (exclusive boundary
    minus one).  Clamped into ``[0, count-1]``.
    """
    t = (coord - origin) / unit
    idx = round(t) - 1 if upper else round(t)
    return min(max(idx, 0), count - 1)
