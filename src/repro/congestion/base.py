"""Shared congestion-map types and the model interface.

Both models produce a :class:`CongestionMap`: a tiling of the chip into
cells, each carrying the summed crossing probability of all nets
(the paper's congestion information ``f(x,y)`` / ``F(I)``).  The map
knows how to turn itself into the paper's scalar scores.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry import Point, Rect
from repro.metrics.stats import (
    area_weighted_top_fraction_mean,
    top_fraction_mean,
)
from repro.netlist import TwoPinArrays, TwoPinNet

__all__ = ["CongestionCell", "CongestionMap", "CongestionModel"]


@dataclass
class CongestionCell:
    """One evaluation cell with its accumulated congestion mass.

    ``mass`` is the weighted sum over nets of the probability that the
    net's route crosses this cell -- ``f(x, y)`` for fixed grids,
    ``F(I)`` for IR-grids.
    """

    rect: Rect
    mass: float = 0.0

    @property
    def density(self) -> float:
        """Congestion per unit area -- the comparable quantity across
        cells of different sizes (Section 4.3)."""
        if self.rect.area <= 0.0:
            return 0.0
        return self.mass / self.rect.area


class CongestionMap:
    """A congestion tiling of the chip plus the derived scalar scores."""

    def __init__(self, chip: Rect, cells: Sequence[CongestionCell]):
        if not cells:
            raise ValueError("congestion map needs at least one cell")
        self.chip = chip
        self.cells: List[CongestionCell] = list(cells)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def total_mass(self) -> float:
        return sum(c.mass for c in self.cells)

    @property
    def max_mass(self) -> float:
        return max(c.mass for c in self.cells)

    @property
    def max_density(self) -> float:
        return max(c.density for c in self.cells)

    def top_mass_score(self, fraction: float = 0.1) -> float:
        """Mean mass of the top ``fraction`` most congested cells.

        The fixed-size-grid score of Section 3 -- meaningful only when
        all cells have equal area.
        """
        return top_fraction_mean([c.mass for c in self.cells], fraction)

    def top_density_score(self, fraction: float = 0.1) -> float:
        """Area-weighted mean *density* of the densest ``fraction`` of
        the chip area -- the Irregular-Grid score (Algorithm step 5)."""
        return area_weighted_top_fraction_mean(
            [(c.density, c.rect.area) for c in self.cells], fraction
        )

    def densities(self) -> List[float]:
        """Per-cell densities, in cell order."""
        return [c.density for c in self.cells]

    def cells_over(self, mass_threshold: float) -> List[CongestionCell]:
        """Cells whose mass exceeds a routing-capacity-style threshold."""
        return [c for c in self.cells if c.mass > mass_threshold]

    def __repr__(self) -> str:
        return (
            f"CongestionMap({self.n_cells} cells, total mass "
            f"{self.total_mass:.3f}, max density {self.max_density:.3g})"
        )


class CongestionModel(abc.ABC):
    """Interface shared by the fixed-size-grid and Irregular-Grid models."""

    @abc.abstractmethod
    def evaluate(
        self, chip: Rect, nets: Sequence[TwoPinNet]
    ) -> CongestionMap:
        """Build the congestion map of ``nets`` over ``chip``."""

    @abc.abstractmethod
    def score(self, congestion_map: CongestionMap) -> float:
        """Collapse a map to the model's scalar floorplan cost."""

    def estimate(self, chip: Rect, nets: Sequence[TwoPinNet]) -> float:
        """Convenience: ``score(evaluate(...))``."""
        return self.score(self.evaluate(chip, nets))

    def estimate_arrays(self, chip: Rect, arr: TwoPinArrays) -> float:
        """Scalar cost of placed 2-pin nets given as coordinate arrays.

        The generic implementation materializes anonymous
        :class:`TwoPinNet` objects and defers to :meth:`estimate`;
        models with an array-native kernel override this to skip the
        objects entirely (the annealing hot path calls it thousands of
        times per run).
        """
        nets = [
            TwoPinNet(
                name=f"e{k}",
                p1=Point(float(arr.p1x[k]), float(arr.p1y[k])),
                p2=Point(float(arr.p2x[k]), float(arr.p2y[k])),
                weight=float(arr.weights[k]),
            )
            for k in range(len(arr))
        ]
        return self.estimate(chip, nets)

    def estimate_arrays_ledger(
        self, chip: Rect, arr: TwoPinArrays, ledger=None, dirty=None
    ):
        """:meth:`estimate_arrays` with optional delta-state carry.

        Returns ``(score, new_ledger)``.  ``ledger`` is the committed
        state's :class:`~repro.congestion.ledger.CongestionLedger` (or
        ``None``) and ``dirty`` the indices of the edges that changed
        since it was recorded; models that can re-estimate O(dirty)
        override this.  The generic implementation ignores both and
        carries no ledger, which is always correct -- callers fall back
        to a full evaluation whenever the returned ledger is ``None``.
        """
        return self.estimate_arrays(chip, arr), None
