"""The fixed-size-grid congestion model (Section 3; Sham & Young [4]).

The chip is tiled with square grids of a configured pitch; every 2-pin
net spreads one unit of probability mass over the grids of its routing
range according to Formula 2; the per-grid sums ``f(x, y)`` form the
congestion map and the floorplan score is the mean of the top 10 % of
grids.

This model is both the paper's comparison baseline (Experiment 3) and,
instantiated at very fine pitch, its "judging model" (Section 5).

The per-net probability tables are evaluated vectorised with numpy from
a shared log-factorial table, so even the 10 x 10 um^2 judging pitch on
a ~1 mm chip (>10^4 grids) evaluates in milliseconds.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.congestion.base import CongestionCell, CongestionMap, CongestionModel
from repro.congestion.vectorized import _log_factorials
from repro.geometry import Rect
from repro.netlist import NetType, TwoPinNet

__all__ = ["FixedGridModel"]


class FixedGridModel(CongestionModel):
    """Probabilistic congestion on a uniform square grid.

    Parameters
    ----------
    grid_size:
        Grid pitch in micrometres (the paper sweeps 10, 50 and 100).
    top_fraction:
        Fraction of most-congested grids averaged into the score
        (paper: 0.1).
    """

    def __init__(self, grid_size: float, top_fraction: float = 0.1):
        if grid_size <= 0:
            raise ValueError(f"grid_size must be positive, got {grid_size}")
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError(
                f"top_fraction must be in (0, 1], got {top_fraction}"
            )
        self.grid_size = float(grid_size)
        self.top_fraction = float(top_fraction)

    # -- public API ---------------------------------------------------

    def evaluate(self, chip: Rect, nets: Sequence[TwoPinNet]) -> CongestionMap:
        """Accumulate every net's crossing probabilities over the grid."""
        grid = self.evaluate_array(chip, nets)
        cells = self._to_cells(grid, chip)
        return CongestionMap(chip, cells)

    def evaluate_array(self, chip: Rect, nets: Sequence[TwoPinNet]) -> np.ndarray:
        """The raw ``f(x, y)`` mass array, shape ``(columns, rows)``.

        The fast path for fine judging grids (a 10 um pitch on a large
        chip has ~10^5-10^6 cells; building :class:`CongestionCell`
        objects for them would dwarf the numeric work).
        """
        n_cols, n_rows = self.grid_shape(chip)
        grid = np.zeros((n_cols, n_rows))
        for net in nets:
            self._add_net(grid, chip, net)
        return grid

    def score(self, congestion_map: CongestionMap) -> float:
        """Mean mass of the top ``top_fraction`` grids (Section 3)."""
        return congestion_map.top_mass_score(self.top_fraction)

    def score_array(self, grid: np.ndarray) -> float:
        """:meth:`score` computed directly on a mass array."""
        flat = np.sort(grid.ravel())[::-1]
        k = max(1, int(round(self.top_fraction * len(flat))))
        return float(flat[:k].mean())

    def estimate_fast(self, chip: Rect, nets: Sequence[TwoPinNet]) -> float:
        """Array-only ``score(evaluate(...))`` without cell objects."""
        return self.score_array(self.evaluate_array(chip, nets))

    def grid_shape(self, chip: Rect) -> Tuple[int, int]:
        """(columns, rows) covering the chip; boundary cells may be
        clipped when the pitch does not divide the chip edge."""
        n_cols = max(1, math.ceil(chip.width / self.grid_size - 1e-9))
        n_rows = max(1, math.ceil(chip.height / self.grid_size - 1e-9))
        return n_cols, n_rows

    def cell_index(self, chip: Rect, x: float, y: float) -> Tuple[int, int]:
        """Grid cell containing a chip coordinate (half-open cells; the
        top/right chip edge folds into the last cell)."""
        n_cols, n_rows = self.grid_shape(chip)
        ix = int((x - chip.x_lo) / self.grid_size)
        iy = int((y - chip.y_lo) / self.grid_size)
        return min(max(ix, 0), n_cols - 1), min(max(iy, 0), n_rows - 1)

    # -- internals -----------------------------------------------------

    def _add_net(self, grid: np.ndarray, chip: Rect, net: TwoPinNet) -> None:
        n_cols, n_rows = grid.shape
        ix1, iy1 = self._index(chip, net.p1.x, net.p1.y, n_cols, n_rows)
        ix2, iy2 = self._index(chip, net.p2.x, net.p2.y, n_cols, n_rows)
        x_lo, x_hi = min(ix1, ix2), max(ix1, ix2)
        y_lo, y_hi = min(iy1, iy2), max(iy1, iy2)
        g1 = x_hi - x_lo + 1
        g2 = y_hi - y_lo + 1
        if g1 == 1 or g2 == 1:
            # Degenerate range: every shortest route crosses every
            # covered grid, probability 1 (Section 2).
            grid[x_lo : x_hi + 1, y_lo : y_hi + 1] += net.weight
            return
        if net.net_type is NetType.TYPE_I:
            table = _probability_block(g1, g2, type_two=False)
        else:
            table = _probability_block(g1, g2, type_two=True)
        grid[x_lo : x_hi + 1, y_lo : y_hi + 1] += net.weight * table

    def _index(
        self, chip: Rect, x: float, y: float, n_cols: int, n_rows: int
    ) -> Tuple[int, int]:
        ix = int((x - chip.x_lo) / self.grid_size)
        iy = int((y - chip.y_lo) / self.grid_size)
        return min(max(ix, 0), n_cols - 1), min(max(iy, 0), n_rows - 1)

    def _to_cells(self, grid: np.ndarray, chip: Rect) -> List[CongestionCell]:
        n_cols, n_rows = grid.shape
        cells: List[CongestionCell] = []
        for ix in range(n_cols):
            cx_lo = chip.x_lo + ix * self.grid_size
            cx_hi = min(cx_lo + self.grid_size, chip.x_hi)
            for iy in range(n_rows):
                cy_lo = chip.y_lo + iy * self.grid_size
                cy_hi = min(cy_lo + self.grid_size, chip.y_hi)
                cells.append(
                    CongestionCell(
                        Rect(cx_lo, cy_lo, cx_hi, cy_hi),
                        float(grid[ix, iy]),
                    )
                )
        return cells


def _probability_block(g1: int, g2: int, type_two: bool) -> np.ndarray:
    """Vectorised Formula-2 table, shape ``(g1, g2)``.

    Type II is the vertical mirror of type I (flip y), which the closed
    forms confirm: substituting y -> g2-1-y maps one into the other.
    """
    r = g1 + g2 - 2
    lg = _log_factorials(r)
    x = np.arange(g1)[:, None]
    y = np.arange(g2)[None, :]
    s = x + y
    log_ta = lg[s] - lg[x] - lg[y]
    log_tb = lg[r - s] - lg[g1 - 1 - x] - lg[g2 - 1 - y]
    log_total = lg[r] - lg[g1 - 1] - lg[g2 - 1]
    table = np.exp(log_ta + log_tb - log_total)
    if type_two:
        table = table[:, ::-1]
    return table


