"""The paper's "judging model" (Section 5).

Experiment correctness is judged with the fixed-size-grid model at a
very fine pitch (10 x 10 um^2 in the paper) applied *post hoc* to a
finished floorplan: fine enough to stand in for real post-routing
congestion, far too slow to sit inside the annealing loop.

This wrapper bundles the fine-pitch :class:`FixedGridModel` with the
pin-assignment step so a floorplan + netlist can be judged in one call.
"""

from __future__ import annotations

from repro.congestion.base import CongestionMap
from repro.congestion.fixed_grid import FixedGridModel
from repro.floorplan import Floorplan
from repro.netlist import Netlist
from repro.pins import assign_pins

__all__ = ["JudgingModel"]


class JudgingModel:
    """Fine-pitch fixed-grid congestion judge.

    Parameters
    ----------
    grid_size:
        Judging pitch in micrometres (paper: 10; Experiment 2 also
        uses 50).
    top_fraction:
        Score fraction, as in the underlying fixed-grid model.
    """

    def __init__(self, grid_size: float = 10.0, top_fraction: float = 0.1):
        self._model = FixedGridModel(grid_size, top_fraction)

    @property
    def grid_size(self) -> float:
        return self._model.grid_size

    def judge_map(self, floorplan: Floorplan, netlist: Netlist) -> CongestionMap:
        """Pin-assign, decompose and evaluate at the judging pitch."""
        assignment = assign_pins(floorplan, netlist, self._model.grid_size)
        return self._model.evaluate(floorplan.chip, assignment.two_pin_nets)

    def judge(self, floorplan: Floorplan, netlist: Netlist) -> float:
        """The scalar judging congestion cost of a floorplan.

        Uses the array fast path: fine judging lattices on large chips
        have 10^5+ cells and never need per-cell objects.
        """
        assignment = assign_pins(floorplan, netlist, self._model.grid_size)
        return self._model.estimate_fast(floorplan.chip, assignment.two_pin_nets)
