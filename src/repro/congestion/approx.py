"""The constant-time approximating formulas (Section 4.4, Theorem 1).

Formula 3's boundary sums cost O(x2-x1 + y2-y1) per IR-grid.  The paper
rewrites each summand as a hypergeometry-like ratio ``h(x, r, R, Q)``
with ``Q = x + y2``, ``R = g1+g2-3``, ``r = g1-1``, approximates it with
the moment-matched normal density, and replaces the sums with definite
integrals evaluated by Simpson's rule -- a constant number of
floating-point operations regardless of IR-grid size.

Domain guards (Section 4.5): the normal approximation is invalid where
``(x + y2)/(g1+g2-3)`` is 0, 1 or beyond -- which happens only at the
four grids adjacent to the net's pins -- and degenerates when a variance
factor is non-positive (ranges thinner than 3 unit grids).  Those cases
raise :class:`ApproximationDomainError`; the model responds per the
Algorithm (pin-covering IR-grids are worth exactly 1) or falls back to
the exact Formula 3.

Integration bounds: the discrete sum ``sum_{x=x1}^{x2}`` has
``x2-x1+1`` terms while the paper's integral ``int_{x1}^{x2}`` spans
width ``x2-x1``; by default we integrate the midpoint-corrected span
``[x1-1/2, x2+1/2]``, which tracks the exact values markedly better on
small IR-grids.  ``paper_bounds=True`` reproduces the paper's bounds
verbatim (the A1 ablation bench quantifies the difference).
"""

from __future__ import annotations

import math

from repro.congestion.routes import _log_ta, _log_tb, log_total_routes
from repro.mathutils import simpson
from repro.netlist import NetType

__all__ = [
    "ApproximationDomainError",
    "approx_ir_probability",
    "approx_function1_pointwise",
    "exact_function1_pointwise",
    "type_i_error_grids",
]


class ApproximationDomainError(ValueError):
    """The normal approximation is undefined for these parameters
    (Section 4.5's error grids, or a degenerate variance)."""


def _gauss_ratio(t: float, near_offset: float, r: int, big_r: int, spread: int) -> float:
    """The normal-approximated ``h(t, r, R, Q)`` with ``Q = t + near_offset``.

    ``r`` is the binomial count (g1-1 for Function 1), ``big_r`` is
    ``g1+g2-3`` and ``spread`` is the variance numerator (g2-2 for
    Function 1).  Raises :class:`ApproximationDomainError` outside the
    valid domain.
    """
    p = (t + near_offset) / big_r
    if not 0.0 < p < 1.0:
        raise ApproximationDomainError(
            f"mean fraction {p:.3f} outside (0, 1) at t={t}"
        )
    denom = big_r - 1
    if spread <= 0 or denom <= 0:
        raise ApproximationDomainError(
            f"degenerate variance (spread={spread}, R-1={denom})"
        )
    var = (spread / denom) * r * p * (1.0 - p)
    if var <= 0.0:
        raise ApproximationDomainError(f"non-positive variance {var}")
    sigma = math.sqrt(var)
    mu = r * p
    z = (t - mu) / sigma
    if abs(z) > 40.0:
        return 0.0
    return math.exp(-0.5 * z * z) / (sigma * math.sqrt(2.0 * math.pi))


def approx_function1_pointwise(x: float, g1: int, g2: int, y2: int) -> float:
    """The approximated Function (1) at column ``x`` (type I).

    ``(g2-1)/(g1+g2-2) * N(x; mu_x, sigma_x)`` -- the quantity plotted
    against the exact values in the paper's Figure 8.
    """
    factor = (g2 - 1) / (g1 + g2 - 2)
    return factor * _gauss_ratio(x, float(y2), g1 - 1, g1 + g2 - 3, g2 - 2)


def exact_function1_pointwise(x: int, g1: int, g2: int, y2: int) -> float:
    """The exact Function (1): ``Ta(x, y2) Tb(x, y2+1) / total``.

    The per-column top-boundary crossing mass of a type I net; ground
    truth for Figure 8.
    """
    log_ta = _log_ta(x, y2, g1, g2, NetType.TYPE_I)
    log_tb = _log_tb(x, y2 + 1, g1, g2, NetType.TYPE_I)
    if log_ta == float("-inf") or log_tb == float("-inf"):
        return 0.0
    return math.exp(log_ta + log_tb - log_total_routes(g1, g2))


def type_i_error_grids(g1: int, g2: int):
    """The four grids where the approximation fails for a type I net
    (Section 4.5, Figure 7): (0,0), (g1-2,g2-1), (g1-1,g2-2), (g1-1,g2-1)."""
    return (
        (0, 0),
        (g1 - 2, g2 - 1),
        (g1 - 1, g2 - 2),
        (g1 - 1, g2 - 1),
    )


def approx_ir_probability(
    g1: int,
    g2: int,
    net_type: NetType,
    x1: int,
    x2: int,
    y1: int,
    y2: int,
    panels: int = 8,
    paper_bounds: bool = False,
) -> float:
    """Theorem 1: approximate crossing probability of an IR-grid.

    Arguments mirror :func:`~repro.congestion.exact_ir.exact_ir_probability`.
    Raises :class:`ApproximationDomainError` when any integrand sample
    falls outside the approximation's domain; callers fall back to the
    exact formula (or the pin rule) there.
    """
    if net_type is NetType.DEGENERATE:
        raise ValueError("approximation applies to type I/II nets only")
    if g1 < 2 or g2 < 2:
        raise ValueError(
            f"type I/II routing ranges span >= 2 grids per axis, got {g1} x {g2}"
        )
    if not (0 <= x1 <= x2 < g1 and 0 <= y1 <= y2 < g2):
        raise ValueError(
            f"IR-grid [{x1}..{x2}] x [{y1}..{y2}] outside range {g1} x {g2}"
        )
    if net_type is NetType.TYPE_II:
        # The vertical mirror (y -> g2-1-y) turns a type II net into a
        # type I net over the same range; mirror the IR-grid rows.
        y1, y2 = g2 - 1 - y2, g2 - 1 - y1
        net_type = NetType.TYPE_I

    half = 0.0 if paper_bounds else 0.5
    big_r = g1 + g2 - 3

    total = 0.0
    # Top-boundary exits: integral over columns x1..x2 -- present only
    # when a top boundary exists inside the range (y2 < g2-1); routes
    # cannot exit upward past the range.
    if y2 + 1 < g2:
        factor1 = (g2 - 1) / (g1 + g2 - 2)

        def integrand_top(x: float) -> float:
            return factor1 * _gauss_ratio(x, float(y2), g1 - 1, big_r, g2 - 2)

        total += simpson(integrand_top, x1 - half, x2 + half, panels)
    # Right-boundary exits: integral over rows y1..y2.
    if x2 + 1 < g1:
        factor2 = (g1 - 1) / (g1 + g2 - 2)

        def integrand_right(y: float) -> float:
            return factor2 * _gauss_ratio(y, float(x2), g2 - 1, big_r, g1 - 2)

        total += simpson(integrand_right, y1 - half, y2 + half, panels)
    if y2 + 1 >= g2 and x2 + 1 >= g1:
        # The IR-grid covers the far pin: the Algorithm's pin rule says
        # probability 1; signal the caller to use it rather than invent
        # an integral here.
        raise ApproximationDomainError(
            "IR-grid covers the far pin; use the pin rule (probability 1)"
        )
    return min(max(total, 0.0), 1.0)
