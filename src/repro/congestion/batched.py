"""Whole-floorplan batched evaluation of the approximate IR model.

The per-net kernels in :mod:`repro.congestion.vectorized` still pay
tens of numpy-dispatch overheads per net; inside an annealing loop that
dominates the actual arithmetic.  This module flattens *every covered
(net, IR-cell) pair of the whole floorplan* into parallel parameter
vectors and evaluates all Theorem-1 Simpson integrals in one broadcast
-- a constant number of numpy operations per floorplan evaluation.

On top of the batch kernel sits a per-net memo (see
:mod:`repro.congestion.cache`): a net's probability block depends only
on its *local signature* -- net type, unit-grid dimensions ``(g1, g2)``
and the unit-grid offsets of the cut lines crossing its snapped routing
range -- which is exactly the information Formula 3 / Theorem 1
consume.  Inside an annealing run most nets keep that signature between
consecutive states (one move perturbs a handful of modules), so most
blocks come out of the cache and the Simpson broadcast runs only over
the nets whose local geometry actually changed.

The semantics are identical to the scalar Algorithm:

* degenerate nets / ranges spread weight 1 over their covered cells;
* pin-covering cells get probability 1 (step 3.1);
* thin ranges (g1 or g2 < 3) and cells whose Simpson nodes leave the
  approximation's domain fall back to the exact Formula 3 (Section 4.5);
* everything else gets the Theorem-1 integral (step 3.2).

Tests assert cell-level agreement with the scalar reference pipeline
and cached-vs-uncached agreement on randomized netlists.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.congestion.cache import BoundedCache
from repro.congestion.exact_ir import exact_ir_probability
from repro.congestion.irgrid import IRGrid
from repro.netlist import (
    NetType,
    TwoPinArrays,
    TwoPinNet,
    classify_edges,
    nets_to_arrays,
)

__all__ = ["batched_approx_mass", "batched_approx_mass_arrays"]


def _exact_cached(
    cache: Optional[BoundedCache],
    g1: int,
    g2: int,
    x1: int,
    x2: int,
    y1: int,
    y2: int,
) -> float:
    """Formula 3 in the canonical frame, memoized in the caller's
    exact-probability store.

    Inputs are *type-I-frame* spans (the batch kernel mirrors type II
    nets before falling back here).  Formula 3 is symmetric under
    transposing the grid -- ``P(g1, g2, x, y) == P(g2, g1, y, x)`` --
    so arguments are put into a canonical orientation before keying
    *and* evaluating: mirror-equivalent and transpose-equivalent cells
    share one cache entry (the same small configurations recur
    constantly across an annealing run, and an ami33-scale run's hit
    rate roughly doubles), and because evaluation itself happens in the
    canonical frame, cached and uncached calls agree bit-for-bit.
    ``cache=None`` computes directly."""
    if g2 < g1 or (g2 == g1 and (y1 < x1 or (y1 == x1 and y2 < x2))):
        g1, g2 = g2, g1
        x1, x2, y1, y2 = y1, y2, x1, x2
    if cache is None:
        return exact_ir_probability(g1, g2, NetType.TYPE_I, x1, x2, y1, y2)
    key = (g1, g2, x1, x2, y1, y2)
    value = cache.get(key)
    if value is None:
        value = exact_ir_probability(g1, g2, NetType.TYPE_I, x1, x2, y1, y2)
        cache.put(key, value)
    return value


def _nearest_indices(lines: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`CutLines.nearest_line_index`."""
    pos = np.searchsorted(lines, coords)
    pos = np.clip(pos, 0, len(lines) - 1)
    before = np.clip(pos - 1, 0, len(lines) - 1)
    use_before = (pos > 0) & (
        (coords - lines[before]) <= (lines[pos] - coords)
    )
    return np.where(use_before, before, pos)


def _axis_offsets(
    lines: np.ndarray,
    cell_lo: np.ndarray,
    cell_hi: np.ndarray,
    origin: np.ndarray,
    unit: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-net unit-grid offsets of one axis' covered boundary lines.

    The offsets are the ``rint``-quantized positions the batch kernel
    itself consumes, so two nets sharing these values (plus type and
    ``(g1, g2)``) provably share their probability block.  Returns the
    flat ``int32`` offset vector (all nets back to back) and the
    per-net line counts -- built with a repeat/cumsum enumeration, no
    per-line Python.
    """
    n_lines = cell_hi - cell_lo + 2  # cells + 1 boundary lines
    offsets = np.concatenate([[0], np.cumsum(n_lines)[:-1]])
    total = int(n_lines.sum())
    e = np.arange(total) - np.repeat(offsets, n_lines)
    line_idx = np.repeat(cell_lo, n_lines) + e
    vals = (lines[line_idx] - np.repeat(origin, n_lines)) / np.repeat(
        unit, n_lines
    )
    return np.rint(vals).astype(np.int32), n_lines


def _signature_keys(
    panels: int,
    paper_bounds: bool,
    kernel_flag: int,
    type_two: np.ndarray,
    g1: np.ndarray,
    g2: np.ndarray,
    x_vals: np.ndarray,
    nx: np.ndarray,
    y_vals: np.ndarray,
    ny: np.ndarray,
) -> List[bytes]:
    """One ``bytes`` signature per net: a fixed header (panels,
    paper_bounds, kernel flag, net type, ``g1``, ``g2``, ``nx`` -- the
    last making the x/y split unambiguous) followed by both axes'
    quantized line offsets.  The kernel flag keeps vectors produced by
    a compiled backend from mixing with numpy-produced ones in a shared
    cache context (they agree to 1e-15, not bitwise).  A single flat
    ``int32`` buffer is assembled with a handful of scatters and sliced
    per net, so key construction does one hash-friendly allocation per
    net instead of an 8-tuple."""
    n = len(nx)
    header = 7
    lens = header + nx + ny
    offs = np.concatenate([[0], np.cumsum(lens)[:-1]])
    out = np.empty(int(lens.sum()), dtype=np.int32)
    out[offs] = panels
    out[offs + 1] = paper_bounds
    out[offs + 2] = kernel_flag
    out[offs + 3] = type_two
    out[offs + 4] = g1
    out[offs + 5] = g2
    out[offs + 6] = nx
    cum_x = np.concatenate([[0], np.cumsum(nx)[:-1]])
    e_x = np.arange(int(nx.sum())) - np.repeat(cum_x, nx)
    out[np.repeat(offs + header, nx) + e_x] = x_vals
    cum_y = np.concatenate([[0], np.cumsum(ny)[:-1]])
    e_y = np.arange(int(ny.sum())) - np.repeat(cum_y, ny)
    out[np.repeat(offs + header + nx, ny) + e_y] = y_vals
    buf = out.tobytes()
    starts = (4 * offs).tolist()
    ends = (4 * (offs + lens)).tolist()
    return [buf[starts[t] : ends[t]] for t in range(n)]


def batched_approx_mass(
    irgrid: IRGrid,
    nets: Sequence[TwoPinNet],
    grid_size: float,
    panels: int = 8,
    paper_bounds: bool = False,
    cache: Optional[BoundedCache] = None,
    exact_cache: Optional[BoundedCache] = None,
    backend=None,
) -> np.ndarray:
    """Congestion mass per IR-cell, shape ``(n_columns, n_rows)``.

    ``cache`` memoizes per-net probability blocks by local signature
    and ``exact_cache`` the scalar Formula-3 fallback cells; both come
    from the caller's :class:`~repro.perf.context.CacheContext`.
    ``None`` forces the pure batch path (identical results -- cached
    blocks are bit-for-bit the kernel's output for the same signature).
    ``backend`` is an optional :class:`repro.backend.KernelBackend`;
    when it carries a mass kernel, per-cell probabilities come from one
    compiled-kernel call instead of the numpy broadcast.
    """
    if not nets:
        return np.zeros((irgrid.n_columns, irgrid.n_rows))
    return batched_approx_mass_arrays(
        irgrid,
        nets_to_arrays(nets),
        grid_size,
        panels=panels,
        paper_bounds=paper_bounds,
        cache=cache,
        exact_cache=exact_cache,
        backend=backend,
    )


def batched_approx_mass_arrays(
    irgrid: IRGrid,
    arr: TwoPinArrays,
    grid_size: float,
    panels: int = 8,
    paper_bounds: bool = False,
    cache: Optional[BoundedCache] = None,
    exact_cache: Optional[BoundedCache] = None,
    backend=None,
) -> np.ndarray:
    """:func:`batched_approx_mass` over a :class:`TwoPinArrays` batch.

    The annealer's fast lane: endpoint arrays go straight into the
    broadcast kernel with no per-net attribute reads.  Identical output
    to the net-object entry point for the same edge geometry.
    """
    mass_kernel = None if backend is None else backend.mass_kernel
    n_cols_total = irgrid.n_columns
    n_rows_total = irgrid.n_rows
    mass = np.zeros((n_cols_total, n_rows_total))
    if not len(arr):
        return mass

    x_lines = np.asarray(irgrid.x_lines.lines)
    y_lines = np.asarray(irgrid.y_lines.lines)
    chip = irgrid.chip

    p1x, p1y, p2x, p2y, weights = arr
    type_two, degenerate_type = classify_edges(arr)
    # Routing ranges (the pins' bounding boxes) clipped into the chip,
    # all in one broadcast -- no per-net Rect construction.
    rx_lo = np.clip(np.minimum(p1x, p2x), chip.x_lo, chip.x_hi)
    rx_hi = np.clip(np.maximum(p1x, p2x), chip.x_lo, chip.x_hi)
    ry_lo = np.clip(np.minimum(p1y, p2y), chip.y_lo, chip.y_hi)
    ry_hi = np.clip(np.maximum(p1y, p2y), chip.y_lo, chip.y_hi)

    # Snap routing ranges onto the merged cut lines (Algorithm step 2's
    # "modify the corresponding routing ranges").  Both ends of an axis
    # go through one fused searchsorted.
    n = len(rx_lo)
    ix_lo, ix_hi = np.split(
        _nearest_indices(x_lines, np.concatenate([rx_lo, rx_hi])), [n]
    )
    iy_lo, iy_hi = np.split(
        _nearest_indices(y_lines, np.concatenate([ry_lo, ry_hi])), [n]
    )
    sx_lo = x_lines[ix_lo]
    sx_hi = x_lines[ix_hi]
    sy_lo = y_lines[iy_lo]
    sy_hi = y_lines[iy_hi]

    g1 = np.maximum(1, np.rint((sx_hi - sx_lo) / grid_size).astype(int))
    g2 = np.maximum(1, np.rint((sy_hi - sy_lo) / grid_size).astype(int))
    degenerate = (
        degenerate_type
        | (ix_hi <= ix_lo)
        | (iy_hi <= iy_lo)
        | (g1 == 1)
        | (g2 == 1)
    )

    # Covered cell index spans (inclusive); a collapsed axis still
    # covers the single line of cells it lies on.
    col_lo = np.minimum(ix_lo, n_cols_total - 1)
    col_hi = np.minimum(np.maximum(ix_hi - 1, col_lo), n_cols_total - 1)
    row_lo = np.minimum(iy_lo, n_rows_total - 1)
    row_hi = np.minimum(np.maximum(iy_hi - 1, row_lo), n_rows_total - 1)

    idx = np.nonzero(~degenerate)[0]

    def cell_enumeration(sub: np.ndarray):
        """Flat enumeration of every cell covered by the nets in ``sub``
        (column-fastest per net, nets in ``sub`` order).

        Returns ``(counts, offsets, rep_nc, ci, ri, col, row)``: per-net
        cell counts and flat offsets, plus per-cell within-net ordinals
        and absolute cell indices -- all by integer arithmetic on
        repeated per-net quantities, no per-cell Python.
        """
        n_c = col_hi[sub] - col_lo[sub] + 1
        n_r = row_hi[sub] - row_lo[sub] + 1
        counts = n_c * n_r
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        total_cells = int(counts.sum())
        e = np.arange(total_cells) - np.repeat(offsets, counts)  # within-net
        rep_nc = np.repeat(n_c, counts)
        # Within-net row/column ordinals in one pass.
        ri, ci = np.divmod(e, rep_nc)
        col = np.repeat(col_lo[sub], counts) + ci
        row = np.repeat(row_lo[sub], counts) + ri
        return counts, offsets, rep_nc, ci, ri, col, row

    def flat_probabilities(sub: np.ndarray):
        """Crossing probabilities of every cell covered by the nets in
        ``sub``, flattened column-fastest per net.

        Returns ``(prob, col, row, counts, offsets)``: flat probability
        / cell-index vectors plus per-net cell counts and flat offsets
        (for carving the flat vector back into per-net slices).
        """
        counts, offsets, rep_nc, ci, ri, col, row = cell_enumeration(sub)

        gg1 = np.repeat(g1[sub].astype(float), counts)
        gg2 = np.repeat(g2[sub].astype(float), counts)
        thin = np.repeat((g1[sub] < 3) | (g2[sub] < 3), counts)
        two = np.repeat(type_two[sub], counts)

        base_x = np.repeat(sx_lo[sub], counts)
        base_y = np.repeat(sy_lo[sub], counts)
        x_unit = np.repeat((sx_hi[sub] - sx_lo[sub]) / g1[sub], counts)
        y_unit = np.repeat((sy_hi[sub] - sy_lo[sub]) / g2[sub], counts)

        # Unit-grid spans of each cell in its net's routing range.
        x1 = np.rint((x_lines[col] - base_x) / x_unit)
        x2 = np.rint((x_lines[col + 1] - base_x) / x_unit) - 1.0
        x1 = np.clip(x1, 0.0, gg1 - 1.0)
        x2 = np.clip(np.maximum(x2, x1), 0.0, gg1 - 1.0)
        y1 = np.rint((y_lines[row] - base_y) / y_unit)
        y2 = np.rint((y_lines[row + 1] - base_y) / y_unit) - 1.0
        y1 = np.clip(y1, 0.0, gg2 - 1.0)
        y2 = np.clip(np.maximum(y2, y1), 0.0, gg2 - 1.0)
        # Vertical mirror: type II becomes type I with flipped rows.
        y1_m = np.where(two, gg2 - 1.0 - y2, y1)
        y2_m = np.where(two, gg2 - 1.0 - y1, y2)
        y1, y2 = y1_m, y2_m

        # Pin-covering cells: the snapped range's corners on the net's
        # pin diagonal (step 3.1).
        first_c = ci == 0
        last_c = ci == rep_nc - 1
        first_r = ri == 0
        last_r = row == np.repeat(row_hi[sub], counts)
        pin = np.where(
            two,
            (last_c & first_r) | (first_c & last_r),
            (first_c & first_r) | (last_c & last_r),
        )

        prob = np.zeros(len(col))
        invalid = thin.copy()

        # ---- Simpson integrals, band-filtered --------------------------
        # The integrand is (normal-like) exponentially small away from
        # the route-mass band along the net's pin diagonal; on sprawling
        # floorplans the overwhelming majority of covered cells sit far
        # outside it.  A two-endpoint z test finds them (z has constant
        # sign across a cell: x - mu(x) is linear in x with positive
        # slope (g2-2)/R), and the full 9-node broadcast runs only on
        # the surviving band cells.
        compute = ~pin & ~thin
        if compute.any():
            big_r = gg1 + gg2 - 3.0
            half = 0.0 if paper_bounds else 0.5
            k_nodes = np.arange(panels + 1)
            weights_s = np.ones(panels + 1)
            weights_s[1:-1:2] = 4.0
            weights_s[2:-1:2] = 2.0

            def integrate(active, lo, hi, offset, count_par, spread_par):
                """One boundary integral for every active cell.

                ``lo``/``hi`` are the integration bounds per cell,
                ``offset`` the fixed coordinate in Q = t + offset,
                ``count_par`` the binomial count (g-1 of the integration
                axis), ``spread_par`` the variance numerator (g-2 of the
                other axis).  Adds into ``prob`` and ``invalid``.
                """
                with np.errstate(invalid="ignore", divide="ignore"):
                    # Endpoint pre-pass (2 nodes).
                    ends = np.stack([lo, hi], axis=1)  # (cells, 2)
                    p_e = (ends + offset[:, None]) / big_r[:, None]
                    ok_e = (p_e > 0.0) & (p_e < 1.0)
                    var_e = (
                        (spread_par / (big_r - 1.0))[:, None]
                        * count_par[:, None]
                        * p_e
                        * (1.0 - p_e)
                    )
                    good_e = ok_e & (var_e > 0.0)
                    safe_e = np.where(good_e, var_e, 1.0)
                    z_e = (ends - count_par[:, None] * p_e) / np.sqrt(safe_e)
                    both_good = good_e.all(axis=1)
                    negligible = (
                        active
                        & both_good
                        & (
                            ((z_e > 8.0).all(axis=1))
                            | ((z_e < -8.0).all(axis=1))
                        )
                    )
                    full = active & ~negligible
                    live = np.nonzero(full)[0]
                    if len(live) == 0:
                        return
                    lo_c = lo[live]
                    hi_c = hi[live]
                    off_c = offset[live]
                    cnt_c = count_par[live]
                    spr_c = spread_par[live]
                    br_c = big_r[live]
                    h = (hi_c - lo_c) / panels
                    nodes = lo_c[:, None] + h[:, None] * k_nodes
                    p_n = (nodes + off_c[:, None]) / br_c[:, None]
                    ok = (p_n > 0.0) & (p_n < 1.0)
                    var = (
                        (spr_c / (br_c - 1.0))[:, None]
                        * cnt_c[:, None]
                        * p_n
                        * (1.0 - p_n)
                    )
                    good = ok & (var > 0.0)
                    safe = np.where(good, var, 1.0)
                    z = (nodes - cnt_c[:, None] * p_n) / np.sqrt(safe)
                    dens = np.where(
                        good,
                        np.exp(-0.5 * z * z) / np.sqrt(2 * np.pi * safe),
                        0.0,
                    )
                    # count_par is g-1 along the integration axis; the
                    # prefactor of the *other* axis is (g_other - 1):
                    other = (gg1[live] + gg2[live] - 2.0) - cnt_c
                    integral = (
                        (other / (gg1[live] + gg2[live] - 2.0))
                        * (dens * weights_s).sum(axis=1)
                        * h
                        / 3.0
                    )
                    # ``live`` comes from nonzero() -- unique indices,
                    # so fancy += is the (much faster) equivalent of
                    # np.add.at.
                    prob[live] += integral
                    bad = (~good).any(axis=1)
                    if bad.any():
                        invalid[live[bad]] = True

            # Top-boundary exits: integrate over x; Q = x + y2; the
            # binomial count along x is g1-1, variance numerator g2-2.
            top_active = compute & (y2 + 1.0 < gg2)
            integrate(
                top_active, x1 - half, x2 + half, y2, gg1 - 1.0, gg2 - 2.0
            )
            # Right-boundary exits: integrate over y; Q = y + x2.
            right_active = compute & (x2 + 1.0 < gg1)
            integrate(
                right_active, y1 - half, y2 + half, x2, gg2 - 1.0, gg1 - 2.0
            )

            # Cells flush with both far edges but not flagged as pins
            # cannot be trusted to an empty integral.
            invalid |= compute & (y2 + 1.0 >= gg2) & (x2 + 1.0 >= gg1)

        # Theorem 1's normal approximation is not trusted to stay
        # finite for every input (degenerate variance, overflow in the
        # density): a NaN/inf cell is rerouted to the exact Formula 3
        # fallback instead of being clipped into plausible garbage.
        non_finite = ~np.isfinite(prob)
        if non_finite.any():
            prob[non_finite] = 0.0
            invalid |= non_finite

        prob = np.clip(prob, 0.0, 1.0)
        prob[pin] = 1.0

        # ---- scalar exact fallback (thin ranges + domain failures) ----
        # The spans are already mirrored into the type-I frame, which
        # is exactly the frame ``_exact_cached`` canonicalizes from.
        fallback = np.nonzero(invalid & ~pin)[0]
        if len(fallback):
            for i in fallback.tolist():
                prob[i] = _exact_cached(
                    exact_cache,
                    int(gg1[i]), int(gg2[i]),
                    int(x1[i]), int(x2[i]), int(y1[i]), int(y2[i]),
                )
        return prob, col, row, counts, offsets

    def kernel_probabilities(sub: np.ndarray):
        """Compiled-backend twin of :func:`flat_probabilities`.

        ONE kernel call computes every covered cell of every net in
        ``sub`` (CSR layout: per-net flat offsets into one probability
        vector, cells column-fastest per net -- the same flat order the
        numpy path and :func:`cell_enumeration` use).  Only the cheap
        integer framing happens in Python.  Returns
        ``(prob, counts, offsets)``.
        """
        n_c = col_hi[sub] - col_lo[sub] + 1
        n_r = row_hi[sub] - row_lo[sub] + 1
        counts = n_c * n_r
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        prob = np.empty(int(counts.sum()))
        mass_kernel(
            g1[sub].astype(np.int64),
            g2[sub].astype(np.int64),
            type_two[sub],
            sx_lo[sub],
            sy_lo[sub],
            (sx_hi[sub] - sx_lo[sub]) / g1[sub],
            (sy_hi[sub] - sy_lo[sub]) / g2[sub],
            col_lo[sub].astype(np.int64),
            col_hi[sub].astype(np.int64),
            row_lo[sub].astype(np.int64),
            row_hi[sub].astype(np.int64),
            x_lines,
            y_lines,
            offsets.astype(np.int64),
            panels,
            0.0 if paper_bounds else 0.5,
            prob,
        )
        return prob, counts, offsets

    def scatter_add(prob, col, row, counts):
        """Accumulate weighted cell probabilities into ``mass``.

        ``bincount`` over flattened indices is several times faster
        than ``np.add.at`` for this scatter; both paths (cached and
        not) use it, so their summation order -- hence every last bit
        -- agrees.
        """
        w = np.repeat(weights[idx], counts)
        flat = col * n_rows_total + row
        mass.ravel()[:] += np.bincount(
            flat, weights=w * prob, minlength=mass.size
        )

    # ---- degenerate nets: rectangle adds of probability 1 ------------
    # One bincount over the flat cell enumeration (nets in ascending
    # order) accumulates each cell in the same order as the per-net
    # rectangle adds it replaces, and ``mass`` is still all zeros here,
    # so the result is bit-identical.
    deg = np.nonzero(degenerate)[0]
    if len(deg):
        counts_d, _, _, _, _, col_d, row_d = cell_enumeration(deg)
        flat_d = col_d * n_rows_total + row_d
        mass.ravel()[:] += np.bincount(
            flat_d,
            weights=np.repeat(weights[deg], counts_d),
            minlength=mass.size,
        )

    # ---- regular nets: flatten all covered cells ----------------------
    if len(idx) == 0:
        return mass

    if cache is None:
        if mass_kernel is not None:
            prob, counts, _ = kernel_probabilities(idx)
            _, _, _, _, _, col, row = cell_enumeration(idx)
        else:
            prob, col, row, counts, _ = flat_probabilities(idx)
        scatter_add(prob, col, row, counts)
        return mass

    # ---- memoized path: look up per-net flat vectors by signature ----
    # Cached values are the nets' flat probability vectors exactly as
    # ``flat_probabilities`` emits them (column-fastest); cell *indices*
    # are recomputed per evaluation (pure integer arithmetic), so the
    # final scatter-add is the very same ``bincount`` as the uncached
    # path over the very same flat ordering -- bit-identical results.
    x_unit_all = (sx_hi - sx_lo) / g1
    y_unit_all = (sy_hi - sy_lo) / g2
    x_vals, nx = _axis_offsets(
        x_lines, col_lo[idx], col_hi[idx], sx_lo[idx], x_unit_all[idx]
    )
    y_vals, ny = _axis_offsets(
        y_lines, row_lo[idx], row_hi[idx], sy_lo[idx], y_unit_all[idx]
    )
    keys = _signature_keys(
        panels, paper_bounds, int(mass_kernel is not None),
        type_two[idx], g1[idx], g2[idx],
        x_vals, nx, y_vals, ny,
    )
    vectors: List[Optional[np.ndarray]] = cache.get_many(keys)
    miss_pos = [t for t, v in enumerate(vectors) if v is None]
    if miss_pos:
        sub = idx[miss_pos]
        if mass_kernel is not None:
            prob_m, counts_m, offsets_m = kernel_probabilities(sub)
        else:
            prob_m, _, _, counts_m, offsets_m = flat_probabilities(sub)
        fresh = []
        for s, t in enumerate(miss_pos):
            vec = prob_m[offsets_m[s] : offsets_m[s] + int(counts_m[s])].copy()
            vec.setflags(write=False)
            fresh.append((keys[t], vec))
            vectors[t] = vec
        cache.put_many(fresh)
    prob = np.concatenate(vectors) if len(vectors) > 1 else vectors[0]
    counts, _, _, _, _, col, row = cell_enumeration(idx)
    scatter_add(prob, col, row, counts)
    return mass
