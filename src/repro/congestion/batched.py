"""Whole-floorplan batched evaluation of the approximate IR model.

The per-net kernels in :mod:`repro.congestion.vectorized` still pay
tens of numpy-dispatch overheads per net; inside an annealing loop that
dominates the actual arithmetic.  This module flattens *every covered
(net, IR-cell) pair of the whole floorplan* into parallel parameter
vectors and evaluates all Theorem-1 Simpson integrals in one broadcast
-- a constant number of numpy operations per floorplan evaluation.

On top of the batch kernel sits a per-net memo (see
:mod:`repro.congestion.cache`): a net's probability block depends only
on its *local signature* -- net type, unit-grid dimensions ``(g1, g2)``
and the unit-grid offsets of the cut lines crossing its snapped routing
range -- which is exactly the information Formula 3 / Theorem 1
consume.  Inside an annealing run most nets keep that signature between
consecutive states (one move perturbs a handful of modules), so most
blocks come out of the cache and the Simpson broadcast runs only over
the nets whose local geometry actually changed.

Every step of the framing (range clipping, cut-line snapping,
``(g1, g2)`` quantization, covered-cell spans) is elementwise per edge,
so the same pipeline evaluates an arbitrary *subset* of the edge rows
-- the congestion ledger's O(dirty) delta path
(:mod:`repro.congestion.ledger`) frames only a move's dirty edges and
gets values identical to the full batch restricted to those rows.
:func:`batched_edge_contributions` is that entry point; it returns each
edge's covered flat cell indices and weighted probabilities in CSR
layout.

The semantics are identical to the scalar Algorithm:

* degenerate nets / ranges spread weight 1 over their covered cells;
* pin-covering cells get probability 1 (step 3.1);
* thin ranges (g1 or g2 < 3) and cells whose Simpson nodes leave the
  approximation's domain fall back to the exact Formula 3 (Section 4.5);
* everything else gets the Theorem-1 integral (step 3.2).

Tests assert cell-level agreement with the scalar reference pipeline
and cached-vs-uncached agreement on randomized netlists.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.congestion.cache import BoundedCache
from repro.congestion.exact_ir import exact_ir_probability
from repro.congestion.irgrid import IRGrid
from repro.netlist import (
    NetType,
    TwoPinArrays,
    TwoPinNet,
    classify_edges,
    nets_to_arrays,
)

__all__ = [
    "batched_approx_mass",
    "batched_approx_mass_arrays",
    "batched_edge_contributions",
    "EdgeContributions",
]


class EdgeContributions(NamedTuple):
    """Per-edge congestion contributions in CSR layout.

    ``counts[e]`` cells belong to edge ``e`` (0 for edges covering
    nothing), stored at ``cells[offsets[e] : offsets[e] + counts[e]]``
    as flat ``col * n_rows + row`` indices with the matching
    weight-scaled probabilities in ``values``.  Scattering every value
    into a zeroed mass array reproduces the batched mass evaluation of
    the same edges (to float-summation order)."""

    counts: np.ndarray
    offsets: np.ndarray
    cells: np.ndarray
    values: np.ndarray


def _exact_cached(
    cache: Optional[BoundedCache],
    g1: int,
    g2: int,
    x1: int,
    x2: int,
    y1: int,
    y2: int,
) -> float:
    """Formula 3 in the canonical frame, memoized in the caller's
    exact-probability store.

    Inputs are *type-I-frame* spans (the batch kernel mirrors type II
    nets before falling back here).  Formula 3 is symmetric under
    transposing the grid -- ``P(g1, g2, x, y) == P(g2, g1, y, x)`` --
    so arguments are put into a canonical orientation before keying
    *and* evaluating: mirror-equivalent and transpose-equivalent cells
    share one cache entry (the same small configurations recur
    constantly across an annealing run, and an ami33-scale run's hit
    rate roughly doubles), and because evaluation itself happens in the
    canonical frame, cached and uncached calls agree bit-for-bit.
    ``cache=None`` computes directly."""
    if g2 < g1 or (g2 == g1 and (y1 < x1 or (y1 == x1 and y2 < x2))):
        g1, g2 = g2, g1
        x1, x2, y1, y2 = y1, y2, x1, x2
    if cache is None:
        return exact_ir_probability(g1, g2, NetType.TYPE_I, x1, x2, y1, y2)
    key = (g1, g2, x1, x2, y1, y2)
    value = cache.get(key)
    if value is None:
        value = exact_ir_probability(g1, g2, NetType.TYPE_I, x1, x2, y1, y2)
        cache.put(key, value)
    return value


def _nearest_indices(lines: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`CutLines.nearest_line_index`."""
    pos = np.searchsorted(lines, coords)
    pos = np.clip(pos, 0, len(lines) - 1)
    before = np.clip(pos - 1, 0, len(lines) - 1)
    use_before = (pos > 0) & (
        (coords - lines[before]) <= (lines[pos] - coords)
    )
    return np.where(use_before, before, pos)


class _Frame:
    """Snapped per-edge framing of an edge batch against one IR-grid.

    Holds the elementwise quantities every downstream stage consumes:
    snapped routing ranges, unit-grid dimensions, covered cell spans
    and the degenerate/type-II classification.  Built either for the
    whole edge array or for a row subset (``rows``); because every
    framing operation is elementwise per edge, the subset frame's
    values equal the full frame's restricted to those rows.
    """

    __slots__ = (
        "x_lines",
        "y_lines",
        "n_cols",
        "n_rows",
        "weights",
        "type_two",
        "degenerate",
        "g1",
        "g2",
        "sx_lo",
        "sx_hi",
        "sy_lo",
        "sy_hi",
        "col_lo",
        "col_hi",
        "row_lo",
        "row_hi",
    )


def _frame_edges(
    irgrid: IRGrid,
    arr: TwoPinArrays,
    grid_size: float,
    rows: Optional[np.ndarray] = None,
) -> _Frame:
    """Frame ``arr`` (or the subset ``rows`` of it) against ``irgrid``."""
    x_lines = np.asarray(irgrid.x_lines.lines)
    y_lines = np.asarray(irgrid.y_lines.lines)
    chip = irgrid.chip

    p1x, p1y, p2x, p2y, weights = arr
    if rows is not None:
        p1x = p1x[rows]
        p1y = p1y[rows]
        p2x = p2x[rows]
        p2y = p2y[rows]
        weights = weights[rows]
        arr = TwoPinArrays(p1x, p1y, p2x, p2y, weights)
    type_two, degenerate_type = classify_edges(arr)

    # Routing ranges (the pins' bounding boxes) clipped into the chip,
    # all in one broadcast -- no per-net Rect construction.
    rx_lo = np.clip(np.minimum(p1x, p2x), chip.x_lo, chip.x_hi)
    rx_hi = np.clip(np.maximum(p1x, p2x), chip.x_lo, chip.x_hi)
    ry_lo = np.clip(np.minimum(p1y, p2y), chip.y_lo, chip.y_hi)
    ry_hi = np.clip(np.maximum(p1y, p2y), chip.y_lo, chip.y_hi)

    # Snap routing ranges onto the merged cut lines (Algorithm step 2's
    # "modify the corresponding routing ranges").  Both ends of an axis
    # go through one fused searchsorted.
    n = len(rx_lo)
    ix_lo, ix_hi = np.split(
        _nearest_indices(x_lines, np.concatenate([rx_lo, rx_hi])), [n]
    )
    iy_lo, iy_hi = np.split(
        _nearest_indices(y_lines, np.concatenate([ry_lo, ry_hi])), [n]
    )

    f = _Frame()
    f.x_lines = x_lines
    f.y_lines = y_lines
    f.n_cols = irgrid.n_columns
    f.n_rows = irgrid.n_rows
    f.weights = weights
    f.type_two = type_two
    f.sx_lo = x_lines[ix_lo]
    f.sx_hi = x_lines[ix_hi]
    f.sy_lo = y_lines[iy_lo]
    f.sy_hi = y_lines[iy_hi]

    f.g1 = np.maximum(1, np.rint((f.sx_hi - f.sx_lo) / grid_size).astype(int))
    f.g2 = np.maximum(1, np.rint((f.sy_hi - f.sy_lo) / grid_size).astype(int))
    f.degenerate = (
        degenerate_type
        | (ix_hi <= ix_lo)
        | (iy_hi <= iy_lo)
        | (f.g1 == 1)
        | (f.g2 == 1)
    )

    # Covered cell index spans (inclusive); a collapsed axis still
    # covers the single line of cells it lies on.
    f.col_lo = np.minimum(ix_lo, f.n_cols - 1)
    f.col_hi = np.minimum(np.maximum(ix_hi - 1, f.col_lo), f.n_cols - 1)
    f.row_lo = np.minimum(iy_lo, f.n_rows - 1)
    f.row_hi = np.minimum(np.maximum(iy_hi - 1, f.row_lo), f.n_rows - 1)
    return f


def _cell_enumeration(frame: _Frame, sub: np.ndarray):
    """Flat enumeration of every cell covered by the edges in ``sub``
    (column-fastest per net, nets in ``sub`` order).

    Returns ``(counts, offsets, rep_nc, ci, ri, col, row)``: per-net
    cell counts and flat offsets, plus per-cell within-net ordinals
    and absolute cell indices -- all by integer arithmetic on
    repeated per-net quantities, no per-cell Python.
    """
    n_c = frame.col_hi[sub] - frame.col_lo[sub] + 1
    n_r = frame.row_hi[sub] - frame.row_lo[sub] + 1
    counts = n_c * n_r
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    total_cells = int(counts.sum())
    e = np.arange(total_cells) - np.repeat(offsets, counts)  # within-net
    rep_nc = np.repeat(n_c, counts)
    # Within-net row/column ordinals in one pass.
    ri, ci = np.divmod(e, rep_nc)
    col = np.repeat(frame.col_lo[sub], counts) + ci
    row = np.repeat(frame.row_lo[sub], counts) + ri
    return counts, offsets, rep_nc, ci, ri, col, row


def _exact_fallback(
    exact_cache: Optional[BoundedCache],
    prob: np.ndarray,
    fb: np.ndarray,
    gg1: np.ndarray,
    gg2: np.ndarray,
    x1: np.ndarray,
    x2: np.ndarray,
    y1: np.ndarray,
    y2: np.ndarray,
) -> None:
    """Batched exact Formula-3 fallback for the cells in ``fb``.

    Canonicalizes every cell's frame in one vectorized pass (the same
    transpose symmetry :func:`_exact_cached` applies scalar-wise), then
    resolves all keys through one ``get_many`` and computes only the
    misses -- deduplicated within the batch, so a configuration that
    appears on several cells of one evaluation is evaluated once.
    Values are identical to the scalar per-cell path: evaluation always
    happens in the canonical frame.
    """
    fg1 = gg1[fb].astype(np.int64)
    fg2 = gg2[fb].astype(np.int64)
    fx1 = x1[fb].astype(np.int64)
    fx2 = x2[fb].astype(np.int64)
    fy1 = y1[fb].astype(np.int64)
    fy2 = y2[fb].astype(np.int64)
    swap = (fg2 < fg1) | (
        (fg2 == fg1) & ((fy1 < fx1) | ((fy1 == fx1) & (fy2 < fx2)))
    )
    cg1 = np.where(swap, fg2, fg1)
    cg2 = np.where(swap, fg1, fg2)
    cx1 = np.where(swap, fy1, fx1)
    cx2 = np.where(swap, fy2, fx2)
    cy1 = np.where(swap, fx1, fy1)
    cy2 = np.where(swap, fx2, fy2)
    keys = list(
        zip(
            cg1.tolist(), cg2.tolist(),
            cx1.tolist(), cx2.tolist(),
            cy1.tolist(), cy2.tolist(),
        )
    )
    if exact_cache is None:
        values: List[Optional[float]] = [None] * len(keys)
    else:
        values = exact_cache.get_many(keys)
    fresh = []
    local = {}
    for t, v in enumerate(values):
        if v is None:
            k = keys[t]
            v = local.get(k)
            if v is None:
                v = exact_ir_probability(
                    k[0], k[1], NetType.TYPE_I, k[2], k[3], k[4], k[5]
                )
                local[k] = v
                fresh.append((k, v))
            values[t] = v
    if exact_cache is not None and fresh:
        exact_cache.put_many(fresh)
    prob[fb] = values


def _flat_probabilities(
    frame: _Frame,
    sub: np.ndarray,
    panels: int,
    paper_bounds: bool,
    exact_cache: Optional[BoundedCache],
):
    """Crossing probabilities of every cell covered by the edges in
    ``sub``, flattened column-fastest per net.

    Returns ``(prob, col, row, counts, offsets)``: flat probability
    / cell-index vectors plus per-net cell counts and flat offsets
    (for carving the flat vector back into per-net slices).
    """
    counts, offsets, rep_nc, ci, ri, col, row = _cell_enumeration(frame, sub)
    x_lines = frame.x_lines
    y_lines = frame.y_lines
    g1 = frame.g1
    g2 = frame.g2

    gg1 = np.repeat(g1[sub].astype(float), counts)
    gg2 = np.repeat(g2[sub].astype(float), counts)
    thin = np.repeat((g1[sub] < 3) | (g2[sub] < 3), counts)
    two = np.repeat(frame.type_two[sub], counts)

    base_x = np.repeat(frame.sx_lo[sub], counts)
    base_y = np.repeat(frame.sy_lo[sub], counts)
    x_unit = np.repeat((frame.sx_hi[sub] - frame.sx_lo[sub]) / g1[sub], counts)
    y_unit = np.repeat((frame.sy_hi[sub] - frame.sy_lo[sub]) / g2[sub], counts)

    # Unit-grid spans of each cell in its net's routing range.
    x1 = np.rint((x_lines[col] - base_x) / x_unit)
    x2 = np.rint((x_lines[col + 1] - base_x) / x_unit) - 1.0
    x1 = np.clip(x1, 0.0, gg1 - 1.0)
    x2 = np.clip(np.maximum(x2, x1), 0.0, gg1 - 1.0)
    y1 = np.rint((y_lines[row] - base_y) / y_unit)
    y2 = np.rint((y_lines[row + 1] - base_y) / y_unit) - 1.0
    y1 = np.clip(y1, 0.0, gg2 - 1.0)
    y2 = np.clip(np.maximum(y2, y1), 0.0, gg2 - 1.0)
    # Vertical mirror: type II becomes type I with flipped rows.
    y1_m = np.where(two, gg2 - 1.0 - y2, y1)
    y2_m = np.where(two, gg2 - 1.0 - y1, y2)
    y1, y2 = y1_m, y2_m

    # Pin-covering cells: the snapped range's corners on the net's
    # pin diagonal (step 3.1).
    first_c = ci == 0
    last_c = ci == rep_nc - 1
    first_r = ri == 0
    last_r = row == np.repeat(frame.row_hi[sub], counts)
    pin = np.where(
        two,
        (last_c & first_r) | (first_c & last_r),
        (first_c & first_r) | (last_c & last_r),
    )

    prob = np.zeros(len(col))
    invalid = thin.copy()

    # ---- Simpson integrals, band-filtered --------------------------
    # The integrand is (normal-like) exponentially small away from
    # the route-mass band along the net's pin diagonal; on sprawling
    # floorplans the overwhelming majority of covered cells sit far
    # outside it.  A two-endpoint z test finds them (z has constant
    # sign across a cell: x - mu(x) is linear in x with positive
    # slope (g2-2)/R), and the full 9-node broadcast runs only on
    # the surviving band cells.  Both boundary integrals (top exits
    # over x, right exits over y) are concatenated into ONE broadcast:
    # half the numpy dispatches of evaluating them separately, with
    # top cells ordered before right cells so a cell active in both
    # accumulates its two integrals in the same order as two separate
    # passes would -- bit-identical results.
    compute = ~pin & ~thin
    if compute.any():
        big_r = gg1 + gg2 - 3.0
        half = 0.0 if paper_bounds else 0.5
        k_nodes = np.arange(panels + 1)
        weights_s = np.ones(panels + 1)
        weights_s[1:-1:2] = 4.0
        weights_s[2:-1:2] = 2.0

        # Top-boundary exits: integrate over x; Q = x + y2; the
        # binomial count along x is g1-1, variance numerator g2-2.
        # Right-boundary exits: integrate over y; Q = y + x2.
        ta = np.nonzero(compute & (y2 + 1.0 < gg2))[0]
        ra = np.nonzero(compute & (x2 + 1.0 < gg1))[0]
        cells_idx = np.concatenate([ta, ra])
        if len(cells_idx):
            lo = np.concatenate([x1[ta] - half, y1[ra] - half])
            hi = np.concatenate([x2[ta] + half, y2[ra] + half])
            offset = np.concatenate([y2[ta], x2[ra]])
            count_par = np.concatenate([gg1[ta] - 1.0, gg2[ra] - 1.0])
            spread_par = np.concatenate([gg2[ta] - 2.0, gg1[ra] - 2.0])
            br = big_r[cells_idx]
            denom = (gg1 + gg2 - 2.0)[cells_idx]
            with np.errstate(invalid="ignore", divide="ignore"):
                # Endpoint pre-pass (2 nodes).
                ends = np.stack([lo, hi], axis=1)  # (cells, 2)
                p_e = (ends + offset[:, None]) / br[:, None]
                ok_e = (p_e > 0.0) & (p_e < 1.0)
                var_e = (
                    (spread_par / (br - 1.0))[:, None]
                    * count_par[:, None]
                    * p_e
                    * (1.0 - p_e)
                )
                good_e = ok_e & (var_e > 0.0)
                safe_e = np.where(good_e, var_e, 1.0)
                z_e = (ends - count_par[:, None] * p_e) / np.sqrt(safe_e)
                both_good = good_e.all(axis=1)
                negligible = both_good & (
                    ((z_e > 8.0).all(axis=1)) | ((z_e < -8.0).all(axis=1))
                )
                live = np.nonzero(~negligible)[0]
                if len(live):
                    lo_c = lo[live]
                    hi_c = hi[live]
                    off_c = offset[live]
                    cnt_c = count_par[live]
                    spr_c = spread_par[live]
                    br_c = br[live]
                    h = (hi_c - lo_c) / panels
                    nodes = lo_c[:, None] + h[:, None] * k_nodes
                    p_n = (nodes + off_c[:, None]) / br_c[:, None]
                    ok = (p_n > 0.0) & (p_n < 1.0)
                    var = (
                        (spr_c / (br_c - 1.0))[:, None]
                        * cnt_c[:, None]
                        * p_n
                        * (1.0 - p_n)
                    )
                    good = ok & (var > 0.0)
                    safe = np.where(good, var, 1.0)
                    z = (nodes - cnt_c[:, None] * p_n) / np.sqrt(safe)
                    dens = np.where(
                        good,
                        np.exp(-0.5 * z * z) / np.sqrt(2 * np.pi * safe),
                        0.0,
                    )
                    # count_par is g-1 along the integration axis; the
                    # prefactor of the *other* axis is (g_other - 1):
                    other = denom[live] - cnt_c
                    integral = (
                        (other / denom[live])
                        * (dens * weights_s).sum(axis=1)
                        * h
                        / 3.0
                    )
                    # Split the joint live set back at the top/right
                    # seam: within each part the cell indices are
                    # unique, so fancy += is the (much faster)
                    # equivalent of np.add.at, and adding the top part
                    # first preserves the separate-pass summation
                    # order for cells active in both.
                    seam = int(np.searchsorted(live, len(ta)))
                    prob[cells_idx[live[:seam]]] += integral[:seam]
                    prob[cells_idx[live[seam:]]] += integral[seam:]
                    bad = (~good).any(axis=1)
                    if bad.any():
                        invalid[cells_idx[live[bad]]] = True

        # Cells flush with both far edges but not flagged as pins
        # cannot be trusted to an empty integral.
        invalid |= compute & (y2 + 1.0 >= gg2) & (x2 + 1.0 >= gg1)

    # Theorem 1's normal approximation is not trusted to stay
    # finite for every input (degenerate variance, overflow in the
    # density): a NaN/inf cell is rerouted to the exact Formula 3
    # fallback instead of being clipped into plausible garbage.
    non_finite = ~np.isfinite(prob)
    if non_finite.any():
        prob[non_finite] = 0.0
        invalid |= non_finite

    prob = np.clip(prob, 0.0, 1.0)
    prob[pin] = 1.0

    # ---- exact fallback (thin ranges + domain failures) ------------
    # The spans are already mirrored into the type-I frame, which is
    # exactly the frame the fallback canonicalizes from.
    fallback = np.nonzero(invalid & ~pin)[0]
    if len(fallback):
        _exact_fallback(exact_cache, prob, fallback, gg1, gg2, x1, x2, y1, y2)
    return prob, col, row, counts, offsets


def _kernel_probabilities(
    frame: _Frame, sub: np.ndarray, panels: int, paper_bounds: bool, mass_kernel
):
    """Compiled-backend twin of :func:`_flat_probabilities`.

    ONE kernel call computes every covered cell of every net in
    ``sub`` (CSR layout: per-net flat offsets into one probability
    vector, cells column-fastest per net -- the same flat order the
    numpy path and :func:`_cell_enumeration` use).  Only the cheap
    integer framing happens in Python.  Returns
    ``(prob, counts, offsets)``.
    """
    n_c = frame.col_hi[sub] - frame.col_lo[sub] + 1
    n_r = frame.row_hi[sub] - frame.row_lo[sub] + 1
    counts = n_c * n_r
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    prob = np.empty(int(counts.sum()))
    mass_kernel(
        frame.g1[sub].astype(np.int64),
        frame.g2[sub].astype(np.int64),
        frame.type_two[sub],
        frame.sx_lo[sub],
        frame.sy_lo[sub],
        (frame.sx_hi[sub] - frame.sx_lo[sub]) / frame.g1[sub],
        (frame.sy_hi[sub] - frame.sy_lo[sub]) / frame.g2[sub],
        frame.col_lo[sub].astype(np.int64),
        frame.col_hi[sub].astype(np.int64),
        frame.row_lo[sub].astype(np.int64),
        frame.row_hi[sub].astype(np.int64),
        frame.x_lines,
        frame.y_lines,
        offsets.astype(np.int64),
        panels,
        0.0 if paper_bounds else 0.5,
        prob,
    )
    return prob, counts, offsets


def _axis_offsets(
    lines: np.ndarray,
    cell_lo: np.ndarray,
    cell_hi: np.ndarray,
    origin: np.ndarray,
    unit: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-net unit-grid offsets of one axis' covered boundary lines.

    The offsets are the ``rint``-quantized positions the batch kernel
    itself consumes, so two nets sharing these values (plus type and
    ``(g1, g2)``) provably share their probability block.  Returns the
    flat ``int32`` offset vector (all nets back to back) and the
    per-net line counts -- built with a repeat/cumsum enumeration, no
    per-line Python.
    """
    n_lines = cell_hi - cell_lo + 2  # cells + 1 boundary lines
    offsets = np.concatenate([[0], np.cumsum(n_lines)[:-1]])
    total = int(n_lines.sum())
    e = np.arange(total) - np.repeat(offsets, n_lines)
    line_idx = np.repeat(cell_lo, n_lines) + e
    vals = (lines[line_idx] - np.repeat(origin, n_lines)) / np.repeat(
        unit, n_lines
    )
    return np.rint(vals).astype(np.int32), n_lines


def _signature_keys(
    panels: int,
    paper_bounds: bool,
    kernel_flag: int,
    type_two: np.ndarray,
    g1: np.ndarray,
    g2: np.ndarray,
    x_vals: np.ndarray,
    nx: np.ndarray,
    y_vals: np.ndarray,
    ny: np.ndarray,
) -> List[bytes]:
    """One ``bytes`` signature per net: a fixed header (panels,
    paper_bounds, kernel flag, net type, ``g1``, ``g2``, ``nx`` -- the
    last making the x/y split unambiguous) followed by both axes'
    quantized line offsets.  The kernel flag keeps vectors produced by
    a compiled backend from mixing with numpy-produced ones in a shared
    cache context (they agree to 1e-15, not bitwise).  A single flat
    ``int32`` buffer is assembled with a handful of scatters and sliced
    per net, so key construction does one hash-friendly allocation per
    net instead of an 8-tuple."""
    n = len(nx)
    header = 7
    lens = header + nx + ny
    offs = np.concatenate([[0], np.cumsum(lens)[:-1]])
    out = np.empty(int(lens.sum()), dtype=np.int32)
    out[offs] = panels
    out[offs + 1] = paper_bounds
    out[offs + 2] = kernel_flag
    out[offs + 3] = type_two
    out[offs + 4] = g1
    out[offs + 5] = g2
    out[offs + 6] = nx
    cum_x = np.concatenate([[0], np.cumsum(nx)[:-1]])
    e_x = np.arange(int(nx.sum())) - np.repeat(cum_x, nx)
    out[np.repeat(offs + header, nx) + e_x] = x_vals
    cum_y = np.concatenate([[0], np.cumsum(ny)[:-1]])
    e_y = np.arange(int(ny.sum())) - np.repeat(cum_y, ny)
    out[np.repeat(offs + header + nx, ny) + e_y] = y_vals
    buf = out.tobytes()
    starts = (4 * offs).tolist()
    ends = (4 * (offs + lens)).tolist()
    return [buf[starts[t] : ends[t]] for t in range(n)]


def _memo_probabilities(
    frame: _Frame,
    idx: np.ndarray,
    panels: int,
    paper_bounds: bool,
    cache: BoundedCache,
    exact_cache: Optional[BoundedCache],
    mass_kernel,
):
    """Memoized probabilities of the regular edges in ``idx``.

    Cached values are the nets' flat probability vectors exactly as
    :func:`_flat_probabilities` emits them (column-fastest); the
    signature build and the cache lookups are batched (`get_many` /
    `put_many` take the cache lock once), and only the missing nets
    re-enter the Simpson broadcast / compiled kernel.  Returns
    ``(prob, counts, offsets)`` in ``idx`` order.
    """
    g1 = frame.g1
    g2 = frame.g2
    x_unit_all = (frame.sx_hi - frame.sx_lo) / g1
    y_unit_all = (frame.sy_hi - frame.sy_lo) / g2
    x_vals, nx = _axis_offsets(
        frame.x_lines,
        frame.col_lo[idx],
        frame.col_hi[idx],
        frame.sx_lo[idx],
        x_unit_all[idx],
    )
    y_vals, ny = _axis_offsets(
        frame.y_lines,
        frame.row_lo[idx],
        frame.row_hi[idx],
        frame.sy_lo[idx],
        y_unit_all[idx],
    )
    keys = _signature_keys(
        panels, paper_bounds, int(mass_kernel is not None),
        frame.type_two[idx], g1[idx], g2[idx],
        x_vals, nx, y_vals, ny,
    )
    vectors: List[Optional[np.ndarray]] = cache.get_many(keys)
    miss_pos = [t for t, v in enumerate(vectors) if v is None]
    if miss_pos:
        sub = idx[miss_pos]
        if mass_kernel is not None:
            prob_m, counts_m, offsets_m = _kernel_probabilities(
                frame, sub, panels, paper_bounds, mass_kernel
            )
        else:
            prob_m, _, _, counts_m, offsets_m = _flat_probabilities(
                frame, sub, panels, paper_bounds, exact_cache
            )
        fresh = []
        for s, t in enumerate(miss_pos):
            vec = prob_m[offsets_m[s] : offsets_m[s] + int(counts_m[s])].copy()
            vec.setflags(write=False)
            fresh.append((keys[t], vec))
            vectors[t] = vec
        cache.put_many(fresh)
    prob = np.concatenate(vectors) if len(vectors) > 1 else vectors[0]
    n_c = frame.col_hi[idx] - frame.col_lo[idx] + 1
    n_r = frame.row_hi[idx] - frame.row_lo[idx] + 1
    counts = n_c * n_r
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return prob, counts, offsets


def _edge_blocks(
    frame: _Frame,
    panels: int,
    paper_bounds: bool,
    cache: Optional[BoundedCache],
    exact_cache: Optional[BoundedCache],
    mass_kernel,
):
    """Weighted per-cell contributions of every edge in ``frame``.

    Returns ``(deg, deg_data, idx, reg_data)``: the degenerate and
    regular edge index sets with their ``(counts, flat_cells, values)``
    triples (``None`` when the set is empty).  ``values`` are already
    weight-scaled; flat cell indices are ``col * n_rows + row``.
    """
    n_rows_total = frame.n_rows
    deg = np.nonzero(frame.degenerate)[0]
    deg_data = None
    if len(deg):
        counts_d, _, _, _, _, col_d, row_d = _cell_enumeration(frame, deg)
        deg_data = (
            counts_d,
            col_d * n_rows_total + row_d,
            np.repeat(frame.weights[deg], counts_d),
        )
    idx = np.nonzero(~frame.degenerate)[0]
    reg_data = None
    if len(idx):
        if cache is not None:
            prob, counts, _ = _memo_probabilities(
                frame, idx, panels, paper_bounds, cache, exact_cache,
                mass_kernel,
            )
            _, _, _, _, _, col, row = _cell_enumeration(frame, idx)
        elif mass_kernel is not None:
            prob, counts, _ = _kernel_probabilities(
                frame, idx, panels, paper_bounds, mass_kernel
            )
            _, _, _, _, _, col, row = _cell_enumeration(frame, idx)
        else:
            prob, col, row, counts, _ = _flat_probabilities(
                frame, idx, panels, paper_bounds, exact_cache
            )
        reg_data = (
            counts,
            col * n_rows_total + row,
            np.repeat(frame.weights[idx], counts) * prob,
        )
    return deg, deg_data, idx, reg_data


def _assemble_contributions(
    n_edges: int, deg, deg_data, idx, reg_data
) -> EdgeContributions:
    """Merge the degenerate/regular blocks into edge-order CSR arrays."""
    counts_all = np.zeros(n_edges, dtype=np.int64)
    if deg_data is not None:
        counts_all[deg] = deg_data[0]
    if reg_data is not None:
        counts_all[idx] = reg_data[0]
    offsets_all = np.concatenate(
        [[0], np.cumsum(counts_all)[:-1]]
    ).astype(np.int64)
    total = int(counts_all.sum())
    cells_all = np.empty(total, dtype=np.int64)
    values_all = np.empty(total)
    for sub, data in ((deg, deg_data), (idx, reg_data)):
        if data is None:
            continue
        counts, flat, vals = data
        inner = np.concatenate([[0], np.cumsum(counts)[:-1]])
        within = np.arange(len(flat)) - np.repeat(inner, counts)
        dest = np.repeat(offsets_all[sub], counts) + within
        cells_all[dest] = flat
        values_all[dest] = vals
    return EdgeContributions(counts_all, offsets_all, cells_all, values_all)


def batched_approx_mass(
    irgrid: IRGrid,
    nets: Sequence[TwoPinNet],
    grid_size: float,
    panels: int = 8,
    paper_bounds: bool = False,
    cache: Optional[BoundedCache] = None,
    exact_cache: Optional[BoundedCache] = None,
    backend=None,
) -> np.ndarray:
    """Congestion mass per IR-cell, shape ``(n_columns, n_rows)``.

    ``cache`` memoizes per-net probability blocks by local signature
    and ``exact_cache`` the scalar Formula-3 fallback cells; both come
    from the caller's :class:`~repro.perf.context.CacheContext`.
    ``None`` forces the pure batch path (identical results -- cached
    blocks are bit-for-bit the kernel's output for the same signature).
    ``backend`` is an optional :class:`repro.backend.KernelBackend`;
    when it carries a mass kernel, per-cell probabilities come from one
    compiled-kernel call instead of the numpy broadcast.
    """
    if not nets:
        return np.zeros((irgrid.n_columns, irgrid.n_rows))
    return batched_approx_mass_arrays(
        irgrid,
        nets_to_arrays(nets),
        grid_size,
        panels=panels,
        paper_bounds=paper_bounds,
        cache=cache,
        exact_cache=exact_cache,
        backend=backend,
    )


def batched_approx_mass_arrays(
    irgrid: IRGrid,
    arr: TwoPinArrays,
    grid_size: float,
    panels: int = 8,
    paper_bounds: bool = False,
    cache: Optional[BoundedCache] = None,
    exact_cache: Optional[BoundedCache] = None,
    backend=None,
    want_contributions: bool = False,
):
    """:func:`batched_approx_mass` over a :class:`TwoPinArrays` batch.

    The annealer's fast lane: endpoint arrays go straight into the
    broadcast kernel with no per-net attribute reads.  Identical output
    to the net-object entry point for the same edge geometry.

    ``want_contributions=True`` additionally returns the per-edge
    :class:`EdgeContributions` CSR the congestion ledger records --
    assembled from the very flat vectors the mass scatter consumed, so
    the extra cost is a few gathers, not a recomputation.  The return
    value is then ``(mass, contributions)``.
    """
    mass_kernel = None if backend is None else backend.mass_kernel
    mass = np.zeros((irgrid.n_columns, irgrid.n_rows))
    if not len(arr):
        if want_contributions:
            return mass, _assemble_contributions(0, None, None, None, None)
        return mass

    frame = _frame_edges(irgrid, arr, grid_size)
    deg, deg_data, idx, reg_data = _edge_blocks(
        frame, panels, paper_bounds, cache, exact_cache, mass_kernel
    )

    # ``bincount`` over flattened indices is several times faster than
    # ``np.add.at`` for this scatter; both paths (cached and not) use
    # it, so their summation order -- hence every last bit -- agrees.
    # Degenerate nets accumulate first into the zeroed array, then the
    # regular nets: the same order the per-net adds it replaced used.
    if deg_data is not None:
        mass.ravel()[:] += np.bincount(
            deg_data[1], weights=deg_data[2], minlength=mass.size
        )
    if reg_data is not None:
        mass.ravel()[:] += np.bincount(
            reg_data[1], weights=reg_data[2], minlength=mass.size
        )
    if want_contributions:
        return mass, _assemble_contributions(
            len(arr), deg, deg_data, idx, reg_data
        )
    return mass


def batched_edge_contributions(
    irgrid: IRGrid,
    arr: TwoPinArrays,
    rows: np.ndarray,
    grid_size: float,
    panels: int = 8,
    paper_bounds: bool = False,
    cache: Optional[BoundedCache] = None,
    exact_cache: Optional[BoundedCache] = None,
    backend=None,
) -> EdgeContributions:
    """Per-edge contributions of the subset ``rows`` of ``arr``.

    The congestion ledger's O(dirty) lane: frames only the requested
    edge rows against ``irgrid`` and returns their CSR contribution
    blocks (in ``rows`` order).  Because every framing operation is
    elementwise per edge, the values equal what a full-batch
    evaluation would assign those same edges -- the property the
    ledger's subtract-old/add-new delta depends on, asserted to 1e-12
    by strict mode and the property suite.
    """
    mass_kernel = None if backend is None else backend.mass_kernel
    rows = np.asarray(rows, dtype=np.intp)
    if not len(rows):
        return _assemble_contributions(0, None, None, None, None)
    frame = _frame_edges(irgrid, arr, grid_size, rows=rows)
    deg, deg_data, idx, reg_data = _edge_blocks(
        frame, panels, paper_bounds, cache, exact_cache, mass_kernel
    )
    return _assemble_contributions(len(rows), deg, deg_data, idx, reg_data)
