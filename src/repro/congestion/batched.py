"""Whole-floorplan batched evaluation of the approximate IR model.

The per-net kernels in :mod:`repro.congestion.vectorized` still pay
tens of numpy-dispatch overheads per net; inside an annealing loop that
dominates the actual arithmetic.  This module flattens *every covered
(net, IR-cell) pair of the whole floorplan* into parallel parameter
vectors and evaluates all Theorem-1 Simpson integrals in one broadcast
-- a constant number of numpy operations per floorplan evaluation.

The semantics are identical to the scalar Algorithm:

* degenerate nets / ranges spread weight 1 over their covered cells;
* pin-covering cells get probability 1 (step 3.1);
* thin ranges (g1 or g2 < 3) and cells whose Simpson nodes leave the
  approximation's domain fall back to the exact Formula 3 (Section 4.5);
* everything else gets the Theorem-1 integral (step 3.2).

Tests assert cell-level agreement with the scalar reference pipeline.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.congestion.exact_ir import exact_ir_probability
from repro.congestion.irgrid import IRGrid
from repro.netlist import NetType, TwoPinNet

__all__ = ["batched_approx_mass"]

from functools import lru_cache


@lru_cache(maxsize=262_144)
def _exact_cached(
    g1: int, g2: int, net_type: NetType, x1: int, x2: int, y1: int, y2: int
) -> float:
    return exact_ir_probability(g1, g2, net_type, x1, x2, y1, y2)


def _nearest_indices(lines: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`CutLines.nearest_line_index`."""
    pos = np.searchsorted(lines, coords)
    pos = np.clip(pos, 0, len(lines) - 1)
    before = np.clip(pos - 1, 0, len(lines) - 1)
    use_before = (pos > 0) & (
        (coords - lines[before]) <= (lines[pos] - coords)
    )
    return np.where(use_before, before, pos)


def batched_approx_mass(
    irgrid: IRGrid,
    nets: Sequence[TwoPinNet],
    grid_size: float,
    panels: int = 8,
    paper_bounds: bool = False,
) -> np.ndarray:
    """Congestion mass per IR-cell, shape ``(n_columns, n_rows)``."""
    n_cols_total = irgrid.n_columns
    n_rows_total = irgrid.n_rows
    mass = np.zeros((n_cols_total, n_rows_total))
    if not nets:
        return mass

    x_lines = np.asarray(irgrid.x_lines.lines)
    y_lines = np.asarray(irgrid.y_lines.lines)
    chip = irgrid.chip

    n = len(nets)
    rx_lo = np.empty(n)
    rx_hi = np.empty(n)
    ry_lo = np.empty(n)
    ry_hi = np.empty(n)
    weights = np.empty(n)
    type_two = np.zeros(n, dtype=bool)
    degenerate_type = np.zeros(n, dtype=bool)
    for k, net in enumerate(nets):
        rng = net.routing_range
        rx_lo[k] = min(max(rng.x_lo, chip.x_lo), chip.x_hi)
        rx_hi[k] = min(max(rng.x_hi, chip.x_lo), chip.x_hi)
        ry_lo[k] = min(max(rng.y_lo, chip.y_lo), chip.y_hi)
        ry_hi[k] = min(max(rng.y_hi, chip.y_lo), chip.y_hi)
        weights[k] = net.weight
        nt = net.net_type
        type_two[k] = nt is NetType.TYPE_II
        degenerate_type[k] = nt is NetType.DEGENERATE

    # Snap routing ranges onto the merged cut lines (Algorithm step 2's
    # "modify the corresponding routing ranges").
    ix_lo = _nearest_indices(x_lines, rx_lo)
    ix_hi = _nearest_indices(x_lines, rx_hi)
    iy_lo = _nearest_indices(y_lines, ry_lo)
    iy_hi = _nearest_indices(y_lines, ry_hi)
    sx_lo = x_lines[ix_lo]
    sx_hi = x_lines[ix_hi]
    sy_lo = y_lines[iy_lo]
    sy_hi = y_lines[iy_hi]

    g1 = np.maximum(1, np.rint((sx_hi - sx_lo) / grid_size).astype(int))
    g2 = np.maximum(1, np.rint((sy_hi - sy_lo) / grid_size).astype(int))
    degenerate = (
        degenerate_type
        | (ix_hi <= ix_lo)
        | (iy_hi <= iy_lo)
        | (g1 == 1)
        | (g2 == 1)
    )

    # Covered cell index spans (inclusive); a collapsed axis still
    # covers the single line of cells it lies on.
    col_lo = np.minimum(ix_lo, n_cols_total - 1)
    col_hi = np.minimum(np.maximum(ix_hi - 1, col_lo), n_cols_total - 1)
    row_lo = np.minimum(iy_lo, n_rows_total - 1)
    row_hi = np.minimum(np.maximum(iy_hi - 1, row_lo), n_rows_total - 1)

    # ---- degenerate nets: rectangle adds of probability 1 ------------
    for k in np.nonzero(degenerate)[0]:
        mass[col_lo[k] : col_hi[k] + 1, row_lo[k] : row_hi[k] + 1] += weights[k]

    # ---- regular nets: flatten all covered cells ----------------------
    idx = np.nonzero(~degenerate)[0]
    if len(idx) == 0:
        return mass

    # Per-cell parallel vectors, built without any per-cell Python:
    # cells are enumerated row-major per net, and every field is
    # recovered from the flat within-net cell index by integer
    # arithmetic on repeated per-net quantities.
    n_c = col_hi[idx] - col_lo[idx] + 1
    n_r = row_hi[idx] - row_lo[idx] + 1
    counts = n_c * n_r
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    total_cells = int(counts.sum())

    e = np.arange(total_cells) - np.repeat(offsets, counts)  # within-net
    rep_nc = np.repeat(n_c, counts)
    ci = e % rep_nc  # within-net column ordinal
    ri = e // rep_nc  # within-net row ordinal
    col = np.repeat(col_lo[idx], counts) + ci
    row = np.repeat(row_lo[idx], counts) + ri

    gg1 = np.repeat(g1[idx].astype(float), counts)
    gg2 = np.repeat(g2[idx].astype(float), counts)
    w = np.repeat(weights[idx], counts)
    thin = np.repeat((g1[idx] < 3) | (g2[idx] < 3), counts)
    net_of = np.repeat(idx, counts)
    two = np.repeat(type_two[idx], counts)

    base_x = np.repeat(sx_lo[idx], counts)
    base_y = np.repeat(sy_lo[idx], counts)
    x_unit = np.repeat((sx_hi[idx] - sx_lo[idx]) / g1[idx], counts)
    y_unit = np.repeat((sy_hi[idx] - sy_lo[idx]) / g2[idx], counts)

    # Unit-grid spans of each cell in its net's routing range.
    x1 = np.rint((x_lines[col] - base_x) / x_unit)
    x2 = np.rint((x_lines[col + 1] - base_x) / x_unit) - 1.0
    x1 = np.clip(x1, 0.0, gg1 - 1.0)
    x2 = np.clip(np.maximum(x2, x1), 0.0, gg1 - 1.0)
    y1 = np.rint((y_lines[row] - base_y) / y_unit)
    y2 = np.rint((y_lines[row + 1] - base_y) / y_unit) - 1.0
    y1 = np.clip(y1, 0.0, gg2 - 1.0)
    y2 = np.clip(np.maximum(y2, y1), 0.0, gg2 - 1.0)
    # Vertical mirror: type II becomes type I with flipped rows.
    y1_m = np.where(two, gg2 - 1.0 - y2, y1)
    y2_m = np.where(two, gg2 - 1.0 - y1, y2)
    y1, y2 = y1_m, y2_m

    # Pin-covering cells: the snapped range's corners on the net's pin
    # diagonal (step 3.1).
    first_c = ci == 0
    last_c = ci == rep_nc - 1
    first_r = ri == 0
    last_r = row == np.repeat(row_hi[idx], counts)
    pin = np.where(
        two,
        (last_c & first_r) | (first_c & last_r),
        (first_c & first_r) | (last_c & last_r),
    )

    prob = np.zeros(len(col))
    invalid = thin.copy()

    # ---- Simpson integrals, band-filtered --------------------------
    # The integrand is (normal-like) exponentially small away from the
    # route-mass band along the net's pin diagonal; on sprawling
    # floorplans the overwhelming majority of covered cells sit far
    # outside it.  A two-endpoint z test finds them (z has constant
    # sign across a cell: x - mu(x) is linear in x with positive slope
    # (g2-2)/R), and the full 9-node broadcast runs only on the
    # surviving band cells.
    compute = ~pin & ~thin
    if compute.any():
        big_r = gg1 + gg2 - 3.0
        half = 0.0 if paper_bounds else 0.5
        k_nodes = np.arange(panels + 1)
        weights_s = np.ones(panels + 1)
        weights_s[1:-1:2] = 4.0
        weights_s[2:-1:2] = 2.0

        def integrate(active, lo, hi, offset, count_par, spread_par):
            """One boundary integral for every active cell.

            ``lo``/``hi`` are the integration bounds per cell,
            ``offset`` the fixed coordinate in Q = t + offset,
            ``count_par`` the binomial count (g-1 of the integration
            axis), ``spread_par`` the variance numerator (g-2 of the
            other axis).  Adds into ``prob`` and ``invalid``.
            """
            with np.errstate(invalid="ignore", divide="ignore"):
                # Endpoint pre-pass (2 nodes).
                ends = np.stack([lo, hi], axis=1)  # (cells, 2)
                p_e = (ends + offset[:, None]) / big_r[:, None]
                ok_e = (p_e > 0.0) & (p_e < 1.0)
                var_e = (
                    (spread_par / (big_r - 1.0))[:, None]
                    * count_par[:, None]
                    * p_e
                    * (1.0 - p_e)
                )
                good_e = ok_e & (var_e > 0.0)
                safe_e = np.where(good_e, var_e, 1.0)
                z_e = (ends - count_par[:, None] * p_e) / np.sqrt(safe_e)
                both_good = good_e.all(axis=1)
                negligible = (
                    active
                    & both_good
                    & (
                        ((z_e > 8.0).all(axis=1))
                        | ((z_e < -8.0).all(axis=1))
                    )
                )
                full = active & ~negligible
                idx = np.nonzero(full)[0]
                if len(idx) == 0:
                    return
                lo_c = lo[idx]
                hi_c = hi[idx]
                off_c = offset[idx]
                cnt_c = count_par[idx]
                spr_c = spread_par[idx]
                br_c = big_r[idx]
                h = (hi_c - lo_c) / panels
                nodes = lo_c[:, None] + h[:, None] * k_nodes
                p_n = (nodes + off_c[:, None]) / br_c[:, None]
                ok = (p_n > 0.0) & (p_n < 1.0)
                var = (
                    (spr_c / (br_c - 1.0))[:, None]
                    * cnt_c[:, None]
                    * p_n
                    * (1.0 - p_n)
                )
                good = ok & (var > 0.0)
                safe = np.where(good, var, 1.0)
                z = (nodes - cnt_c[:, None] * p_n) / np.sqrt(safe)
                dens = np.where(
                    good, np.exp(-0.5 * z * z) / np.sqrt(2 * np.pi * safe), 0.0
                )
                factor = cnt_c / (gg1[idx] + gg2[idx] - 2.0)
                # count_par is g-1 along the integration axis; the
                # prefactor of the *other* axis is (g_other - 1):
                other = (gg1[idx] + gg2[idx] - 2.0) - cnt_c
                integral = (
                    (other / (gg1[idx] + gg2[idx] - 2.0))
                    * (dens * weights_s).sum(axis=1)
                    * h
                    / 3.0
                )
                np.add.at(prob, idx, integral)
                bad = (~good).any(axis=1)
                if bad.any():
                    invalid[idx[bad]] = True

        # Top-boundary exits: integrate over x; Q = x + y2; the
        # binomial count along x is g1-1, variance numerator g2-2.
        top_active = compute & (y2 + 1.0 < gg2)
        integrate(
            top_active, x1 - half, x2 + half, y2, gg1 - 1.0, gg2 - 2.0
        )
        # Right-boundary exits: integrate over y; Q = y + x2.
        right_active = compute & (x2 + 1.0 < gg1)
        integrate(
            right_active, y1 - half, y2 + half, x2, gg2 - 1.0, gg1 - 2.0
        )

        # Cells flush with both far edges but not flagged as pins cannot
        # be trusted to an empty integral.
        invalid |= compute & (y2 + 1.0 >= gg2) & (x2 + 1.0 >= gg1)

    prob = np.clip(prob, 0.0, 1.0)
    prob[pin] = 1.0

    # ---- scalar exact fallback (thin ranges + domain failures) -------
    # Memoized: across an annealing run the same small (g1, g2, span)
    # configurations recur constantly.
    fallback = np.nonzero(invalid & ~pin)[0]
    if len(fallback):
        for i in fallback.tolist():
            nt = NetType.TYPE_II if type_two[net_of[i]] else NetType.TYPE_I
            # The spans were already mirrored into the type-I frame;
            # mirror back for the scalar API when the net is type II.
            g2i = int(gg2[i])
            if nt is NetType.TYPE_II:
                fy1 = g2i - 1 - int(y2[i])
                fy2 = g2i - 1 - int(y1[i])
            else:
                fy1, fy2 = int(y1[i]), int(y2[i])
            prob[i] = _exact_cached(
                int(gg1[i]), g2i, nt, int(x1[i]), int(x2[i]), fy1, fy2
            )

    np.add.at(mass, (col, row), w * prob)
    return mass
