"""Vectorized per-net IR-grid probability evaluation.

The scalar formulas in :mod:`repro.congestion.exact_ir` and
:mod:`repro.congestion.approx` are the readable reference; annealing
loops evaluate thousands of floorplans, so the model's hot path computes
a whole net's covered IR-cells as numpy matrices:

* :func:`exact_ir_matrix` -- Formula 3 via per-row/per-column *prefix
  sums* of the boundary-transition masses: O(rows * g1 + cols * g2)
  setup, O(1) per cell, bit-identical (up to float associativity) to the
  scalar formula;
* :func:`approx_ir_matrix` -- Theorem 1 with all Simpson nodes of all
  covered cells evaluated in one broadcast; cells whose nodes leave the
  approximation's domain are flagged for the caller's exact fallback.

Both take the net's covered IR-cells as ``col_spans``/``row_spans``:
inclusive unit-grid index pairs per covered IR-column and IR-row.  Type
II nets are handled by the vertical mirror (y -> g2-1-y), under which
they become type I with flipped row spans.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.netlist import NetType

__all__ = ["exact_ir_matrix", "approx_ir_matrix"]

_NEG_INF = float("-inf")


def _build_log_factorials(size: int) -> np.ndarray:
    table = np.zeros(size)
    table[1:] = np.cumsum(np.log(np.arange(1.0, size)))
    table.setflags(write=False)
    return table


# log(i!) for i < 4096, precomputed once at import and frozen -- an
# immutable constant, not a mutable module cache, so parallel engines
# can share it without any state or locking.  4096 covers every
# unit-grid routing range the merged cut lines produce on realistic
# pitches (R = g1 + g2 - 2 stays in the low hundreds); larger requests
# fall back to a fresh stateless computation below.
_LOG_FACTORIALS = _build_log_factorials(4096)


def _log_factorials(n: int) -> np.ndarray:
    if n < len(_LOG_FACTORIALS):
        return _LOG_FACTORIALS[: n + 1]
    # Pathologically large routing range: compute without caching (pure
    # and stateless; the congestion math upstream is O(n) anyway).
    return _build_log_factorials(n + 1)


def _lg(table: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """``log(idx!)`` with out-of-range indices mapped to -inf (zero
    route count)."""
    clipped = np.clip(idx, 0, len(table) - 1)
    out = table[clipped]
    return np.where((idx >= 0) & (idx < len(table)), out, _NEG_INF)


def _mirror_rows(
    row_spans: Sequence[Tuple[int, int]], g2: int
) -> List[Tuple[int, int]]:
    return [(g2 - 1 - y2, g2 - 1 - y1) for (y1, y2) in row_spans]


def exact_ir_matrix(
    g1: int,
    g2: int,
    net_type: NetType,
    col_spans: Sequence[Tuple[int, int]],
    row_spans: Sequence[Tuple[int, int]],
) -> np.ndarray:
    """Formula 3 for every covered cell at once, shape ``(rows, cols)``.

    Entry ``[j, i]`` is the crossing probability of the IR-cell in
    covered row ``j``, covered column ``i``.  Cells containing a pin
    come out as the probability of *reaching* the pin's grid; the model
    overrides them with the pin rule's exact 1.0 anyway.
    """
    if net_type is NetType.DEGENERATE:
        raise ValueError("degenerate nets cross covered cells with probability 1")
    if net_type is NetType.TYPE_II:
        row_spans = _mirror_rows(row_spans, g2)
        net_type = NetType.TYPE_I
    r_total = g1 + g2 - 2
    lg = _log_factorials(r_total)
    log_total = lg[r_total] - lg[g1 - 1] - lg[g2 - 1]

    x = np.arange(g1)
    y = np.arange(g2)
    y2s = np.asarray([span[1] for span in row_spans])[:, None]  # (rows, 1)
    x2s = np.asarray([span[1] for span in col_spans])[:, None]  # (cols, 1)

    # -inf terms mark zero route counts; (-inf) - (-inf) produces NaN
    # with a warning, and both are mapped to mass 0 below.
    with np.errstate(invalid="ignore"):
        # Top-boundary transition mass
        # t[j, x] = Ta(x, y2_j) Tb(x, y2_j+1) / total.
        log_top = (
            _lg(lg, x[None, :] + y2s)
            - _lg(lg, x)[None, :]
            - _lg(lg, y2s)
            + _lg(lg, r_total - 1 - x[None, :] - y2s)
            - _lg(lg, g1 - 1 - x)[None, :]
            - _lg(lg, g2 - 2 - y2s)
            - log_total
        )
        top = np.where(np.isfinite(log_top), np.exp(log_top), 0.0)
        # Right-boundary transition mass
        # r[i, y] = Ta(x2_i, y) Tb(x2_i+1, y) / total.
        log_right = (
            _lg(lg, x2s + y[None, :])
            - _lg(lg, x2s)
            - _lg(lg, y)[None, :]
            + _lg(lg, r_total - 1 - x2s - y[None, :])
            - _lg(lg, g1 - 2 - x2s)
            - _lg(lg, g2 - 1 - y)[None, :]
            - log_total
        )
        right = np.where(np.isfinite(log_right), np.exp(log_right), 0.0)
    top_prefix = np.concatenate(
        [np.zeros((len(row_spans), 1)), np.cumsum(top, axis=1)], axis=1
    )
    right_prefix = np.concatenate(
        [np.zeros((len(col_spans), 1)), np.cumsum(right, axis=1)], axis=1
    )

    x1s = np.asarray([span[0] for span in col_spans])
    x2s_flat = np.asarray([span[1] for span in col_spans])
    y1s = np.asarray([span[0] for span in row_spans])
    y2s_flat = np.asarray([span[1] for span in row_spans])

    # result[j, i] = sum_top(j over cols i) + sum_right(i over rows j)
    top_part = top_prefix[:, x2s_flat + 1] - top_prefix[:, x1s]  # (rows, cols)
    right_part = (right_prefix[:, y2s_flat + 1] - right_prefix[:, y1s]).T
    result = top_part + right_part

    # Far-corner cells (covering the destination pin's grid): add the
    # mass of routes terminating there, mirroring the scalar formula.
    corner = (y2s_flat[:, None] == g2 - 1) & (x2s_flat[None, :] == g1 - 1)
    if corner.any():
        result = result + np.where(corner, 1.0, 0.0)
    return np.clip(result, 0.0, 1.0)


def approx_ir_matrix(
    g1: int,
    g2: int,
    net_type: NetType,
    col_spans: Sequence[Tuple[int, int]],
    row_spans: Sequence[Tuple[int, int]],
    panels: int = 8,
    paper_bounds: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Theorem 1 for every covered cell at once.

    Returns ``(P, invalid)`` where ``P[j, i]`` is the approximate
    crossing probability and ``invalid[j, i]`` marks cells whose Simpson
    nodes left the approximation's domain (Section 4.5's error grids and
    degenerate variances); the caller re-evaluates those exactly.
    """
    if net_type is NetType.DEGENERATE:
        raise ValueError("degenerate nets cross covered cells with probability 1")
    if panels <= 0 or panels % 2:
        raise ValueError(f"panels must be a positive even integer, got {panels}")
    if net_type is NetType.TYPE_II:
        row_spans = _mirror_rows(row_spans, g2)
        net_type = NetType.TYPE_I

    n_rows = len(row_spans)
    n_cols = len(col_spans)
    big_r = g1 + g2 - 3
    half = 0.0 if paper_bounds else 0.5
    weights = _simpson_weights(panels)  # (panels+1,)

    x1s = np.asarray([s[0] for s in col_spans], dtype=float)
    x2s = np.asarray([s[1] for s in col_spans], dtype=float)
    y1s = np.asarray([s[0] for s in row_spans], dtype=float)
    y2s = np.asarray([s[1] for s in row_spans], dtype=float)

    total = np.zeros((n_rows, n_cols))
    invalid = np.zeros((n_rows, n_cols), dtype=bool)

    # ---- top-boundary integrals (skip rows flush with the far edge) --
    top_active = y2s + 1 < g2  # (rows,)
    if top_active.any() and g2 >= 3 and big_r >= 2:
        a = x1s - half
        b = x2s + half
        h = (b - a) / panels
        nodes = a[:, None] + h[:, None] * np.arange(panels + 1)  # (cols, k)
        p = (nodes[None, :, :] + y2s[:, None, None]) / big_r  # (rows, cols, k)
        ok = (p > 0.0) & (p < 1.0)
        var = ((g2 - 2) / (big_r - 1)) * (g1 - 1) * p * (1.0 - p)
        safe_var = np.where(ok & (var > 0), var, 1.0)
        mu = (g1 - 1) * p
        z = (nodes[None, :, :] - mu) / np.sqrt(safe_var)
        dens = np.exp(-0.5 * z**2) / np.sqrt(2.0 * np.pi * safe_var)
        dens = np.where(ok & (var > 0), dens, 0.0)
        factor1 = (g2 - 1) / (g1 + g2 - 2)
        integral = factor1 * (dens * weights).sum(axis=2) * (h / 3.0)[None, :]
        bad = ~(ok & (var > 0))
        row_mask = top_active[:, None]
        total += np.where(row_mask, integral, 0.0)
        invalid |= row_mask & bad.any(axis=2)
    elif top_active.any():
        # Range too thin for the normal approximation anywhere.
        invalid |= top_active[:, None]

    # ---- right-boundary integrals (skip cols flush with the far edge) -
    right_active = x2s + 1 < g1  # (cols,)
    if right_active.any() and g1 >= 3 and big_r >= 2:
        a = y1s - half
        b = y2s + half
        h = (b - a) / panels
        nodes = a[:, None] + h[:, None] * np.arange(panels + 1)  # (rows, k)
        p = (nodes[:, None, :] + x2s[None, :, None]) / big_r  # (rows, cols, k)
        ok = (p > 0.0) & (p < 1.0)
        var = ((g1 - 2) / (big_r - 1)) * (g2 - 1) * p * (1.0 - p)
        safe_var = np.where(ok & (var > 0), var, 1.0)
        mu = (g2 - 1) * p
        z = (nodes[:, None, :] - mu) / np.sqrt(safe_var)
        dens = np.exp(-0.5 * z**2) / np.sqrt(2.0 * np.pi * safe_var)
        dens = np.where(ok & (var > 0), dens, 0.0)
        factor2 = (g1 - 1) / (g1 + g2 - 2)
        integral = factor2 * (dens * weights).sum(axis=2) * (h / 3.0)[:, None]
        bad = ~(ok & (var > 0))
        col_mask = right_active[None, :]
        total += np.where(col_mask, integral, 0.0)
        invalid |= col_mask & bad.any(axis=2)
    elif right_active.any():
        invalid |= right_active[None, :]

    # Cells flush with both far edges cover the destination pin; the pin
    # rule owns them, mark invalid so the caller never trusts 0.0 there.
    far_corner = (y2s[:, None] + 1 >= g2) & (x2s[None, :] + 1 >= g1)
    invalid |= far_corner
    return np.clip(total, 0.0, 1.0), invalid


def _simpson_weights(panels: int) -> np.ndarray:
    w = np.ones(panels + 1)
    w[1:-1:2] = 4.0
    w[2:-1:2] = 2.0
    return w
