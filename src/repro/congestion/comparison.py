"""Cross-model congestion-map comparison.

Congestion maps live on different tilings (uniform grids at several
pitches, Irregular-Grids); comparing them per-region first needs a
common lattice.  :func:`resample_to_grid` redistributes any map's mass
onto a uniform grid by exact area-weighted overlap (mass is conserved),
after which arrays can be compared cell-by-cell --
:func:`map_rank_correlation` does so with Spearman correlation.

This closes the loop the paper leaves implicit: Experiment 2 compares
*scores* across snapshots; with resampling we can also ask how well the
IR model's spatial picture matches the fine judging map's, region by
region.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.congestion.base import CongestionMap
from repro.geometry import Rect
from repro.routing.overflow import rank_correlation

__all__ = ["resample_to_grid", "map_rank_correlation"]


def resample_to_grid(
    congestion_map: CongestionMap,
    pitch: float,
    chip: "Rect | None" = None,
) -> np.ndarray:
    """Redistribute a map's mass onto a uniform grid of ``pitch``.

    Each source cell's mass spreads uniformly over its own rectangle
    and is integrated over every target cell it overlaps, so total mass
    is conserved exactly (up to float rounding) regardless of how the
    tilings misalign.  Returns an array of shape ``(columns, rows)``.
    """
    if pitch <= 0:
        raise ValueError(f"pitch must be positive, got {pitch}")
    chip = chip or congestion_map.chip
    n_cols = max(1, math.ceil(chip.width / pitch - 1e-9))
    n_rows = max(1, math.ceil(chip.height / pitch - 1e-9))
    xs = chip.x_lo + pitch * np.arange(n_cols + 1)
    ys = chip.y_lo + pitch * np.arange(n_rows + 1)
    xs[-1] = chip.x_hi
    ys[-1] = chip.y_hi
    grid = np.zeros((n_cols, n_rows))
    for cell in congestion_map.cells:
        if cell.mass == 0.0:
            continue
        rect = cell.rect
        if rect.area <= 0.0:
            continue
        density = cell.mass / rect.area
        ox = np.minimum(xs[1:], rect.x_hi) - np.maximum(xs[:-1], rect.x_lo)
        oy = np.minimum(ys[1:], rect.y_hi) - np.maximum(ys[:-1], rect.y_lo)
        np.clip(ox, 0.0, None, out=ox)
        np.clip(oy, 0.0, None, out=oy)
        grid += density * np.outer(ox, oy)
    return grid


def map_rank_correlation(
    map_a: CongestionMap,
    map_b: CongestionMap,
    pitch: float,
) -> Tuple[float, int]:
    """Spearman correlation of two maps resampled to a common lattice.

    The common chip is the intersection of the two maps' chips (they
    normally coincide).  Returns ``(correlation, n_cells)``.
    """
    chip = map_a.chip.intersection(map_b.chip)
    if chip is None or chip.area <= 0:
        raise ValueError("maps cover disjoint chips")
    a = resample_to_grid(map_a, pitch, chip)
    b = resample_to_grid(map_b, pitch, chip)
    n_c = min(a.shape[0], b.shape[0])
    n_r = min(a.shape[1], b.shape[1])
    corr = rank_correlation(
        a[:n_c, :n_r].ravel(), b[:n_c, :n_r].ravel()
    )
    return corr, n_c * n_r
