"""Bend-weighted route distribution (extension).

The paper's model (after Lou et al. and Sham & Young) takes every
monotone route as equally likely.  Real routers prefer routes with few
bends (each bend is a via); a classic refinement weights each route by
``lambda ** bends`` with ``0 < lambda <= 1``:

* ``lambda = 1``  -- the paper's uniform model, exactly;
* ``lambda -> 0`` -- all mass on the two L-shaped routes.

Crossing probabilities no longer have a closed binomial form, so the
model computes them by dynamic programming over (cell, arrival
direction): ``A[x, y, d]`` accumulates the weighted count of partial
routes reaching cell ``(x, y)`` moving in direction ``d``, with a
``lambda`` factor on every turn, and symmetrically ``B`` from the far
pin.  Per-net cost is O(g1 * g2) -- the same as the exact fixed-grid
baseline -- making this a drop-in :class:`CongestionModel` for every
experiment and the A6 ablation ("how much does the uniform-route
assumption distort the picture?").
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.congestion.base import CongestionCell, CongestionMap, CongestionModel
from repro.geometry import Rect
from repro.netlist import NetType, TwoPinNet

__all__ = ["BendWeightedModel", "bend_weighted_table"]


def bend_weighted_table(
    g1: int, g2: int, net_type: NetType, bend_weight: float
) -> np.ndarray:
    """Crossing-probability table under bend weighting, shape (g1, g2).

    ``bend_weight = 1`` reproduces Formula 2's uniform table (tests
    assert this).  Probabilities are per-net: the chance that the
    net's (weighted-)random route crosses each cell.
    """
    if g1 < 1 or g2 < 1:
        raise ValueError(f"grid dimensions must be >= 1, got {g1} x {g2}")
    if not 0.0 < bend_weight <= 1.0:
        raise ValueError(
            f"bend_weight must be in (0, 1], got {bend_weight}"
        )
    if net_type is NetType.DEGENERATE:
        raise ValueError("degenerate nets cross every covered cell")
    if net_type is NetType.TYPE_II:
        return bend_weighted_table(g1, g2, NetType.TYPE_I, bend_weight)[:, ::-1]
    if g1 == 1 or g2 == 1:
        return np.ones((g1, g2))

    lam = float(bend_weight)
    # A[x, y, d]: weighted count of routes from (0,0) arriving at (x,y)
    # with last step in direction d (0 = right, 1 = up).  The first
    # step is unpenalized (no previous direction).
    a = _forward(g1, g2, lam)
    # B by symmetry: routes from (g1-1, g2-1) stepping left/down are the
    # mirror of forward routes on the flipped grid; B[x, y, d] counts
    # continuations *leaving* (x, y) in direction d.
    a_rev = _forward(g1, g2, lam)[::-1, ::-1, :]
    # a_rev[x, y, d] counts suffix routes that *arrive* at (x,y) in the
    # reversed frame; in the forward frame its direction index denotes
    # the direction the suffix leaves (x, y) with.
    total = a[g1 - 1, g2 - 1, 0] + a[g1 - 1, g2 - 1, 1]

    table = np.zeros((g1, g2))
    for x in range(g1):
        for y in range(g2):
            if x == 0 and y == 0:
                table[x, y] = 1.0
                continue
            if x == g1 - 1 and y == g2 - 1:
                table[x, y] = 1.0
                continue
            acc = 0.0
            for d_in in range(2):
                if a[x, y, d_in] == 0.0:
                    continue
                for d_out in range(2):
                    suffix = a_rev[x, y, d_out]
                    if suffix == 0.0:
                        continue
                    turn = lam if d_in != d_out else 1.0
                    acc += a[x, y, d_in] * turn * suffix
            table[x, y] = acc / total
    return table


def _forward(g1: int, g2: int, lam: float) -> np.ndarray:
    """Weighted arrival counts ``A[x, y, d]`` from the lower-left pin.

    ``A[x, y, d]`` excludes any turn penalty *at* (x, y); turns are
    charged when the route continues (see the combination step).  At
    the destination edge cells the suffix "leaving direction" is the
    direction of the final arrival, handled by the caller's symmetric
    construction.
    """
    a = np.zeros((g1, g2, 2))
    # First moves out of the origin.
    if g1 > 1:
        a[1, 0, 0] = 1.0
    if g2 > 1:
        a[0, 1, 1] = 1.0
    for s in range(2, g1 + g2 - 1):
        for x in range(max(0, s - g2 + 1), min(g1, s + 1)):
            y = s - x
            if x > 0:
                src = a[x - 1, y]
                a[x, y, 0] += src[0] + lam * src[1]
            if y > 0:
                src = a[x, y - 1]
                a[x, y, 1] += lam * src[0] + src[1]
    return a


class BendWeightedModel(CongestionModel):
    """Fixed-grid congestion with bend-weighted route distribution."""

    def __init__(
        self,
        grid_size: float,
        bend_weight: float = 0.5,
        top_fraction: float = 0.1,
    ):
        if grid_size <= 0:
            raise ValueError(f"grid_size must be positive, got {grid_size}")
        if not 0.0 < bend_weight <= 1.0:
            raise ValueError(
                f"bend_weight must be in (0, 1], got {bend_weight}"
            )
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError(
                f"top_fraction must be in (0, 1], got {top_fraction}"
            )
        self.grid_size = float(grid_size)
        self.bend_weight = float(bend_weight)
        self.top_fraction = float(top_fraction)

    def evaluate_array(self, chip: Rect, nets: Sequence[TwoPinNet]) -> np.ndarray:
        """Bend-weighted crossing-mass array, shape ``(columns, rows)``."""
        n_cols = max(1, int(np.ceil(chip.width / self.grid_size - 1e-9)))
        n_rows = max(1, int(np.ceil(chip.height / self.grid_size - 1e-9)))
        grid = np.zeros((n_cols, n_rows))
        for net in nets:
            ix1 = min(int((net.p1.x - chip.x_lo) / self.grid_size), n_cols - 1)
            iy1 = min(int((net.p1.y - chip.y_lo) / self.grid_size), n_rows - 1)
            ix2 = min(int((net.p2.x - chip.x_lo) / self.grid_size), n_cols - 1)
            iy2 = min(int((net.p2.y - chip.y_lo) / self.grid_size), n_rows - 1)
            x_lo, x_hi = min(ix1, ix2), max(ix1, ix2)
            y_lo, y_hi = min(iy1, iy2), max(iy1, iy2)
            g1 = x_hi - x_lo + 1
            g2 = y_hi - y_lo + 1
            if g1 == 1 or g2 == 1:
                grid[x_lo : x_hi + 1, y_lo : y_hi + 1] += net.weight
                continue
            table = bend_weighted_table(
                g1, g2, net.net_type, self.bend_weight
            )
            grid[x_lo : x_hi + 1, y_lo : y_hi + 1] += net.weight * table
        return grid

    def evaluate(self, chip: Rect, nets: Sequence[TwoPinNet]) -> CongestionMap:
        """Bend-weighted congestion map of ``nets`` over ``chip``."""
        grid = self.evaluate_array(chip, nets)
        n_cols, n_rows = grid.shape
        cells: List[CongestionCell] = []
        for ix in range(n_cols):
            x_lo = chip.x_lo + ix * self.grid_size
            x_hi = min(x_lo + self.grid_size, chip.x_hi)
            for iy in range(n_rows):
                y_lo = chip.y_lo + iy * self.grid_size
                y_hi = min(y_lo + self.grid_size, chip.y_hi)
                cells.append(
                    CongestionCell(
                        Rect(x_lo, y_lo, x_hi, y_hi), float(grid[ix, iy])
                    )
                )
        return CongestionMap(chip, cells)

    def score(self, congestion_map: CongestionMap) -> float:
        """Mean mass of the top ``top_fraction`` cells."""
        return congestion_map.top_mass_score(self.top_fraction)
