"""Congestion attribution: which nets make a hotspot hot?

The models score floorplans, but a floorplanner user debugging a
congested design needs the inverse query: for the most congested
IR-grids, which nets contribute how much crossing probability.  This
module answers it by re-evaluating nets individually against a frozen
Irregular-Grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.congestion.batched import batched_approx_mass
from repro.congestion.model import IrregularGridModel
from repro.geometry import Rect
from repro.netlist import TwoPinNet

__all__ = ["HotspotReport", "CellAttribution", "analyze_hotspots"]


@dataclass(frozen=True)
class CellAttribution:
    """One hot IR-grid and its top contributing nets."""

    rect: Rect
    mass: float
    density: float
    # (net name, contributed probability), strongest first.
    contributors: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class HotspotReport:
    """The hottest cells of a floorplan with per-net attribution."""

    chip: Rect
    cells: Tuple[CellAttribution, ...]

    def dominant_nets(self, k: int = 5) -> List[Tuple[str, float]]:
        """Nets ranked by their total contribution across all reported
        hotspots -- the first candidates for rerouting or replication."""
        totals: dict = {}
        for cell in self.cells:
            for name, amount in cell.contributors:
                totals[name] = totals.get(name, 0.0) + amount
        ranked = sorted(totals.items(), key=lambda kv: -kv[1])
        return ranked[:k]


def analyze_hotspots(
    model: IrregularGridModel,
    chip: Rect,
    nets: Sequence[TwoPinNet],
    top_cells: int = 5,
    top_nets_per_cell: int = 5,
) -> HotspotReport:
    """Attribute the densest IR-grids of a floorplan to their nets.

    Builds the Irregular-Grid once, finds the ``top_cells`` densest
    cells, then evaluates each net alone on the same grid to measure
    its contribution to those cells.  Cost is one extra model
    evaluation per net -- an offline debugging query, not an annealing-
    loop operation.
    """
    if top_cells < 1:
        raise ValueError(f"top_cells must be >= 1, got {top_cells}")
    if top_nets_per_cell < 1:
        raise ValueError(
            f"top_nets_per_cell must be >= 1, got {top_nets_per_cell}"
        )
    congestion_map, irgrid = model.evaluate_with_grid(chip, nets)
    # Map cells arrive in the same row-major order IRGrid.cells() uses.
    indexed = list(
        zip(congestion_map.cells, ((i, j) for i, j, _ in irgrid.cells()))
    )
    ranked_cells = sorted(indexed, key=lambda pair: -pair[0].density)[:top_cells]

    # Per-net masses on the frozen grid.
    per_net = []
    for net in nets:
        per_net.append(
            (net.name, batched_approx_mass(irgrid, [net], model.grid_size))
        )

    cells: List[CellAttribution] = []
    for cell, (i, j) in ranked_cells:
        contributions = [
            (name, float(net_mass[i, j]))
            for name, net_mass in per_net
            if net_mass[i, j] > 0.0
        ]
        contributions.sort(key=lambda kv: -kv[1])
        cells.append(
            CellAttribution(
                rect=cell.rect,
                mass=cell.mass,
                density=cell.density,
                contributors=tuple(contributions[:top_nets_per_cell]),
            )
        )
    return HotspotReport(chip=chip, cells=tuple(cells))
