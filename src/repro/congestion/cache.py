"""Bounded, instrumented memoization for the congestion hot path.

Annealing evaluates thousands of floorplans whose nets mostly keep
their *local* geometry between consecutive states: one M1/M2/M3 move
perturbs a handful of modules, and even the nets it does touch often
revisit configurations seen earlier in the run.  Formula 3 / Theorem 1
depend only on a net's local signature -- its type, unit-grid
dimensions ``(g1, g2)`` and the unit-grid offsets of the cut lines
crossing its snapped routing range -- so per-net results are reusable
across moves *and* across floorplans whenever that signature recurs.

The store behind that reuse is :class:`~repro.perf.cache.BoundedCache`
(re-exported here): a thread-safe LRU mapping with hit/miss accounting,
bounded so day-long annealing runs cannot grow memory without limit
(unlike the unbounded ``lru_cache`` it replaces in
:mod:`repro.congestion.batched`).  Module-level default instances are
registered by name so benchmarks and the CLI can report fleet-wide hit
rates via :func:`cache_stats`.
"""

from __future__ import annotations

from repro.perf.cache import (
    BoundedCache,
    CacheStats,
    cache_stats,
    clear_all_caches,
)

__all__ = [
    "CacheStats",
    "BoundedCache",
    "NET_MASS_CACHE",
    "NET_MATRIX_CACHE",
    "EXACT_PROB_CACHE",
    "cache_stats",
    "clear_all_caches",
]


# Default stores shared by all models unless a caller opts out.  Sizes:
# a floorplan has O(100) regular nets and a full annealing run's
# working set of per-net signatures measures in the low hundreds of
# thousands (a 65k store thrashed with ~120k evictions on an ami33-
# scale run); 256k entries of ~100-float vectors is ~200 MB worst
# case but in practice vectors are short (tens of cells).  The scalar
# exact-probability store keeps the previous lru_cache budget.
NET_MASS_CACHE = BoundedCache(262_144, name="net_mass")
NET_MATRIX_CACHE = BoundedCache(65_536, name="net_matrix")
EXACT_PROB_CACHE = BoundedCache(262_144, name="exact_prob")
