"""Bounded, instrumented memoization for the congestion hot path.

Annealing evaluates thousands of floorplans whose nets mostly keep
their *local* geometry between consecutive states: one M1/M2/M3 move
perturbs a handful of modules, and even the nets it does touch often
revisit configurations seen earlier in the run.  Formula 3 / Theorem 1
depend only on a net's local signature -- its type, unit-grid
dimensions ``(g1, g2)`` and the unit-grid offsets of the cut lines
crossing its snapped routing range -- so per-net results are reusable
across moves *and* across floorplans whenever that signature recurs.

The store behind that reuse is :class:`~repro.perf.cache.BoundedCache`
(re-exported here): a thread-safe LRU mapping with hit/miss accounting,
bounded so day-long annealing runs cannot grow memory without limit.

There are no module-level cache instances: every store belongs to a
:class:`~repro.perf.context.CacheContext` (re-exported here), owned by
the annealing engine -- or created privately by a standalone
:class:`~repro.congestion.model.IrregularGridModel` -- and injected
down the stack.  Two engines running in one process therefore never
share cache state, eviction pressure, or accounting; per-engine stats
come from ``context.stats()`` / ``context.report()``.

Capacities are per-store constructor kwargs on ``CacheContext`` (the
defaults re-exported here); before resizing one, check the ``evicted``
column of ``context.report()`` / the CLI ``--perf`` table -- a store
with zero evictions is hit-rate-bound by its workload's distinct
signatures, not by capacity (see the sizing note in
:mod:`repro.perf.context`).
"""

from __future__ import annotations

from repro.perf.cache import BoundedCache, CacheStats
from repro.perf.context import (
    DEFAULT_EXACT_PROB_SIZE,
    DEFAULT_NET_MASS_SIZE,
    CacheContext,
)

__all__ = [
    "CacheStats",
    "BoundedCache",
    "CacheContext",
    "DEFAULT_NET_MASS_SIZE",
    "DEFAULT_EXACT_PROB_SIZE",
]
