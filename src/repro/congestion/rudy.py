"""RUDY: Rectangular Uniform wire DensitY (extension baseline).

RUDY [Spindler & Johannes, DATE 2007] is the standard lightweight
congestion estimate in modern placers: each net spreads a wire demand
of ``length / area = (w + h) / (w * h)`` *uniformly* over its bounding
box.  It ignores the route distribution entirely, making it the natural
"how much does the probabilistic machinery actually buy?" baseline for
the paper's models: same inputs, same map shape, none of the
route-counting.

Implemented on the fixed evaluation grid with exact partial-cell
overlap so the deposited demand is independent of the pitch.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.congestion.base import CongestionCell, CongestionMap, CongestionModel
from repro.geometry import Rect
from repro.netlist import TwoPinNet

__all__ = ["RudyModel"]


class RudyModel(CongestionModel):
    """Uniform wire-density congestion on a fixed grid.

    Parameters
    ----------
    grid_size:
        Evaluation pitch in micrometres.
    top_fraction:
        Fraction of most-demanding cells averaged into the score.
    min_extent:
        Degenerate bounding boxes (aligned pins) are fattened to this
        width so their demand stays finite; defaults to one grid.
    """

    def __init__(
        self,
        grid_size: float,
        top_fraction: float = 0.1,
        min_extent: "float | None" = None,
    ):
        if grid_size <= 0:
            raise ValueError(f"grid_size must be positive, got {grid_size}")
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
        self.grid_size = float(grid_size)
        self.top_fraction = float(top_fraction)
        self.min_extent = float(
            grid_size if min_extent is None else min_extent
        )
        if self.min_extent <= 0:
            raise ValueError("min_extent must be positive")

    # -- public API ---------------------------------------------------

    def evaluate(self, chip: Rect, nets: Sequence[TwoPinNet]) -> CongestionMap:
        """RUDY demand map of ``nets`` over ``chip``."""
        grid = self.evaluate_array(chip, nets)
        n_cols, n_rows = grid.shape
        cells: List[CongestionCell] = []
        for ix in range(n_cols):
            x_lo = chip.x_lo + ix * self.grid_size
            x_hi = min(x_lo + self.grid_size, chip.x_hi)
            for iy in range(n_rows):
                y_lo = chip.y_lo + iy * self.grid_size
                y_hi = min(y_lo + self.grid_size, chip.y_hi)
                cells.append(
                    CongestionCell(Rect(x_lo, y_lo, x_hi, y_hi), float(grid[ix, iy]))
                )
        return CongestionMap(chip, cells)

    def evaluate_array(self, chip: Rect, nets: Sequence[TwoPinNet]) -> np.ndarray:
        """Raw RUDY demand array, shape ``(columns, rows)``.

        Each entry is the summed demand density x overlap area of every
        net's (fattened) bounding box with that cell.
        """
        n_cols = max(1, int(np.ceil(chip.width / self.grid_size - 1e-9)))
        n_rows = max(1, int(np.ceil(chip.height / self.grid_size - 1e-9)))
        grid = np.zeros((n_cols, n_rows))
        xs = chip.x_lo + self.grid_size * np.arange(n_cols + 1)
        ys = chip.y_lo + self.grid_size * np.arange(n_rows + 1)
        xs[-1] = chip.x_hi
        ys[-1] = chip.y_hi
        for net in nets:
            bbox = self._fattened_bbox(net, chip)
            w, h = bbox.width, bbox.height
            density = net.weight * (w + h) / (w * h)
            # Per-axis overlap lengths of the bbox with each cell strip.
            ox = np.minimum(xs[1:], bbox.x_hi) - np.maximum(xs[:-1], bbox.x_lo)
            oy = np.minimum(ys[1:], bbox.y_hi) - np.maximum(ys[:-1], bbox.y_lo)
            np.clip(ox, 0.0, None, out=ox)
            np.clip(oy, 0.0, None, out=oy)
            grid += density * np.outer(ox, oy)
        return grid

    def score(self, congestion_map: CongestionMap) -> float:
        """Mean demand of the top ``top_fraction`` cells."""
        return congestion_map.top_mass_score(self.top_fraction)

    def score_array(self, grid: np.ndarray) -> float:
        """:meth:`score` computed directly on a demand array."""
        flat = np.sort(grid.ravel())[::-1]
        k = max(1, int(round(self.top_fraction * len(flat))))
        return float(flat[:k].mean())

    def estimate_fast(self, chip: Rect, nets: Sequence[TwoPinNet]) -> float:
        """Array-only ``score(evaluate(...))`` without cell objects."""
        return self.score_array(self.evaluate_array(chip, nets))

    # -- internals -----------------------------------------------------

    def _fattened_bbox(self, net: TwoPinNet, chip: Rect) -> Rect:
        rng = net.routing_range
        x_lo, x_hi = rng.x_lo, rng.x_hi
        y_lo, y_hi = rng.y_lo, rng.y_hi
        if x_hi - x_lo < self.min_extent:
            mid = 0.5 * (x_lo + x_hi)
            x_lo = mid - 0.5 * self.min_extent
            x_hi = mid + 0.5 * self.min_extent
        if y_hi - y_lo < self.min_extent:
            mid = 0.5 * (y_lo + y_hi)
            y_lo = mid - 0.5 * self.min_extent
            y_hi = mid + 0.5 * self.min_extent
        # Keep the fattened box on-chip so demand is not lost.
        if x_lo < chip.x_lo:
            x_hi += chip.x_lo - x_lo
            x_lo = chip.x_lo
        if x_hi > chip.x_hi:
            x_lo = max(chip.x_lo, x_lo - (x_hi - chip.x_hi))
            x_hi = chip.x_hi
        if y_lo < chip.y_lo:
            y_hi += chip.y_lo - y_lo
            y_lo = chip.y_lo
        if y_hi > chip.y_hi:
            y_lo = max(chip.y_lo, y_lo - (y_hi - chip.y_hi))
            y_hi = chip.y_hi
        return Rect(x_lo, y_lo, x_hi, y_hi)
