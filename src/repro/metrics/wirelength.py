"""Wirelength metrics.

The paper's experiments report "wire length" computed after MST
decomposition (Section 5): the sum of the 2-pin nets' Manhattan lengths.
Half-perimeter wirelength (HPWL) is also provided -- it is the standard
floorplanning estimate and the two coincide on 2- and 3-pin nets.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.geometry import Point, Rect
from repro.netlist import Net, TwoPinNet

__all__ = ["hpwl", "total_hpwl", "total_two_pin_length"]


def hpwl(pin_points: Sequence[Point], weight: float = 1.0) -> float:
    """Half-perimeter of the pins' bounding box, times the net weight."""
    if not pin_points:
        raise ValueError("hpwl needs at least one pin")
    bbox = Rect.from_points(pin_points[0], pin_points[0])
    for p in pin_points[1:]:
        bbox = bbox.union_bbox(Rect.from_points(p, p))
    return weight * bbox.half_perimeter


def total_hpwl(
    nets: Iterable[Net],
    pin_locations: Mapping[str, Mapping[str, Point]],
) -> float:
    """Weighted HPWL summed over all nets."""
    total = 0.0
    for net in nets:
        locations = pin_locations[net.name]
        points = [locations[t] for t in net.terminals]
        total += hpwl(points, net.weight)
    return total


def total_two_pin_length(two_pin_nets: Iterable[TwoPinNet]) -> float:
    """Weighted Manhattan length of the decomposed 2-pin nets.

    This is the paper's wirelength objective: the MST decomposition
    already happened, so the total is just the sum of edge lengths.

    Summed through numpy's pairwise reduction rather than a sequential
    Python ``sum``: the annealing pipeline's array lane totals the same
    per-edge lengths with ``ndarray.sum()``, and the two orderings
    differ in the last bits (~1e-16 relative).  Sharing the reduction
    keeps the from-scratch evaluator bit-identical to the incremental
    one, so seed-vs-fast benchmark walks cannot drift apart on a
    borderline Metropolis decision.
    """
    lengths = np.array(
        [n.weight * n.manhattan_length for n in two_pin_nets]
    )
    return float(lengths.sum()) if lengths.size else 0.0
