"""Order statistics used by the congestion scores.

Both congestion models score a floorplan by the *top 10 % most
congested* portion of the map (paper Sections 3 and 4.6).  The fixed
grid has equal-area cells, so that is a plain top-k mean; IR-grids have
unequal areas, so the score is an *area-weighted* top-fraction mean over
density (probability mass per unit area).
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["top_fraction_mean", "area_weighted_top_fraction_mean"]


def top_fraction_mean(values: Sequence[float], fraction: float = 0.1) -> float:
    """Mean of the largest ``fraction`` of ``values``.

    At least one value is always included, matching the paper's
    "top 10 % most congested grids" on coarse maps with fewer than ten
    cells.  An empty sequence scores 0 (a floorplan with no nets has no
    congestion).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if not values:
        return 0.0
    ordered = sorted(values, reverse=True)
    k = max(1, int(round(fraction * len(ordered))))
    top = ordered[:k]
    return sum(top) / len(top)


def area_weighted_top_fraction_mean(
    density_area_pairs: Sequence[Tuple[float, float]],
    fraction: float = 0.1,
) -> float:
    """Area-weighted mean density of the densest ``fraction`` of area.

    ``density_area_pairs`` holds ``(density, area)`` per cell.  Cells
    are taken in decreasing density until ``fraction`` of the *total*
    area is covered; the last cell is included fractionally, so the
    result is continuous in the cell boundaries (important: otherwise
    the annealer's cost would jump when a cut line moves).

    This is the paper's "average of the congestion cost of the top 10 %
    most congested area units" (Algorithm step 5).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    total_area = sum(a for _, a in density_area_pairs if a > 0)
    if total_area <= 0.0:
        return 0.0
    target = fraction * total_area
    mass = 0.0
    covered = 0.0
    for density, area in sorted(density_area_pairs, key=lambda p: -p[0]):
        if area <= 0:
            continue
        take = min(area, target - covered)
        mass += density * take
        covered += take
        if covered >= target:
            break
    if covered <= 0.0:
        return 0.0
    return mass / covered
