"""Floorplan quality metrics: wirelength and order statistics."""

from repro.metrics.wirelength import (
    hpwl,
    total_hpwl,
    total_two_pin_length,
)
from repro.metrics.stats import top_fraction_mean, area_weighted_top_fraction_mean

__all__ = [
    "hpwl",
    "total_hpwl",
    "total_two_pin_length",
    "top_fraction_mean",
    "area_weighted_top_fraction_mean",
]
