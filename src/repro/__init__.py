"""repro -- Irregular-Grid congestion estimation for floorplan design.

A full reproduction of *"A New Effective Congestion Model in Floorplan
Design"* (Hsieh & Hsieh, DATE 2004): the Irregular-Grid probabilistic
congestion model, the fixed-size-grid baseline it improves on, and the
Wong-Liu simulated-annealing floorplanner both are embedded in.

Quickstart::

    from repro import load_mcnc, AnnealEngine

    circuit = load_mcnc("ami33")
    engine = AnnealEngine(circuit, representation="polish", seed=1)
    result = engine.run()

Best-of-N over seeds, optionally on a process pool::

    from repro import MultiStartEngine

    multi = MultiStartEngine(circuit, restarts=4, workers=4)
    best = multi.run().best

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.congestion import (
    analyze_hotspots,
    CongestionCell,
    CongestionMap,
    CongestionModel,
    FixedGridModel,
    IRGrid,
    IrregularGridModel,
    JudgingModel,
    build_irgrid,
)
from repro.data import load_mcnc, read_yal, write_yal
from repro.floorplan import (
    Floorplan,
    PolishExpression,
    SequencePair,
    evaluate_polish,
    initial_expression,
    pack_sequence_pair,
)
from repro.geometry import Point, Rect
from repro.netlist import (
    Module,
    SoftModule,
    soften,
    Net,
    Netlist,
    NetType,
    TwoPinNet,
    clustered_circuit,
    decompose_to_two_pin,
    grid_circuit,
    random_circuit,
)
from repro.pins import PinAssignment, assign_pins
from repro.anneal import (
    AnnealResult,
    FloorplanAnnealer,
    FloorplanObjective,
    GeometricSchedule,
)
from repro.engine import (
    AnnealEngine,
    CacheContext,
    Checkpoint,
    EngineResult,
    MultiStartEngine,
    MultiStartResult,
    ObjectiveSpec,
    Representation,
    RunControl,
    RunReport,
    available_representations,
    install_signal_handlers,
    load_checkpoint,
    make_representation,
    register_representation,
    save_checkpoint,
)
from repro.errors import (
    CheckpointError,
    NetlistValidationError,
    ReproError,
    WorkerFailure,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # congestion
    "CongestionCell",
    "CongestionMap",
    "CongestionModel",
    "FixedGridModel",
    "IRGrid",
    "IrregularGridModel",
    "JudgingModel",
    "analyze_hotspots",
    "build_irgrid",
    # data
    "load_mcnc",
    "read_yal",
    "write_yal",
    # floorplan
    "Floorplan",
    "PolishExpression",
    "SequencePair",
    "evaluate_polish",
    "initial_expression",
    "pack_sequence_pair",
    # geometry
    "Point",
    "Rect",
    # netlist
    "Module",
    "SoftModule",
    "soften",
    "Net",
    "Netlist",
    "NetType",
    "TwoPinNet",
    "clustered_circuit",
    "decompose_to_two_pin",
    "grid_circuit",
    "random_circuit",
    # pins
    "PinAssignment",
    "assign_pins",
    # annealing
    "AnnealResult",
    "FloorplanAnnealer",
    "FloorplanObjective",
    "GeometricSchedule",
    # engine
    "AnnealEngine",
    "CacheContext",
    "EngineResult",
    "MultiStartEngine",
    "MultiStartResult",
    "ObjectiveSpec",
    "Representation",
    "available_representations",
    "make_representation",
    "register_representation",
    # fault tolerance
    "Checkpoint",
    "RunControl",
    "RunReport",
    "install_signal_handlers",
    "load_checkpoint",
    "save_checkpoint",
    # errors
    "ReproError",
    "NetlistValidationError",
    "CheckpointError",
    "WorkerFailure",
]
