"""Experiment 1 (Tables 1-3): does congestion-aware floorplanning help?

Two floorplanners per circuit:

* **baseline** -- optimizes ``Area + Wirelength`` only (Table 1);
* **congestion-aware** -- adds the Irregular-Grid congestion term
  (Table 2, cost ``alpha*A + beta*WL + gamma*C``).

Both solutions are then scored by the fine-grid judging model; Table 3
reports the percentage improvements.  The paper's claim: judged
congestion drops substantially (2-20 %) for a small area/wirelength
penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.anneal import FloorplanObjective
from repro.congestion import IrregularGridModel
from repro.data import load_mcnc
from repro.experiments.config import (
    ExperimentProfile,
    active_profile,
    circuit_config,
)
from repro.experiments.runner import Aggregate, aggregate, run_seeds
from repro.experiments.tables import format_table
from repro.netlist import Netlist

__all__ = ["Experiment1Row", "run_experiment1", "format_experiment1"]

DEFAULT_CIRCUITS = ("apte", "xerox", "hp", "ami33", "ami49")


@dataclass(frozen=True)
class Experiment1Row:
    """Both floorplanners' aggregates for one circuit.

    ``baseline_judging``/``aware_judging`` keep the raw per-seed judged
    costs (aligned by seed) so the improvement can be reported with a
    paired bootstrap confidence interval instead of a bare mean.
    """

    circuit: str
    baseline: Aggregate
    congestion_aware: Aggregate
    baseline_judging: Tuple[float, ...] = field(default=(), compare=False)
    aware_judging: Tuple[float, ...] = field(default=(), compare=False)

    def judging_improvement_ci(self, confidence: float = 0.9):
        """Paired bootstrap CI of the absolute judged-congestion
        reduction (positive = the congestion term helped).  ``None``
        when per-seed data was not recorded."""
        if not self.baseline_judging or (
            len(self.baseline_judging) != len(self.aware_judging)
        ):
            return None
        from repro.experiments.statistics import paired_bootstrap_delta

        return paired_bootstrap_delta(
            list(self.baseline_judging),
            list(self.aware_judging),
            confidence=confidence,
        )

    # -- Table 3's improvement columns (positive = improvement) --------

    @property
    def avg_area_improvement_pct(self) -> float:
        return _improvement(
            self.baseline.avg_area_mm2, self.congestion_aware.avg_area_mm2
        )

    @property
    def avg_wirelength_improvement_pct(self) -> float:
        return _improvement(
            self.baseline.avg_wirelength_um,
            self.congestion_aware.avg_wirelength_um,
        )

    @property
    def avg_judging_improvement_pct(self) -> float:
        return _improvement(
            self.baseline.avg_judging_cost,
            self.congestion_aware.avg_judging_cost,
        )

    @property
    def best_area_improvement_pct(self) -> float:
        return _improvement(
            self.baseline.best.area_mm2, self.congestion_aware.best.area_mm2
        )

    @property
    def best_wirelength_improvement_pct(self) -> float:
        return _improvement(
            self.baseline.best.wirelength_um,
            self.congestion_aware.best.wirelength_um,
        )

    @property
    def best_judging_improvement_pct(self) -> float:
        return _improvement(
            self.baseline.best.judging_cost,
            self.congestion_aware.best.judging_cost,
        )


def _improvement(before: float, after: float) -> float:
    """Percentage reduction from ``before`` to ``after``."""
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before


def run_circuit(
    netlist: Netlist,
    ir_grid_size: float,
    judging_grid_size: float,
    profile: Optional[ExperimentProfile] = None,
    gamma: float = 1.0,
) -> Experiment1Row:
    """Run both floorplanners on one circuit."""
    profile = profile or active_profile()

    def baseline_objective() -> FloorplanObjective:
        return FloorplanObjective(
            netlist, alpha=1.0, beta=1.0, gamma=0.0, pin_grid_size=ir_grid_size
        )

    def aware_objective() -> FloorplanObjective:
        return FloorplanObjective(
            netlist,
            alpha=1.0,
            beta=1.0,
            gamma=gamma,
            congestion_model=IrregularGridModel(ir_grid_size),
        )

    base_records = run_seeds(
        netlist, baseline_objective, profile, judging_grid_size
    )
    aware_records = run_seeds(
        netlist, aware_objective, profile, judging_grid_size
    )
    return Experiment1Row(
        circuit=netlist.name,
        baseline=aggregate(base_records),
        congestion_aware=aggregate(aware_records),
        baseline_judging=tuple(r.judging_cost for r in base_records),
        aware_judging=tuple(r.judging_cost for r in aware_records),
    )


def run_experiment1(
    circuits: Sequence[str] = DEFAULT_CIRCUITS,
    profile: Optional[ExperimentProfile] = None,
    gamma: float = 1.0,
) -> Dict[str, Experiment1Row]:
    """Tables 1-3 over the requested circuits."""
    profile = profile or active_profile()
    rows: Dict[str, Experiment1Row] = {}
    for name in circuits:
        cfg = circuit_config(name)
        netlist = load_mcnc(name)
        rows[name] = run_circuit(
            netlist,
            ir_grid_size=cfg.ir_grid_size,
            judging_grid_size=cfg.judging_grid_size,
            profile=profile,
            gamma=gamma,
        )
    return rows


def format_experiment1(rows: Dict[str, Experiment1Row]) -> str:
    """Render Tables 1, 2 and 3 as text."""
    t1 = []
    t2 = []
    t3 = []
    for name, row in rows.items():
        b, c = row.baseline, row.congestion_aware
        t1.append(
            [
                name,
                b.avg_area_mm2,
                b.avg_wirelength_um,
                b.avg_runtime_seconds,
                b.avg_judging_cost,
                b.best.area_mm2,
                b.best.wirelength_um,
                b.best.judging_cost,
            ]
        )
        t2.append(
            [
                name,
                c.avg_area_mm2,
                c.avg_wirelength_um,
                c.avg_congestion_cost,
                c.avg_runtime_seconds,
                c.avg_judging_cost,
                c.best.area_mm2,
                c.best.wirelength_um,
                c.best.judging_cost,
            ]
        )
        t3.append(
            [
                name,
                row.avg_area_improvement_pct,
                row.avg_wirelength_improvement_pct,
                row.avg_judging_improvement_pct,
                row.best_area_improvement_pct,
                row.best_wirelength_improvement_pct,
                row.best_judging_improvement_pct,
            ]
        )
    part1 = format_table(
        [
            "circuit",
            "avg area mm2",
            "avg WL um",
            "avg time s",
            "avg judge cgt",
            "best area mm2",
            "best WL um",
            "best judge cgt",
        ],
        t1,
        title="Table 1: area+wirelength floorplanner",
    )
    part2 = format_table(
        [
            "circuit",
            "avg area mm2",
            "avg WL um",
            "avg IR cgt",
            "avg time s",
            "avg judge cgt",
            "best area mm2",
            "best WL um",
            "best judge cgt",
        ],
        t2,
        title="Table 2: + Irregular-Grid congestion term",
    )
    part3 = format_table(
        [
            "circuit",
            "avg area %",
            "avg WL %",
            "avg judge cgt %",
            "best area %",
            "best WL %",
            "best judge cgt %",
        ],
        t3,
        title="Table 3: improvement of Table 2 over Table 1 (positive = better)",
    )
    ci_lines = []
    for name, row in rows.items():
        ci = row.judging_improvement_ci()
        if ci is not None and len(row.baseline_judging) >= 2:
            ci_lines.append(
                f"  {name}: judged-congestion reduction {ci} "
                f"({'significant' if ci.excludes_zero() else 'within noise'})"
            )
    parts = [part1, part2, part3]
    if ci_lines:
        parts.append(
            "Paired bootstrap 90% CIs (absolute judged-cost reduction):\n"
            + "\n".join(ci_lines)
        )
    return "\n\n".join(parts)
