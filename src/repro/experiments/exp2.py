"""Experiment 2 (Figure 9): does the IR cost track real congestion?

A congestion-only annealer runs on one circuit; the locally-optimized
solution at each temperature step is extracted and judged by two
fixed-grid models -- the fine 10x10 um^2 judge and a coarse 50x50 one.
Three aligned series result:

* **curve A** -- the Irregular-Grid cost the annealer itself optimized;
* **curve B** -- the fine judge on the same snapshots;
* **curve C** -- the coarse judge on the same snapshots.

The paper's claim ("the slopes of curve A and B are more similar than
the slopes of curve A and C") is that the IR model behaves like a
*fine* fixed grid, not like a coarse one.  We quantify shape-tracking
with Spearman rank correlation, so the claim becomes
``corr(A, B) > corr(A, C)`` -- no manual 2.5x curve rescaling needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.anneal import FloorplanObjective
from repro.congestion import IrregularGridModel, JudgingModel
from repro.data import load_mcnc
from repro.experiments.config import (
    ExperimentProfile,
    active_profile,
    circuit_config,
)
from repro.experiments.runner import run_once
from repro.experiments.tables import format_table
from repro.floorplan import evaluate_polish
from repro.netlist import Netlist
from repro.routing.overflow import rank_correlation

__all__ = ["Experiment2Result", "run_experiment2", "format_experiment2"]


@dataclass(frozen=True)
class Experiment2Result:
    """The three aligned per-temperature-step series."""

    circuit: str
    ir_costs: List[float]  # curve A
    fine_judging_costs: List[float]  # curve B (10x10)
    coarse_judging_costs: List[float]  # curve C (50x50)

    @property
    def n_snapshots(self) -> int:
        return len(self.ir_costs)

    @property
    def corr_model_vs_fine(self) -> float:
        """corr(A, B): how much the IR cost behaves like the fine judge."""
        return rank_correlation(self.ir_costs, self.fine_judging_costs)

    @property
    def corr_model_vs_coarse(self) -> float:
        """corr(A, C): how much the IR cost behaves like the coarse judge."""
        return rank_correlation(self.ir_costs, self.coarse_judging_costs)

    @property
    def corr_coarse_vs_fine(self) -> float:
        """corr(C, B), reported for context."""
        return rank_correlation(
            self.coarse_judging_costs, self.fine_judging_costs
        )

    @property
    def model_tracks_better(self) -> bool:
        """The paper's Figure 9 conclusion: the IR cost resembles the
        fine judge more than it resembles the coarse judge."""
        return self.corr_model_vs_fine >= self.corr_model_vs_coarse


def run_experiment2(
    circuit: str = "ami33",
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    max_snapshots: int = 20,
    netlist: Optional[Netlist] = None,
    merge_factor: float = 2.0,
) -> Experiment2Result:
    """Run the congestion-only annealer and judge every snapshot.

    ``max_snapshots`` keeps the judged series to the paper's ~20 points
    by sampling the snapshot list evenly when the schedule is longer.
    ``merge_factor`` exposes the cut-line merge threshold: it sets the
    IR-grid's effective resolution and therefore which judging pitch
    the IR cost resembles (the F9-merge ablation sweeps it).
    """
    profile = profile or active_profile()
    cfg = circuit_config(circuit)
    netlist = netlist or load_mcnc(circuit)
    model = IrregularGridModel(cfg.ir_grid_size, merge_factor=merge_factor)
    objective = FloorplanObjective(
        netlist, alpha=0.0, beta=0.0, gamma=1.0, congestion_model=model
    )
    record = run_once(
        netlist,
        objective,
        seed=seed,
        profile=profile,
        judging_grid_size=cfg.judging_grid_size,
    )
    snapshots = record.result.snapshots
    if len(snapshots) > max_snapshots:
        stride = len(snapshots) / max_snapshots
        snapshots = [
            snapshots[int(i * stride)] for i in range(max_snapshots)
        ]
    modules = {m.name: m for m in netlist.modules}
    fine = JudgingModel(cfg.judging_grid_size)
    coarse = JudgingModel(cfg.coarse_judging_grid_size)
    ir_costs: List[float] = []
    fine_costs: List[float] = []
    coarse_costs: List[float] = []
    for snap in snapshots:
        floorplan = evaluate_polish(snap.state, modules)
        ir_costs.append(snap.breakdown.congestion)
        fine_costs.append(fine.judge(floorplan, netlist))
        coarse_costs.append(coarse.judge(floorplan, netlist))
    return Experiment2Result(
        circuit=circuit,
        ir_costs=ir_costs,
        fine_judging_costs=fine_costs,
        coarse_judging_costs=coarse_costs,
    )


def format_experiment2(result: Experiment2Result) -> str:
    """Render the three curves plus the tracking statistics."""
    rows = [
        [i + 1, a, b, c]
        for i, (a, b, c) in enumerate(
            zip(
                result.ir_costs,
                result.fine_judging_costs,
                result.coarse_judging_costs,
            )
        )
    ]
    table = format_table(
        ["step", "A: IR cost", "B: judge 10um", "C: judge 50um"],
        rows,
        title=f"Figure 9 series ({result.circuit})",
    )
    summary = (
        f"rank corr(A, B) = {result.corr_model_vs_fine:.3f}   "
        f"rank corr(A, C) = {result.corr_model_vs_coarse:.3f}   "
        f"rank corr(C, B) = {result.corr_coarse_vs_fine:.3f}   "
        f"IR tracks the fine judge better than the coarse one: "
        f"{result.model_tracks_better}"
    )
    return table + "\n" + summary
