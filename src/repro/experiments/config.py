"""Experiment effort profiles and per-circuit parameters.

The paper runs every experiment 20 times on a 2004-era CPU; doing that
inside a test/bench loop would take hours, so effort is profiled:

========  =======  ===============  ==================================
profile   seeds    anneal effort    intended use
========  =======  ===============  ==================================
smoke     2        ~15 temp steps   CI benches (default), seconds/run
quick     3        ~40 temp steps   local iteration, tens of seconds
paper     20       ~130 temp steps  full reproduction, hours
========  =======  ===============  ==================================

Select with ``REPRO_PROFILE=smoke|quick|paper``; override the seed
count alone with ``REPRO_SEEDS=<n>``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.anneal import GeometricSchedule

__all__ = [
    "ExperimentProfile",
    "CircuitConfig",
    "PROFILES",
    "active_profile",
    "circuit_config",
    "CIRCUITS",
]


@dataclass(frozen=True)
class ExperimentProfile:
    """Annealing effort and seed count for one reproduction tier."""

    name: str
    n_seeds: int
    moves_factor: int  # moves per temperature = moves_factor * n_modules
    cooling_rate: float
    freeze_ratio: float
    max_steps: int

    def schedule(self) -> GeometricSchedule:
        """The profile's cooling schedule."""
        return GeometricSchedule(
            cooling_rate=self.cooling_rate,
            freeze_ratio=self.freeze_ratio,
            max_steps=self.max_steps,
        )

    def moves_per_temperature(self, n_modules: int) -> int:
        """Move attempts per temperature step for a circuit of this size."""
        return max(1, self.moves_factor * n_modules)


PROFILES: Dict[str, ExperimentProfile] = {
    "smoke": ExperimentProfile(
        name="smoke",
        n_seeds=2,
        moves_factor=2,
        cooling_rate=0.75,
        freeze_ratio=2e-2,
        max_steps=15,
    ),
    "quick": ExperimentProfile(
        name="quick",
        n_seeds=3,
        moves_factor=4,
        cooling_rate=0.85,
        freeze_ratio=1e-3,
        max_steps=45,
    ),
    "paper": ExperimentProfile(
        name="paper",
        n_seeds=20,
        moves_factor=10,
        cooling_rate=0.9,
        freeze_ratio=1e-6,
        max_steps=200,
    ),
}


def active_profile() -> ExperimentProfile:
    """The profile selected by the environment (default ``smoke``)."""
    name = os.environ.get("REPRO_PROFILE", "smoke").lower()
    try:
        profile = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"REPRO_PROFILE={name!r} is not one of {sorted(PROFILES)}"
        )
    seeds_override = os.environ.get("REPRO_SEEDS")
    if seeds_override:
        profile = replace(profile, n_seeds=max(1, int(seeds_override)))
    return profile


@dataclass(frozen=True)
class CircuitConfig:
    """Per-circuit evaluation parameters (paper Table 2)."""

    name: str
    ir_grid_size: float  # unit-grid pitch for the IR model (um)
    judging_grid_size: float  # fine judging pitch (um)
    coarse_judging_grid_size: float  # Experiment 2's second judge (um)
    fixed_grid_sizes: Tuple[float, ...]  # Experiment 3 baselines (um)


CIRCUITS: Dict[str, CircuitConfig] = {
    # The paper uses 60x60 um^2 unit grids for apte (a physically large
    # chip) and 30x30 for the rest; judging is 10x10 everywhere, with
    # 50x50 as Experiment 2's coarse judge and 100x100/50x50 as
    # Experiment 3's fixed-grid baselines.
    "apte": CircuitConfig("apte", 60.0, 10.0, 50.0, (100.0, 50.0)),
    "xerox": CircuitConfig("xerox", 30.0, 10.0, 50.0, (100.0, 50.0)),
    "hp": CircuitConfig("hp", 30.0, 10.0, 50.0, (100.0, 50.0)),
    "ami33": CircuitConfig("ami33", 30.0, 10.0, 50.0, (100.0, 50.0)),
    "ami49": CircuitConfig("ami49", 30.0, 10.0, 50.0, (100.0, 50.0)),
}


def circuit_config(name: str) -> CircuitConfig:
    """The paper's evaluation parameters for one MCNC circuit."""
    try:
        return CIRCUITS[name.lower()]
    except KeyError:
        raise KeyError(f"no circuit config for {name!r}; have {sorted(CIRCUITS)}")
