"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Numbers are formatted compactly (6 significant digits); everything
    else via ``str``.  Raises on ragged rows -- a ragged table means an
    experiment produced a malformed record.
    """
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} fields, expected {len(headers)}"
            )
    rendered: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.4g}"
    return f"{value:.6g}"
