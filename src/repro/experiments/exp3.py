"""Experiment 3 (Tables 4-5): IR-grid vs fixed-grid, head to head.

Two congestion-only floorplanners on one circuit: one drives its
annealer with the Irregular-Grid model (Table 4), the other with the
fixed-size-grid model at coarser pitches (Table 5, paper: 100x100 and
50x50 um^2).  Reported per configuration: grid count, the model's own
cost, wall-clock time, and the fine judge's verdict on the final
floorplan.

The paper's claim: the IR model spends *less* time than the 50/100 um
fixed grids yet lands floorplans the judge scores *better* (2.3-3.5x
faster, 4.6-8.8 % lower judged congestion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.anneal import FloorplanObjective
from repro.congestion import FixedGridModel, IrregularGridModel
from repro.data import load_mcnc
from repro.experiments.config import (
    ExperimentProfile,
    active_profile,
    circuit_config,
)
from repro.experiments.runner import Aggregate, aggregate, run_seeds
from repro.experiments.tables import format_table
from repro.netlist import Netlist
from repro.pins import assign_pins

__all__ = ["Experiment3Row", "run_experiment3", "format_experiment3"]


@dataclass(frozen=True)
class Experiment3Row:
    """One congestion-only floorplanner configuration's results."""

    model_kind: str  # "irgrid" or "fixed"
    grid_size: float
    n_grids_avg: float
    aggregate: Aggregate


def _fixed_grid_count(model: FixedGridModel, record) -> int:
    n_cols, n_rows = model.grid_shape(record.floorplan.chip)
    return n_cols * n_rows


def run_experiment3(
    circuit: str = "ami33",
    profile: Optional[ExperimentProfile] = None,
    fixed_grid_sizes: Optional[Sequence[float]] = None,
    netlist: Optional[Netlist] = None,
) -> List[Experiment3Row]:
    """Run the IR configuration and every fixed-grid configuration."""
    profile = profile or active_profile()
    cfg = circuit_config(circuit)
    netlist = netlist or load_mcnc(circuit)
    fixed_grid_sizes = tuple(fixed_grid_sizes or cfg.fixed_grid_sizes)
    rows: List[Experiment3Row] = []

    # --- Irregular-Grid floorplanner (Table 4) -----------------------
    def ir_objective() -> FloorplanObjective:
        return FloorplanObjective(
            netlist,
            alpha=0.0,
            beta=0.0,
            gamma=1.0,
            congestion_model=IrregularGridModel(cfg.ir_grid_size),
        )

    ir_records = run_seeds(netlist, ir_objective, profile, cfg.judging_grid_size)
    ir_agg = aggregate(ir_records)
    rows.append(
        Experiment3Row(
            model_kind="irgrid",
            grid_size=cfg.ir_grid_size,
            n_grids_avg=ir_agg.avg_n_irgrids,
            aggregate=ir_agg,
        )
    )

    # --- Fixed-grid floorplanners (Table 5) ---------------------------
    for pitch in fixed_grid_sizes:
        def fixed_objective(pitch=pitch) -> FloorplanObjective:
            return FloorplanObjective(
                netlist,
                alpha=0.0,
                beta=0.0,
                gamma=1.0,
                congestion_model=FixedGridModel(pitch),
            )

        records = run_seeds(
            netlist, fixed_objective, profile, cfg.judging_grid_size
        )
        agg = aggregate(records)
        model = FixedGridModel(pitch)
        n_grids = sum(_fixed_grid_count(model, r) for r in records) / len(records)
        rows.append(
            Experiment3Row(
                model_kind="fixed",
                grid_size=pitch,
                n_grids_avg=n_grids,
                aggregate=agg,
            )
        )
    return rows


def format_experiment3(rows: Sequence[Experiment3Row], circuit: str = "ami33") -> str:
    """Render Tables 4-5 plus the speed/accuracy ratios."""
    body = []
    for row in rows:
        a = row.aggregate
        body.append(
            [
                row.model_kind,
                f"{row.grid_size:g}x{row.grid_size:g}",
                round(row.n_grids_avg, 1),
                a.avg_congestion_cost,
                a.avg_runtime_seconds,
                a.avg_judging_cost,
                a.best.congestion_cost,
                a.best.runtime_seconds,
                a.best.judging_cost,
            ]
        )
    table = format_table(
        [
            "model",
            "grid size um",
            "# grids avg",
            "avg cgt cost",
            "avg time s",
            "avg judge cgt",
            "best cgt cost",
            "best time s",
            "best judge cgt",
        ],
        body,
        title=f"Tables 4-5: congestion-only floorplanners ({circuit})",
    )
    ir = next(r for r in rows if r.model_kind == "irgrid")
    ratios = []
    for row in rows:
        if row.model_kind != "fixed":
            continue
        speedup = (
            row.aggregate.avg_runtime_seconds
            / max(ir.aggregate.avg_runtime_seconds, 1e-9)
        )
        judge_gain = 100.0 * (
            row.aggregate.avg_judging_cost - ir.aggregate.avg_judging_cost
        ) / max(row.aggregate.avg_judging_cost, 1e-12)
        ratios.append(
            f"vs fixed {row.grid_size:g}um: IR is {speedup:.2f}x faster, "
            f"judged congestion {judge_gain:+.2f}% better"
        )
    return table + "\n" + "\n".join(ratios)
