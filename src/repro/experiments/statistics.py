"""Uncertainty quantification for multi-seed experiment results.

The paper reports plain averages over 20 seeds with no error bars; when
comparing two floorplanner configurations whose means differ by a few
percent, that leaves the reader guessing.  This module provides the two
tools the tables need:

* :func:`bootstrap_ci` -- a percentile bootstrap confidence interval
  for the mean of a per-seed metric;
* :func:`paired_bootstrap_delta` -- a CI for the mean *paired*
  difference between two configurations run on the same seeds (pairing
  removes the dominant seed-to-seed variance, the right comparison for
  Table 3's improvement columns).

Deterministic given the ``seed`` argument, like everything else here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

__all__ = ["BootstrapCI", "bootstrap_ci", "paired_bootstrap_delta"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a bootstrap confidence interval."""

    mean: float
    lo: float
    hi: float
    confidence: float

    @property
    def halfwidth(self) -> float:
        return 0.5 * (self.hi - self.lo)

    def excludes_zero(self) -> bool:
        """Whether the interval lies strictly on one side of zero --
        the 'is this improvement real?' question for Table 3."""
        return self.lo > 0.0 or self.hi < 0.0

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} "
            f"[{self.lo:.4g}, {self.hi:.4g}] @{self.confidence:.0%}"
        )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted data."""
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.9,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile-bootstrap CI for the mean of ``values``."""
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    data = list(values)
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return BootstrapCI(mean, mean, mean, confidence)
    rng = random.Random(seed)
    means = []
    for _ in range(n_resamples):
        total = 0.0
        for _ in range(n):
            total += data[rng.randrange(n)]
        means.append(total / n)
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        mean=mean,
        lo=_percentile(means, alpha),
        hi=_percentile(means, 1.0 - alpha),
        confidence=confidence,
    )


def paired_bootstrap_delta(
    baseline: Sequence[float],
    treatment: Sequence[float],
    confidence: float = 0.9,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """CI for the mean of ``baseline[i] - treatment[i]``.

    Positive values mean the treatment *reduced* the metric -- matching
    Table 3's "improvement" sign convention.  Sequences must align by
    seed.
    """
    if len(baseline) != len(treatment):
        raise ValueError(
            f"paired comparison needs equal lengths, got "
            f"{len(baseline)} vs {len(treatment)}"
        )
    deltas = [b - t for b, t in zip(baseline, treatment)]
    return bootstrap_ci(deltas, confidence, n_resamples, seed)
