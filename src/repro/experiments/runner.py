"""Seeded experiment runs and their aggregation.

A :class:`RunRecord` captures everything one annealing run contributes
to a table row: the objective's raw terms, the model's own congestion
cost, the wall-clock time, and the post-hoc judging cost.  ``run_seeds``
repeats a configuration over seeds; ``aggregate`` produces the paper's
"average results" and "best results" halves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.anneal import FloorplanObjective
from repro.congestion import IrregularGridModel, JudgingModel
from repro.congestion.base import CongestionModel
from repro.engine import AnnealEngine, EngineResult
from repro.experiments.config import ExperimentProfile, active_profile
from repro.floorplan import Floorplan
from repro.netlist import Netlist
from repro.pins import assign_pins

__all__ = ["RunRecord", "run_once", "run_seeds", "aggregate", "judge_floorplan"]


@dataclass(frozen=True)
class RunRecord:
    """One annealing run's reportable results."""

    circuit: str
    seed: int
    cost: float
    area_um2: float
    wirelength_um: float
    congestion_cost: float
    n_irgrids: int
    runtime_seconds: float
    judging_cost: float
    floorplan: Floorplan
    result: EngineResult

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6


def judge_floorplan(
    floorplan: Floorplan, netlist: Netlist, judging_grid_size: float
) -> float:
    """Post-hoc fine-grid judging cost of one floorplan."""
    return JudgingModel(judging_grid_size).judge(floorplan, netlist)


def run_once(
    netlist: Netlist,
    objective: FloorplanObjective,
    seed: int,
    profile: Optional[ExperimentProfile] = None,
    judging_grid_size: float = 10.0,
    congestion_model: Optional[CongestionModel] = None,
    on_snapshot: Optional[Callable] = None,
    representation: str = "polish",
) -> RunRecord:
    """Anneal once and judge the result.

    ``congestion_model`` defaults to the objective's model; it is used
    only to (re)count IR-grids on the final floorplan for Table 4.
    ``representation`` selects the engine's floorplan representation
    (the paper's experiments use the default Polish expressions).
    """
    profile = profile or active_profile()
    engine = AnnealEngine(
        netlist,
        representation=representation,
        objective=objective,
        seed=seed,
        moves_per_temperature=profile.moves_per_temperature(netlist.n_modules),
        schedule=profile.schedule(),
    )
    start = time.perf_counter()
    result = engine.run(on_snapshot=on_snapshot)
    runtime = time.perf_counter() - start
    model = congestion_model or objective.congestion_model
    n_irgrids = 0
    if isinstance(model, IrregularGridModel):
        assignment = assign_pins(result.floorplan, netlist, model.grid_size)
        _, irgrid = model.evaluate_with_grid(
            result.floorplan.chip, assignment.two_pin_nets
        )
        n_irgrids = irgrid.n_cells
    judging_cost = judge_floorplan(result.floorplan, netlist, judging_grid_size)
    return RunRecord(
        circuit=netlist.name,
        seed=seed,
        cost=result.cost,
        area_um2=result.breakdown.area,
        wirelength_um=result.breakdown.wirelength,
        congestion_cost=result.breakdown.congestion,
        n_irgrids=n_irgrids,
        runtime_seconds=runtime,
        judging_cost=judging_cost,
        floorplan=result.floorplan,
        result=result,
    )


def run_seeds(
    netlist: Netlist,
    objective_factory: Callable[[], FloorplanObjective],
    profile: Optional[ExperimentProfile] = None,
    judging_grid_size: float = 10.0,
) -> List[RunRecord]:
    """Repeat a configuration across the profile's seeds.

    ``objective_factory`` builds a fresh objective per seed so no
    normalization state leaks between runs.
    """
    profile = profile or active_profile()
    records = []
    for seed in range(profile.n_seeds):
        records.append(
            run_once(
                netlist,
                objective_factory(),
                seed=seed,
                profile=profile,
                judging_grid_size=judging_grid_size,
            )
        )
    return records


@dataclass(frozen=True)
class Aggregate:
    """The paper's average/best halves of one table row."""

    avg_area_mm2: float
    avg_wirelength_um: float
    avg_congestion_cost: float
    avg_n_irgrids: float
    avg_runtime_seconds: float
    avg_judging_cost: float
    best: RunRecord


def aggregate(records: Sequence[RunRecord]) -> Aggregate:
    """Average over seeds; "best" is the lowest-cost run (the measure
    the paper says results are selected by)."""
    if not records:
        raise ValueError("cannot aggregate zero runs")
    n = len(records)
    best = min(records, key=lambda r: r.cost)
    return Aggregate(
        avg_area_mm2=sum(r.area_mm2 for r in records) / n,
        avg_wirelength_um=sum(r.wirelength_um for r in records) / n,
        avg_congestion_cost=sum(r.congestion_cost for r in records) / n,
        avg_n_irgrids=sum(r.n_irgrids for r in records) / n,
        avg_runtime_seconds=sum(r.runtime_seconds for r in records) / n,
        avg_judging_cost=sum(r.judging_cost for r in records) / n,
        best=best,
    )
