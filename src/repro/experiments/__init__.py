"""Experiment harness reproducing the paper's evaluation (Section 5).

* :mod:`repro.experiments.config` -- effort profiles (smoke / quick /
  paper) and per-circuit parameters, overridable via environment
  variables so benches stay fast by default;
* :mod:`repro.experiments.runner` -- seeded single runs and multi-seed
  aggregation;
* :mod:`repro.experiments.exp1` -- Tables 1-3 (congestion-aware vs
  area/wirelength-only floorplanning);
* :mod:`repro.experiments.exp2` -- Figure 9 (model-vs-judge tracking
  across annealing snapshots);
* :mod:`repro.experiments.exp3` -- Tables 4-5 (IR-grid vs fixed-grid,
  congestion-only optimization);
* :mod:`repro.experiments.figures` -- Figure 8 (approximation accuracy)
  and the Figure 3/4 motivation examples;
* :mod:`repro.experiments.tables` -- plain-text table formatting.
"""

from repro.experiments.config import (
    PROFILES,
    CircuitConfig,
    ExperimentProfile,
    active_profile,
    circuit_config,
)
from repro.experiments.runner import RunRecord, aggregate, run_once, run_seeds
from repro.experiments.statistics import (
    BootstrapCI,
    bootstrap_ci,
    paired_bootstrap_delta,
)
from repro.experiments.tables import format_table

__all__ = [
    "PROFILES",
    "CircuitConfig",
    "ExperimentProfile",
    "active_profile",
    "circuit_config",
    "RunRecord",
    "aggregate",
    "run_once",
    "run_seeds",
    "format_table",
    "BootstrapCI",
    "bootstrap_ci",
    "paired_bootstrap_delta",
]
