"""Figure 8 and Figures 3-4 data generation.

* **Figure 8** plots the exact Function (1) against its normal
  approximation along the top boundary of an IR-grid inside a 31x21
  type-I routing range: panel (b) for the well-behaved IR-grid
  (x = 10..20, top row y2 = 15) and panel (d) for the IR-grid touching
  the range's corner, where the approximation has no value at the error
  grid x = 30 (Section 4.5).

* **Figures 3-4** are the motivation examples: the same handful of nets
  evaluated on fixed grids of different pitches produce visibly
  different congestion pictures, and most fine-grid cells carry at most
  one net -- wasted work the Irregular-Grid avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.congestion import FixedGridModel
from repro.congestion.approx import (
    ApproximationDomainError,
    approx_function1_pointwise,
    exact_function1_pointwise,
)
from repro.geometry import Point, Rect
from repro.netlist import TwoPinNet

__all__ = [
    "Figure8Point",
    "figure8_series",
    "figure8_default_cases",
    "GridSensitivityResult",
    "grid_sensitivity",
    "motivation_nets",
]


@dataclass(frozen=True)
class Figure8Point:
    """One x-sample of the exact-vs-approximate comparison."""

    x: int
    exact: float
    approx: Optional[float]  # None where the approximation is invalid

    @property
    def deviation(self) -> Optional[float]:
        if self.approx is None:
            return None
        return abs(self.approx - self.exact)


def figure8_series(
    g1: int, g2: int, y2: int, x_values: Sequence[int]
) -> List[Figure8Point]:
    """Exact and approximate Function (1) at the requested columns."""
    points = []
    for x in x_values:
        exact = exact_function1_pointwise(x, g1, g2, y2)
        try:
            approx = approx_function1_pointwise(x, g1, g2, y2)
        except ApproximationDomainError:
            approx = None
        points.append(Figure8Point(x=x, exact=exact, approx=approx))
    return points


def figure8_default_cases() -> Tuple[List[Figure8Point], List[Figure8Point]]:
    """The paper's two panels: (b) x = 10..20 at y2 = 15, and (d)
    x = 20..30 at y2 = 19 where x = 30 is an error grid."""
    case_b = figure8_series(31, 21, 15, list(range(10, 21)))
    case_d = figure8_series(31, 21, 19, list(range(20, 31)))
    return case_b, case_d


@dataclass(frozen=True)
class GridSensitivityResult:
    """Fixed-grid congestion statistics at one pitch (Figures 3-4)."""

    n_cols: int
    n_rows: int
    score: float
    max_mass: float
    single_net_cell_fraction: float  # cells crossed by <= 1 unit of mass


def grid_sensitivity(
    chip: Rect,
    nets: Sequence[TwoPinNet],
    grid_shape: Tuple[int, int],
) -> GridSensitivityResult:
    """Evaluate the fixed-grid model with an exact (cols, rows) split.

    The pitch is derived from the requested shape (the paper's 4x4 vs
    6x6 and 6x4 vs 12x8 cuts); non-square cells are emulated by scoring
    columns and rows at their own pitches via the model's mass array.
    """
    n_cols, n_rows = grid_shape
    if n_cols < 1 or n_rows < 1:
        raise ValueError(f"grid shape must be positive, got {grid_shape}")
    # FixedGridModel uses a single square pitch; pick the column pitch
    # and let the row count follow, then verify it matches the request
    # when the caller asked for a square split.
    pitch = chip.width / n_cols
    model = FixedGridModel(pitch)
    grid = model.evaluate_array(chip, nets)
    score = model.score_array(grid)
    total_cells = grid.size
    single = float((grid <= 1.0 + 1e-12).sum()) / total_cells
    return GridSensitivityResult(
        n_cols=grid.shape[0],
        n_rows=grid.shape[1],
        score=score,
        max_mass=float(grid.max()),
        single_net_cell_fraction=single,
    )


def motivation_nets(case: str = "figure4") -> Tuple[Rect, List[TwoPinNet]]:
    """The didactic net sets of the motivation figures.

    ``"figure3"``: five routing regions spread over the chip;
    ``"figure4"``: six nets concentrated on the right half, the
    configuration whose congestion a coarse uniform grid misjudges.
    """
    chip = Rect(0.0, 0.0, 1200.0, 800.0)
    if case == "figure3":
        nets = [
            TwoPinNet("f3_n0", Point(100, 100), Point(500, 400)),
            TwoPinNet("f3_n1", Point(300, 200), Point(700, 600)),
            TwoPinNet("f3_n2", Point(600, 100), Point(1000, 500)),
            TwoPinNet("f3_n3", Point(200, 500), Point(600, 700)),
            TwoPinNet("f3_n4", Point(800, 300), Point(1100, 700)),
        ]
    elif case == "figure4":
        nets = [
            TwoPinNet("f4_n0", Point(650, 100), Point(1150, 700)),
            TwoPinNet("f4_n1", Point(700, 200), Point(1100, 600)),
            TwoPinNet("f4_n2", Point(750, 150), Point(1050, 550)),
            TwoPinNet("f4_n3", Point(800, 300), Point(1150, 650)),
            TwoPinNet("f4_n4", Point(700, 400), Point(1000, 700)),
            TwoPinNet("f4_n5", Point(100, 600), Point(400, 150)),
        ]
    else:
        raise ValueError(f"unknown motivation case {case!r}")
    return chip, nets
