"""Loop-form compute kernels behind the compiled backend.

Every function here is written as plain scalar-loop Python over numpy
arrays -- exactly the shape numba's ``@njit`` compiles to native code.
When numba is importable the decorators below compile each kernel
(``cache=True`` so the machine code persists across processes,
``nogil=True`` so parallel annealing chains can run kernels
concurrently); when it is not, the same functions run interpreted, so
the kernel *semantics* are testable on any machine.  The ``"python"``
backend registers the functions in whichever form this module loaded
them -- that is the whole point: one source of truth for the compiled
path's arithmetic.

Parity contract: each kernel replicates its numpy twin
operation-for-operation --

* :func:`mass_probabilities` mirrors the batched Theorem-1 evaluation
  in :mod:`repro.congestion.batched` (``flat_probabilities``): the same
  ``rint`` span snapping, type-II vertical mirror, pin rule, Simpson
  node weights and accumulation order, the same two-endpoint ``|z| > 8``
  band filter, and the same exact Formula-3 fallback (evaluated in the
  canonical frame, see :func:`exact_cell_probability`);
* :func:`mst_fill` mirrors
  :func:`repro.netlist.decompose.batched_mst_edges` including its
  first-minimum tie-breaking, so the edge lists are bit-identical;
* :func:`weighted_wirelength` is the plain sequential reduction of the
  vectorized wirelength.

Scalar ``math.exp`` / vectorized ``np.exp`` may disagree in the last
ulp, so cross-backend values agree to ~1e-15 relative, well inside the
backend registry's <= 1e-12 parity contract (the within-backend
delta-vs-full strict check is unaffected: each backend is internally
deterministic).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "mass_probabilities",
    "exact_cell_probability",
    "mst_fill",
    "scatter_accumulate",
    "weighted_wirelength",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True

    def _jit(fn):
        return _njit(cache=True, nogil=True)(fn)

except ImportError:  # pragma: no cover - the interpreted fallback

    HAVE_NUMBA = False

    def _jit(fn):
        return fn


@_jit
def _log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` exactly as :func:`repro.mathutils.log_binomial`:
    ``-inf`` for zero coefficients, ``lgamma`` otherwise."""
    if n < 0 or k < 0 or k > n:
        return -math.inf
    if k == 0 or k == n:
        return 0.0
    return math.lgamma(n + 1.0) - math.lgamma(k + 1.0) - math.lgamma(n - k + 1.0)


@_jit
def exact_cell_probability(
    g1: int, g2: int, x1: int, x2: int, y1: int, y2: int
) -> float:
    """Formula 3 in the canonical frame (scalar fallback cells).

    Inputs are *type-I-frame* spans (type II nets are mirrored before
    calling, exactly like the batched numpy path); the transpose
    symmetry ``P(g1, g2, x, y) == P(g2, g1, y, x)`` is then applied to
    put the arguments in canonical order -- the same canonicalization
    the numpy path's memoized fallback uses, so both paths evaluate
    the identical boundary sums.
    """
    if g2 < g1 or (g2 == g1 and (y1 < x1 or (y1 == x1 and y2 < x2))):
        g1, g2 = g2, g1
        x1, x2, y1, y2 = y1, y2, x1, x2
    log_total = _log_binomial(g1 + g2 - 2, g2 - 1)
    acc = 0.0
    if y2 + 1 < g2:
        # Routes leaving through the top boundary: (x, y2) -> (x, y2+1).
        for x in range(x1, x2 + 1):
            log_ta = _log_binomial(x + y2, y2)
            log_tb = _log_binomial((g1 - 1 - x) + (g2 - 2 - y2), g2 - 2 - y2)
            if log_ta > -math.inf and log_tb > -math.inf:
                acc += math.exp(log_ta + log_tb - log_total)
    if x2 + 1 < g1:
        # Routes leaving through the right boundary: (x2, y) -> (x2+1, y).
        for y in range(y1, y2 + 1):
            log_ta = _log_binomial(x2 + y, y)
            log_tb = _log_binomial((g1 - 2 - x2) + (g2 - 1 - y), g2 - 1 - y)
            if log_ta > -math.inf and log_tb > -math.inf:
                acc += math.exp(log_ta + log_tb - log_total)
    if y2 + 1 >= g2 and x2 + 1 >= g1:
        # Flush with both far edges: routes terminating at the pin.
        acc += math.exp(
            _log_binomial(x2 + y2, y2)
            + _log_binomial((g1 - 1 - x2) + (g2 - 1 - y2), g2 - 1 - y2)
            - log_total
        )
    return min(max(acc, 0.0), 1.0)


@_jit
def _simpson_boundary(
    lo: float,
    hi: float,
    offset: float,
    count_par: float,
    spread_par: float,
    big_r: float,
    denom: float,
    panels: int,
) -> float:
    """One boundary integral of Theorem 1 for a single cell.

    Returns the integral contribution, or ``nan`` when any Simpson node
    leaves the approximation's domain (the caller reroutes the cell to
    the exact fallback).  The two-endpoint ``|z| > 8`` pre-pass skips
    cells far outside the route-mass band -- identical to the batched
    numpy kernel's band filter.
    """
    scale = spread_par / (big_r - 1.0)
    # Endpoint pre-pass: z has constant sign across the cell.
    z_lo = 0.0
    z_hi = 0.0
    both_good = True
    for e in range(2):
        x = lo if e == 0 else hi
        p = (x + offset) / big_r
        good = 0.0 < p < 1.0
        var = scale * count_par * p * (1.0 - p)
        good = good and var > 0.0
        if not good:
            both_good = False
            break
        z = (x - count_par * p) / math.sqrt(var)
        if e == 0:
            z_lo = z
        else:
            z_hi = z
    if both_good and (
        (z_lo > 8.0 and z_hi > 8.0) or (z_lo < -8.0 and z_hi < -8.0)
    ):
        return 0.0
    h = (hi - lo) / panels
    s = 0.0
    bad = False
    for k in range(panels + 1):
        x = lo + h * k
        p = (x + offset) / big_r
        ok = 0.0 < p < 1.0
        var = scale * count_par * p * (1.0 - p)
        if ok and var > 0.0:
            safe = var
            z = (x - count_par * p) / math.sqrt(safe)
            dens = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi * safe)
        else:
            dens = 0.0
            bad = True
        if k == 0 or k == panels:
            w = 1.0
        elif k % 2 == 1:
            w = 4.0
        else:
            w = 2.0
        s += dens * w
    if bad:
        return math.nan
    other = denom - count_par
    return (other / denom) * s * h / 3.0


@_jit
def mass_probabilities(
    g1: np.ndarray,
    g2: np.ndarray,
    two: np.ndarray,
    sx_lo: np.ndarray,
    sy_lo: np.ndarray,
    x_unit: np.ndarray,
    y_unit: np.ndarray,
    col_lo: np.ndarray,
    col_hi: np.ndarray,
    row_lo: np.ndarray,
    row_hi: np.ndarray,
    x_lines: np.ndarray,
    y_lines: np.ndarray,
    offsets: np.ndarray,
    panels: int,
    half: float,
    prob: np.ndarray,
) -> None:
    """Crossing probability of every covered cell of every net, in one
    call.

    CSR layout: net ``t``'s cells occupy ``prob[offsets[t]:]`` in the
    batched kernel's flat order (column-fastest per net).  All inputs
    are per-net except the global cut-line arrays, ``panels``, and the
    integration-bound ``half``; spans are recomputed from the cut lines
    per cell exactly like the numpy path, so the output vector is the
    drop-in replacement for ``flat_probabilities``.
    """
    n = len(g1)
    for t in range(n):
        nc = col_hi[t] - col_lo[t] + 1
        nr = row_hi[t] - row_lo[t] + 1
        gg1 = float(g1[t])
        gg2 = float(g2[t])
        thin = g1[t] < 3 or g2[t] < 3
        base_x = sx_lo[t]
        base_y = sy_lo[t]
        ux = x_unit[t]
        uy = y_unit[t]
        is_two = two[t]
        big_r = gg1 + gg2 - 3.0
        denom = gg1 + gg2 - 2.0
        pos = offsets[t]
        for r in range(nr):
            row = row_lo[t] + r
            y1 = np.rint((y_lines[row] - base_y) / uy)
            y2 = np.rint((y_lines[row + 1] - base_y) / uy) - 1.0
            y1 = min(max(y1, 0.0), gg2 - 1.0)
            y2 = min(max(max(y2, y1), 0.0), gg2 - 1.0)
            if is_two:
                # Vertical mirror: type II becomes type I.
                y1m = gg2 - 1.0 - y2
                y2m = gg2 - 1.0 - y1
                y1 = y1m
                y2 = y2m
            first_r = r == 0
            last_r = r == nr - 1
            for c in range(nc):
                col = col_lo[t] + c
                x1 = np.rint((x_lines[col] - base_x) / ux)
                x2 = np.rint((x_lines[col + 1] - base_x) / ux) - 1.0
                x1 = min(max(x1, 0.0), gg1 - 1.0)
                x2 = min(max(max(x2, x1), 0.0), gg1 - 1.0)
                first_c = c == 0
                last_c = c == nc - 1
                if is_two:
                    pin = (last_c and first_r) or (first_c and last_r)
                else:
                    pin = (first_c and first_r) or (last_c and last_r)
                if pin:
                    prob[pos] = 1.0
                    pos += 1
                    continue
                if thin:
                    prob[pos] = exact_cell_probability(
                        int(gg1), int(gg2), int(x1), int(x2), int(y1), int(y2)
                    )
                    pos += 1
                    continue
                p_acc = 0.0
                invalid = False
                if y2 + 1.0 < gg2:
                    # Top-boundary exits: Q = x + y2.
                    top = _simpson_boundary(
                        x1 - half, x2 + half, y2,
                        gg1 - 1.0, gg2 - 2.0, big_r, denom, panels,
                    )
                    if math.isnan(top):
                        invalid = True
                    else:
                        p_acc += top
                if x2 + 1.0 < gg1:
                    # Right-boundary exits: Q = y + x2.
                    right = _simpson_boundary(
                        y1 - half, y2 + half, x2,
                        gg2 - 1.0, gg1 - 2.0, big_r, denom, panels,
                    )
                    if math.isnan(right):
                        invalid = True
                    else:
                        p_acc += right
                if y2 + 1.0 >= gg2 and x2 + 1.0 >= gg1:
                    # Flush with both far edges but not a pin cell.
                    invalid = True
                if not math.isfinite(p_acc):
                    p_acc = 0.0
                    invalid = True
                if invalid:
                    p_acc = exact_cell_probability(
                        int(gg1), int(gg2), int(x1), int(x2), int(y1), int(y2)
                    )
                else:
                    p_acc = min(max(p_acc, 0.0), 1.0)
                prob[pos] = p_acc
                pos += 1


@_jit
def mst_fill(
    xs: np.ndarray,
    ys: np.ndarray,
    out_i: np.ndarray,
    out_j: np.ndarray,
) -> None:
    """Prim MSTs of many same-size point sets (loop form).

    Same contract as :func:`repro.netlist.decompose.batched_mst_edges`:
    ``xs`` / ``ys`` are ``(m, k)``, edges come out in tree-growth order
    with ``i < j``, distance ties break on the first minimum (the scan
    order the scalar reference uses), so the edge lists are
    bit-identical to the numpy twin's.
    """
    m, k = xs.shape
    for row in range(m):
        in_tree = np.zeros(k, dtype=np.bool_)
        best_dist = np.empty(k)
        best_from = np.zeros(k, dtype=np.int64)
        in_tree[0] = True
        for j in range(k):
            best_dist[j] = abs(xs[row, 0] - xs[row, j]) + abs(
                ys[row, 0] - ys[row, j]
            )
        for t in range(k - 1):
            nxt = -1
            nxt_d = math.inf
            for j in range(k):
                if not in_tree[j] and best_dist[j] < nxt_d:
                    nxt = j
                    nxt_d = best_dist[j]
            a = best_from[nxt]
            out_i[row, t] = min(a, nxt)
            out_j[row, t] = max(a, nxt)
            in_tree[nxt] = True
            for j in range(k):
                if not in_tree[j]:
                    d = abs(xs[row, nxt] - xs[row, j]) + abs(
                        ys[row, nxt] - ys[row, j]
                    )
                    if d < best_dist[j]:
                        best_dist[j] = d
                        best_from[j] = nxt


@_jit
def scatter_accumulate(
    index: np.ndarray,
    values: np.ndarray,
    out: np.ndarray,
) -> None:
    """``out[index[i]] += values[i]`` in input order (loop form).

    The pin-scatter primitive the roadmap's kernel gap asked for: the
    congestion ledger's delta path and any flat CSR accumulation
    dispatch through this instead of ``np.add.at`` when the backend
    carries a compiled form.  Sequential input-order accumulation --
    exactly ``np.add.at``'s semantics -- so the two forms agree
    bit-for-bit on identical inputs.
    """
    for i in range(len(index)):
        out[index[i]] += values[i]


@_jit
def weighted_wirelength(
    weights: np.ndarray,
    p1x: np.ndarray,
    p1y: np.ndarray,
    p2x: np.ndarray,
    p2y: np.ndarray,
) -> float:
    """Weighted Manhattan length of every placed edge (sequential sum;
    agrees with the numpy pairwise reduction to float-summation dust)."""
    total = 0.0
    for i in range(len(weights)):
        total += weights[i] * (
            abs(p2x[i] - p1x[i]) + abs(p2y[i] - p1y[i])
        )
    return total
