"""Compute backends for the annealing hot path.

The congestion evaluator and the evaluation pipeline's MST/wirelength
stage each have two implementations: the vectorized numpy reference and
loop-form kernels (:mod:`repro.backend.kernels`) that numba compiles to
native code when installed.  A :class:`KernelBackend` selects between
them per engine; see :mod:`repro.backend.registry` for the registry and
the parity contract, and DESIGN.md §11 for the full design.

Built-in backends:

``numpy``
    The default.  Pure vectorized numpy; no extra dependencies.
``numba``
    Compiled kernels (``@njit(cache=True, nogil=True)``).  Requires the
    ``[fast]`` extra; falls back to numpy with a ``RuntimeWarning``
    when numba is missing.
``python``
    The same kernel functions without requiring numba (interpreted when
    numba is absent).  Slow, but exercises the exact compiled-path
    arithmetic anywhere -- the parity suite runs on it.
"""

from __future__ import annotations

from repro.backend.registry import (
    KernelBackend,
    available_backends,
    backend_descriptions,
    make_backend,
    register_backend,
)
from repro.backend.numpy_backend import make_numpy_backend
from repro.backend.numba_backend import (
    make_numba_backend,
    make_python_backend,
)

__all__ = [
    "KernelBackend",
    "available_backends",
    "backend_descriptions",
    "make_backend",
    "register_backend",
]

register_backend(
    "numpy",
    make_numpy_backend,
    "vectorized numpy reference kernels (default, no extra deps)",
)
register_backend(
    "numba",
    make_numba_backend,
    "numba-compiled loop kernels; falls back to numpy when missing",
)
register_backend(
    "python",
    make_python_backend,
    "interpreted loop-form kernels (compiled-path arithmetic, slow)",
)
