"""The compiled backends: loop kernels, numba-jitted when available.

Two registry entries share this module:

* ``"numba"`` -- requires numba.  When numba is not importable the
  factory warns and returns the numpy backend (``requested`` keeps the
  original ask so benchmarks can report the substitution honestly).
* ``"python"`` -- the same kernel functions in whatever form
  :mod:`repro.backend.kernels` loaded them: jitted under numba,
  interpreted otherwise.  Always usable; this is how the parity suite
  exercises the kernel arithmetic on machines without numba.

Both run the warm-up pass at construction, so compile-on-first-use can
never land inside a timed phase; the elapsed time is surfaced on
``KernelBackend.jit_seconds`` and recorded by the objective under the
``jit_compile_seconds`` perf timer.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.backend import kernels
from repro.backend.kernels import HAVE_NUMBA
from repro.backend.registry import KernelBackend
from repro.backend.numpy_backend import make_numpy_backend


def _warm_up() -> float:
    """Run every kernel once on tiny inputs and return elapsed seconds.

    Under numba the first call triggers (or loads the on-disk cache of)
    the JIT compile; interpreted, this costs microseconds.  The inputs
    are fixed, so warm-up is deterministic and its cost is attributable.
    """
    t0 = time.perf_counter()
    prob = np.zeros(4)
    kernels.mass_probabilities(
        np.array([4], dtype=np.int64),
        np.array([4], dtype=np.int64),
        np.array([False]),
        np.array([0.0]),
        np.array([0.0]),
        np.array([1.0]),
        np.array([1.0]),
        np.array([0], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([0.0, 2.0, 4.0]),
        np.array([0.0, 2.0, 4.0]),
        np.array([0], dtype=np.int64),
        8,
        0.5,
        prob,
    )
    kernels.exact_cell_probability(4, 4, 0, 1, 0, 1)
    out_i = np.empty((1, 2), dtype=np.int64)
    out_j = np.empty((1, 2), dtype=np.int64)
    kernels.mst_fill(
        np.array([[0.0, 3.0, 1.0]]),
        np.array([[0.0, 0.0, 2.0]]),
        out_i,
        out_j,
    )
    kernels.weighted_wirelength(
        np.array([1.0]),
        np.array([0.0]),
        np.array([0.0]),
        np.array([3.0]),
        np.array([4.0]),
    )
    kernels.scatter_accumulate(
        np.array([0, 1, 0], dtype=np.int64),
        np.array([1.0, 2.0, 3.0]),
        np.zeros(2),
    )
    return time.perf_counter() - t0


def _make_kernel_backend(name: str, compiled: bool) -> KernelBackend:
    jit_seconds = _warm_up()
    return KernelBackend(
        name=name,
        requested=name,
        compiled=compiled,
        mass_kernel=kernels.mass_probabilities,
        mst_kernel=kernels.mst_fill,
        wirelength_kernel=kernels.weighted_wirelength,
        scatter_kernel=kernels.scatter_accumulate,
        jit_seconds=jit_seconds,
    )


def make_numba_backend() -> KernelBackend:
    if not HAVE_NUMBA:
        warnings.warn(
            "numba is not installed; backend 'numba' falls back to the "
            "numpy backend (install the [fast] extra for compiled "
            "kernels)",
            RuntimeWarning,
            stacklevel=3,
        )
        return make_numpy_backend(requested="numba")
    return _make_kernel_backend("numba", compiled=True)


def make_python_backend() -> KernelBackend:
    return _make_kernel_backend("python", compiled=HAVE_NUMBA)
