"""The compute-backend registry.

Mirrors the representation registry in
:mod:`repro.engine.representation`: string names map to factories, each
factory builds a :class:`KernelBackend` -- a small bundle of (possibly
compiled) kernel entry points that the congestion evaluator and the
evaluation pipeline dispatch through.  ``None`` kernel slots mean "use
the vectorized numpy path"; the numpy backend is all-``None`` and is
the semantics reference.

Parity contract: for identical inputs, a kernel backend's congestion
terms and wirelengths agree with the numpy backend's to <= 1e-12
relative, and its MST edge lists are bit-identical.  Each backend is
individually deterministic, so PR 1's strict delta-vs-full guarantee
(1e-12) holds unchanged under any backend.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = [
    "KernelBackend",
    "register_backend",
    "available_backends",
    "backend_descriptions",
    "make_backend",
]


class KernelBackend:
    """One compute backend: named kernel entry points plus provenance.

    Attributes
    ----------
    name:
        The backend actually in effect (``"numpy"`` after a fallback).
    requested:
        The name originally asked for; differs from ``name`` only when
        the ``"numba"`` factory fell back because numba is missing.
    compiled:
        True when the kernels are numba-compiled machine code.
    mass_kernel / mst_kernel / wirelength_kernel / scatter_kernel:
        Kernel callables, or ``None`` to use the numpy code path
        (``scatter_kernel``'s numpy twin is ``np.add.at``).
    jit_seconds:
        Wall-clock seconds the construction-time warm-up took
        (compilation cost under numba); excluded from timed phases.
    """

    __slots__ = (
        "name",
        "requested",
        "compiled",
        "mass_kernel",
        "mst_kernel",
        "wirelength_kernel",
        "scatter_kernel",
        "jit_seconds",
    )

    def __init__(
        self,
        name: str,
        requested: str,
        compiled: bool,
        mass_kernel: Optional[Callable] = None,
        mst_kernel: Optional[Callable] = None,
        wirelength_kernel: Optional[Callable] = None,
        scatter_kernel: Optional[Callable] = None,
        jit_seconds: float = 0.0,
    ):
        self.name = name
        self.requested = requested
        self.compiled = compiled
        self.mass_kernel = mass_kernel
        self.mst_kernel = mst_kernel
        self.wirelength_kernel = wirelength_kernel
        self.scatter_kernel = scatter_kernel
        self.jit_seconds = jit_seconds

    def __repr__(self) -> str:
        return (
            f"KernelBackend(name={self.name!r}, requested={self.requested!r}, "
            f"compiled={self.compiled})"
        )


_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_backend(
    name: str, factory: Callable[[], KernelBackend], description: str = ""
) -> None:
    """Register a backend factory under ``name``.

    ``description`` is the one-line summary ``--list-backends`` prints.
    Raises ``ValueError`` on duplicates -- a silent overwrite would let
    one import order shadow another's backend.
    """
    if name in _FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _DESCRIPTIONS[name] = description


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_FACTORIES)


def backend_descriptions() -> Dict[str, str]:
    """``name -> one-line description`` for every registered backend,
    in sorted name order."""
    return {name: _DESCRIPTIONS.get(name, "") for name in sorted(_FACTORIES)}


def make_backend(name) -> KernelBackend:
    """Build the named backend (pass-through for built instances).

    ``None`` means the default numpy backend.  A :class:`KernelBackend`
    passes through unchanged, so plumbing can accept "name or instance"
    without double construction (and without re-paying JIT warm-up).
    """
    if name is None:
        name = "numpy"
    if isinstance(name, KernelBackend):
        return name
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return factory()
