"""The reference numpy backend: no kernels, vectorized code paths.

A backend with every kernel slot set to ``None`` tells each dispatch
site (:mod:`repro.congestion.batched`, the pipeline's ``MstStage``) to
keep using its existing vectorized numpy implementation.  This is the
default and the semantics reference the compiled backend is held to.
"""

from __future__ import annotations

from repro.backend.registry import KernelBackend


def make_numpy_backend(requested: str = "numpy") -> KernelBackend:
    return KernelBackend(
        name="numpy",
        requested=requested,
        compiled=False,
        mass_kernel=None,
        mst_kernel=None,
        wirelength_kernel=None,
        scatter_kernel=None,
    )
