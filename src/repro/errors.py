"""The package-wide exception taxonomy.

Long annealing runs fail for reasons a caller wants to distinguish and
handle: bad input (fix the netlist), a corrupt or mismatched checkpoint
(pick another file), a worker that died under supervision (inspect the
run report).  Each failure class gets a dedicated exception here, all
rooted at :class:`ReproError` so ``except ReproError`` catches every
library-originated failure without swallowing genuine bugs.

The module imports nothing from the rest of the package, so any layer
-- :mod:`repro.netlist` at the bottom, :mod:`repro.engine` at the top
-- can raise these without import cycles.

Compatibility: the classes double-inherit from the builtin exceptions
historically raised at the same sites (``ValueError`` for validation,
``RuntimeError`` for operational failures), so pre-existing
``except ValueError`` call sites keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetlistValidationError",
    "CheckpointError",
    "WorkerFailure",
    "ServiceError",
    "JobValidationError",
    "QuotaExceeded",
    "JobNotFound",
]


class ReproError(Exception):
    """Base class of every failure the library raises on purpose."""


class NetlistValidationError(ReproError, ValueError):
    """A circuit failed construction-time validation.

    Raised by :class:`~repro.netlist.netlist.Netlist` and its parts for
    duplicate module/net names, non-positive module dimensions, nets
    referencing unknown modules, and nets with fewer than two pins.
    The message always names the offending module or net.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint could not be written, read, or applied.

    Covers missing/corrupt/truncated checkpoint files, format-version
    mismatches, and resuming against a netlist or objective that does
    not reproduce the checkpointed cost.
    """


class WorkerFailure(ReproError, RuntimeError):
    """A supervised restart (or the whole multi-start run) failed.

    Raised by :class:`~repro.engine.multistart.MultiStartEngine` only
    when *no* restart produced a result; individual restart failures
    are recorded in the run's
    :class:`~repro.engine.multistart.RunReport` list instead.
    """


class ServiceError(ReproError, RuntimeError):
    """Base class of failures raised by the floorplanning service
    (:mod:`repro.service`): bad submissions, quota rejections, lookups
    of unknown jobs, and illegal job state transitions."""


class JobValidationError(ServiceError, ValueError):
    """A submitted job specification failed validation (unparsable
    netlist, unknown representation, non-positive seed bounds...).
    Maps to HTTP 400."""


class QuotaExceeded(ServiceError):
    """A tenant's active-job quota (queued + running) is full.
    Maps to HTTP 429; resubmitting after jobs finish succeeds."""


class JobNotFound(ServiceError, KeyError):
    """No job with the requested id exists.  Maps to HTTP 404."""
