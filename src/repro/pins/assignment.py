"""Intersection-to-intersection pin assignment.

The evaluation lattice has pitch ``grid_size`` anchored at the chip's
lower-left corner.  Following the paper (Section 2 and Section 5, after
Sham & Young [4]), pins are *distributed* over the module and snapped to
the nearest lattice intersection:

* ``"perimeter"`` (default): each of a module's nets gets its own pin,
  spaced evenly around the module's boundary in deterministic net
  order -- macro pins live on macro edges, and spreading them stops a
  single lattice point from accumulating the module's entire degree
  (which would swamp every congestion map with floorplan-invariant
  spikes);
* ``"center"``: every net pins at the module center -- the simplest
  reading, kept for ablations;
* ``"facing"``: each net's pin sits on the module boundary point
  nearest the centroid of the net's *other* terminals -- the most
  router-realistic variant (pin assignment follows connectivity), at
  the price of pins that move when distant modules move.

The assignment also performs the multi-pin decomposition: the result
carries the full list of placed 2-pin nets the congestion models and
the wirelength metric consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.floorplan import Floorplan
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, TwoPinNet, decompose_to_two_pin

__all__ = [
    "PinAssignment",
    "assign_pins",
    "snap_to_lattice",
    "perimeter_point",
    "perimeter_fractions",
    "net_pin_locations",
]

_PIN_STYLES = ("perimeter", "center", "facing")


def snap_to_lattice(p: Point, chip: Rect, grid_size: float) -> Point:
    """Snap ``p`` to the nearest lattice intersection inside ``chip``.

    The lattice is anchored at ``(chip.x_lo, chip.y_lo)`` with pitch
    ``grid_size``; snapped coordinates are clamped into the chip so pins
    of modules flush with the top/right edge stay on-chip.
    """
    if grid_size <= 0:
        raise ValueError(f"grid_size must be positive, got {grid_size}")
    x = chip.x_lo + round((p.x - chip.x_lo) / grid_size) * grid_size
    y = chip.y_lo + round((p.y - chip.y_lo) / grid_size) * grid_size
    # Clamp inline -- this is the annealer's hottest scalar helper, and
    # building Interval objects per call doubles its cost.
    if x > chip.x_hi:
        x = chip.x_hi
    elif x < chip.x_lo:
        x = chip.x_lo
    if y > chip.y_hi:
        y = chip.y_hi
    elif y < chip.y_lo:
        y = chip.y_lo
    return Point(x, y)


def perimeter_point(rect: Rect, fraction: float) -> Point:
    """The point ``fraction`` of the way around ``rect``'s boundary.

    Walks counter-clockwise from the lower-left corner.  ``fraction``
    is taken modulo 1, so any real value is legal.
    """
    fraction = fraction % 1.0
    w, h = rect.width, rect.height
    perimeter = 2.0 * (w + h)
    if perimeter == 0.0:
        return rect.center
    d = fraction * perimeter
    if d <= w:
        return Point(rect.x_lo + d, rect.y_lo)
    d -= w
    if d <= h:
        return Point(rect.x_hi, rect.y_lo + d)
    d -= h
    if d <= w:
        return Point(rect.x_hi - d, rect.y_hi)
    d -= w
    return Point(rect.x_lo, rect.y_hi - d)


@dataclass(frozen=True)
class PinAssignment:
    """Placed pins and the resulting 2-pin net list.

    ``pin_locations`` maps net name -> (terminal -> snapped Point);
    ``two_pin_nets`` is the MST decomposition over those points, in a
    deterministic order.
    """

    chip: Rect
    grid_size: float
    pin_locations: Mapping[str, Mapping[str, Point]]
    two_pin_nets: Tuple[TwoPinNet, ...]

    @property
    def n_two_pin(self) -> int:
        return len(self.two_pin_nets)


def perimeter_fractions(
    netlist: Netlist, module_names
) -> Dict[Tuple[str, str], float]:
    """Perimeter-walk fractions of every (net, terminal) pin.

    Purely topological -- module ``m``'s k-th net (in netlist order)
    gets fraction ``k / degree(m)`` -- so the mapping is computable once
    per circuit and shared across every floorplan evaluated during
    annealing (the incremental evaluator relies on this stability to
    recompute only the nets whose modules moved).
    """
    degree: Dict[str, int] = {name: 0 for name in module_names}
    for net in netlist.nets:
        for t in net.terminals:
            if t in degree:
                degree[t] += 1
    seen: Dict[str, int] = {name: 0 for name in module_names}
    fractions: Dict[Tuple[str, str], float] = {}
    for net in netlist.nets:
        for t in net.terminals:
            k = seen[t]
            seen[t] += 1
            fractions[(net.name, t)] = k / max(degree[t], 1)
    return fractions


def net_pin_locations(
    net: Net,
    floorplan: Floorplan,
    grid_size: float,
    pin_style: str = "perimeter",
    fractions: Optional[Mapping[Tuple[str, str], float]] = None,
    center_cache: Optional[Dict[str, Point]] = None,
) -> Dict[str, Point]:
    """Pin locations of one net's terminals on ``floorplan``.

    The single-net building block of :func:`assign_pins`: given the
    circuit-wide ``fractions`` (required for the ``"perimeter"`` style),
    it depends only on the net's own terminals' placements (plus, for
    ``"facing"``, the net's other terminals), so callers tracking dirty
    modules can re-pin exactly the affected nets.
    """
    if pin_style not in _PIN_STYLES:
        raise ValueError(
            f"pin_style must be one of {_PIN_STYLES}, got {pin_style!r}"
        )
    if pin_style == "perimeter" and fractions is None:
        raise ValueError(
            "perimeter pin style needs the circuit-wide perimeter_fractions"
        )
    chip = floorplan.chip
    locations: Dict[str, Point] = {}
    for t in net.terminals:
        try:
            rect = floorplan.placement(t)
        except KeyError:
            raise KeyError(
                f"net {net.name!r} terminal {t!r} is not placed"
            )
        if pin_style == "center":
            if center_cache is not None and t in center_cache:
                locations[t] = center_cache[t]
                continue
            point = snap_to_lattice(rect.center, chip, grid_size)
            if center_cache is not None:
                center_cache[t] = point
            locations[t] = point
        elif pin_style == "facing":
            others = [u for u in net.terminals if u != t]
            cx = sum(floorplan.center(u).x for u in others) / len(others)
            cy = sum(floorplan.center(u).y for u in others) / len(others)
            raw = _boundary_point_toward(rect, cx, cy)
            locations[t] = snap_to_lattice(raw, chip, grid_size)
        else:
            raw = perimeter_point(rect, fractions[(net.name, t)])
            locations[t] = snap_to_lattice(raw, chip, grid_size)
    return locations


def assign_pins(
    floorplan: Floorplan,
    netlist: Netlist,
    grid_size: float,
    pin_style: str = "perimeter",
) -> PinAssignment:
    """Assign every net's pins and decompose to 2-pin nets.

    With the default ``"perimeter"`` style, module ``m``'s k-th net (in
    netlist order) pins at the lattice intersection nearest the point
    ``k / degree(m)`` of the way around ``m``'s boundary -- stable
    across floorplans of the same circuit, so annealing cost deltas
    reflect module movement only.  ``"facing"`` instead aims each pin
    at the rest of its net (see the module docstring).
    """
    if pin_style not in _PIN_STYLES:
        raise ValueError(
            f"pin_style must be one of {_PIN_STYLES}, got {pin_style!r}"
        )
    fractions = (
        perimeter_fractions(netlist, floorplan.module_names)
        if pin_style == "perimeter"
        else None
    )
    center_cache: Dict[str, Point] = {}
    pin_locations: Dict[str, Dict[str, Point]] = {}
    two_pin: List[TwoPinNet] = []
    for net in netlist.nets:
        locations = net_pin_locations(
            net,
            floorplan,
            grid_size,
            pin_style=pin_style,
            fractions=fractions,
            center_cache=center_cache,
        )
        pin_locations[net.name] = locations
        two_pin.extend(decompose_to_two_pin(net, locations))
    return PinAssignment(
        chip=floorplan.chip,
        grid_size=grid_size,
        pin_locations=pin_locations,
        two_pin_nets=tuple(two_pin),
    )


def _boundary_point_toward(rect: Rect, x: float, y: float) -> Point:
    """The boundary point of ``rect`` nearest the target ``(x, y)``.

    Clamping the target into the rectangle gives the nearest interior
    point; if the target is inside, the point projects onto the closest
    edge so the pin still lands on the module boundary.
    """
    px = rect.x_interval.clamped(x)
    py = rect.y_interval.clamped(y)
    on_x_edge = px in (rect.x_lo, rect.x_hi)
    on_y_edge = py in (rect.y_lo, rect.y_hi)
    if not (on_x_edge or on_y_edge):
        # Target inside: project to the nearest edge.
        candidates = (
            (px - rect.x_lo, Point(rect.x_lo, py)),
            (rect.x_hi - px, Point(rect.x_hi, py)),
            (py - rect.y_lo, Point(px, rect.y_lo)),
            (rect.y_hi - py, Point(px, rect.y_hi)),
        )
        return min(candidates, key=lambda c: c[0])[1]
    return Point(px, py)
