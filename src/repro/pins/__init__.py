"""Pin placement onto the evaluation lattice.

Once module positions are fixed, the congestion models need a pin
coordinate for every (net, terminal).  Following the paper (Section 2)
we use the *intersection-to-intersection* method of Sham & Young: pins
are distributed around each module's boundary (one per net, in
deterministic order) and snapped to the nearest intersection of the
evaluation grid's lattice.  See :mod:`repro.pins.assignment` for the
center-pin ablation variant.
"""

from repro.pins.assignment import (
    PinAssignment,
    assign_pins,
    net_pin_locations,
    perimeter_fractions,
    perimeter_point,
    snap_to_lattice,
)

__all__ = [
    "PinAssignment",
    "assign_pins",
    "net_pin_locations",
    "perimeter_fractions",
    "perimeter_point",
    "snap_to_lattice",
]
