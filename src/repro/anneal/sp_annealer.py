"""Deprecated sequence-pair annealer wrapper.

.. deprecated::
    :class:`SequencePairAnnealer` is a thin shim over
    :class:`repro.engine.AnnealEngine` with ``representation="sp"``;
    new code should use the engine directly.  The shim keeps the
    historical constructor, result and snapshot types.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.schedule import GeometricSchedule
from repro.floorplan import Floorplan, SequencePair
from repro.netlist import Netlist

__all__ = ["SequencePairSnapshot", "SequencePairResult", "SequencePairAnnealer"]


@dataclass(frozen=True)
class SequencePairSnapshot:
    """The state at the end of one temperature step."""

    step: int
    temperature: float
    current_cost: float
    best_cost: float
    breakdown: CostBreakdown
    pair: SequencePair


@dataclass
class SequencePairResult:
    """A finished sequence-pair annealing run."""

    floorplan: Floorplan
    pair: SequencePair
    breakdown: CostBreakdown
    snapshots: List[SequencePairSnapshot] = field(default_factory=list)
    n_moves: int = 0
    n_accepted: int = 0
    runtime_seconds: float = 0.0

    @property
    def cost(self) -> float:
        """The best floorplan's combined objective cost."""
        return self.breakdown.cost

    @property
    def acceptance_ratio(self) -> float:
        """Accepted moves over attempted moves."""
        return self.n_accepted / self.n_moves if self.n_moves else 0.0


class SequencePairAnnealer:
    """Deprecated: use ``AnnealEngine(representation="sp")``.

    Anneals a circuit into a (possibly non-slicing) packed floorplan;
    identical seeds give runs identical to the engine's.
    """

    def __init__(
        self,
        netlist: Netlist,
        objective: Optional[FloorplanObjective] = None,
        seed: int = 0,
        moves_per_temperature: Optional[int] = None,
        schedule: Optional[GeometricSchedule] = None,
        calibrate: bool = True,
    ):
        warnings.warn(
            "SequencePairAnnealer is deprecated; use "
            "repro.engine.AnnealEngine(representation='sp')",
            DeprecationWarning,
            stacklevel=2,
        )
        self.netlist = netlist
        self.objective = objective or FloorplanObjective(netlist)
        self.seed = int(seed)
        m = netlist.n_modules
        self.moves_per_temperature = (
            moves_per_temperature if moves_per_temperature is not None else 10 * m
        )
        if self.moves_per_temperature < 1:
            raise ValueError("moves_per_temperature must be >= 1")
        self.schedule = schedule or GeometricSchedule()
        self._calibrate = bool(calibrate)

    def run(
        self,
        on_snapshot: Optional[Callable[[SequencePairSnapshot], None]] = None,
    ) -> SequencePairResult:
        """Run one full annealing schedule and return the best solution."""
        from repro.engine import AnnealEngine

        def forward_snapshot(snap) -> None:
            if on_snapshot is not None:
                on_snapshot(_to_sp_snapshot(snap))

        engine = AnnealEngine(
            self.netlist,
            representation="sp",
            objective=self.objective,
            seed=self.seed,
            moves_per_temperature=self.moves_per_temperature,
            schedule=self.schedule,
            calibrate=self._calibrate,
        )
        result = engine.run(
            on_snapshot=forward_snapshot if on_snapshot else None
        )
        return SequencePairResult(
            floorplan=result.floorplan,
            pair=result.state,
            breakdown=result.breakdown,
            snapshots=[_to_sp_snapshot(s) for s in result.snapshots],
            n_moves=result.n_moves,
            n_accepted=result.n_accepted,
            runtime_seconds=result.runtime_seconds,
        )


def _to_sp_snapshot(snap) -> SequencePairSnapshot:
    return SequencePairSnapshot(
        step=snap.step,
        temperature=snap.temperature,
        current_cost=snap.current_cost,
        best_cost=snap.best_cost,
        breakdown=snap.breakdown,
        pair=snap.state,
    )
