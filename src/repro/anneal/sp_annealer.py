"""Simulated annealing over sequence pairs (extension).

Section 4.6 claims the Irregular-Grid model embeds into "any general
floorplanners".  The slicing annealer demonstrates it for Wong-Liu;
this annealer demonstrates it for the sequence-pair representation,
which reaches general non-slicing packings.  It binds the shared loop
in :mod:`repro.anneal.generic` to sequence-pair states and moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.generic import anneal
from repro.anneal.schedule import GeometricSchedule
from repro.floorplan import Floorplan, SequencePair, pack_sequence_pair
from repro.netlist import Netlist

__all__ = ["SequencePairSnapshot", "SequencePairResult", "SequencePairAnnealer"]


@dataclass(frozen=True)
class SequencePairSnapshot:
    """The state at the end of one temperature step."""

    step: int
    temperature: float
    current_cost: float
    best_cost: float
    breakdown: CostBreakdown
    pair: SequencePair


@dataclass
class SequencePairResult:
    """A finished sequence-pair annealing run."""

    floorplan: Floorplan
    pair: SequencePair
    breakdown: CostBreakdown
    snapshots: List[SequencePairSnapshot] = field(default_factory=list)
    n_moves: int = 0
    n_accepted: int = 0
    runtime_seconds: float = 0.0

    @property
    def cost(self) -> float:
        return self.breakdown.cost

    @property
    def acceptance_ratio(self) -> float:
        return self.n_accepted / self.n_moves if self.n_moves else 0.0


class SequencePairAnnealer:
    """Anneal a circuit into a (possibly non-slicing) packed floorplan.

    Takes the same :class:`FloorplanObjective` as the slicing annealer;
    a sequence pair packs directly to coordinates, so the objective's
    floorplan-level evaluation path is used.
    """

    def __init__(
        self,
        netlist: Netlist,
        objective: Optional[FloorplanObjective] = None,
        seed: int = 0,
        moves_per_temperature: Optional[int] = None,
        schedule: Optional[GeometricSchedule] = None,
        calibrate: bool = True,
    ):
        self.netlist = netlist
        self.objective = objective or FloorplanObjective(netlist)
        self.seed = int(seed)
        m = netlist.n_modules
        self.moves_per_temperature = (
            moves_per_temperature if moves_per_temperature is not None else 10 * m
        )
        if self.moves_per_temperature < 1:
            raise ValueError("moves_per_temperature must be >= 1")
        self.schedule = schedule or GeometricSchedule()
        self._calibrate = bool(calibrate)
        self._modules = {m.name: m for m in netlist.modules}

    def run(
        self,
        on_snapshot: Optional[Callable[[SequencePairSnapshot], None]] = None,
    ) -> SequencePairResult:
        """Run one full annealing schedule and return the best solution."""
        def forward_snapshot(snap) -> None:
            if on_snapshot is not None:
                on_snapshot(_to_sp_snapshot(snap))

        result = anneal(
            objective=self.objective,
            initial=lambda rng: SequencePair.initial(
                list(self._modules), rng
            ),
            neighbor=lambda pair, rng: pair.random_neighbor(rng),
            realize=lambda pair: pack_sequence_pair(pair, self._modules),
            seed=self.seed,
            moves_per_temperature=self.moves_per_temperature,
            schedule=self.schedule,
            calibrate=self._calibrate,
            on_snapshot=forward_snapshot if on_snapshot else None,
        )
        return SequencePairResult(
            floorplan=result.floorplan,
            pair=result.state,
            breakdown=result.breakdown,
            snapshots=[_to_sp_snapshot(s) for s in result.snapshots],
            n_moves=result.n_moves,
            n_accepted=result.n_accepted,
            runtime_seconds=result.runtime_seconds,
        )


def _to_sp_snapshot(snap) -> SequencePairSnapshot:
    return SequencePairSnapshot(
        step=snap.step,
        temperature=snap.temperature,
        current_cost=snap.current_cost,
        best_cost=snap.best_cost,
        breakdown=snap.breakdown,
        pair=snap.state,
    )
