"""Deprecated Polish-expression annealer wrapper.

.. deprecated::
    :class:`FloorplanAnnealer` is a thin shim over
    :class:`repro.engine.AnnealEngine` with
    ``representation="polish"``; new code should use the engine
    directly (it adds representation selection, engine-scoped caches
    and multi-start).  The shim keeps the historical constructor,
    result and snapshot types the experiments consume.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.schedule import GeometricSchedule
from repro.perf import PerfRecorder
from repro.floorplan import Floorplan, PolishExpression
from repro.netlist import Netlist

__all__ = ["TemperatureSnapshot", "AnnealResult", "FloorplanAnnealer"]


@dataclass(frozen=True)
class TemperatureSnapshot:
    """The state at the end of one temperature step."""

    step: int
    temperature: float
    current_cost: float
    best_cost: float
    breakdown: CostBreakdown
    expression: PolishExpression


@dataclass
class AnnealResult:
    """Everything a finished annealing run produced."""

    floorplan: Floorplan
    expression: PolishExpression
    breakdown: CostBreakdown
    snapshots: List[TemperatureSnapshot] = field(default_factory=list)
    n_moves: int = 0
    n_accepted: int = 0
    runtime_seconds: float = 0.0
    perf: Optional[PerfRecorder] = None

    @property
    def moves_per_second(self) -> float:
        """Attempted moves per wall-clock second."""
        return self.n_moves / self.runtime_seconds if self.runtime_seconds else 0.0

    @property
    def cost(self) -> float:
        """The best floorplan's combined objective cost."""
        return self.breakdown.cost

    @property
    def acceptance_ratio(self) -> float:
        """Accepted moves over attempted moves."""
        return self.n_accepted / self.n_moves if self.n_moves else 0.0


class FloorplanAnnealer:
    """Deprecated: use ``AnnealEngine(representation="polish")``.

    Anneals a circuit into a low-cost slicing floorplan; identical
    seeds give runs identical to the engine's.  Constructor parameters
    are unchanged from the historical class: ``netlist``,
    ``objective`` (default area+wirelength), ``seed``,
    ``moves_per_temperature`` (default ``10 * m``), ``schedule``,
    ``calibrate``.
    """

    def __init__(
        self,
        netlist: Netlist,
        objective: Optional[FloorplanObjective] = None,
        seed: int = 0,
        moves_per_temperature: Optional[int] = None,
        schedule: Optional[GeometricSchedule] = None,
        calibrate: bool = True,
    ):
        warnings.warn(
            "FloorplanAnnealer is deprecated; use "
            "repro.engine.AnnealEngine(representation='polish')",
            DeprecationWarning,
            stacklevel=2,
        )
        self.netlist = netlist
        self.objective = objective or FloorplanObjective(netlist)
        self.seed = int(seed)
        m = netlist.n_modules
        self.moves_per_temperature = (
            moves_per_temperature if moves_per_temperature is not None else 10 * m
        )
        if self.moves_per_temperature < 1:
            raise ValueError("moves_per_temperature must be >= 1")
        self.schedule = schedule or GeometricSchedule()
        self._calibrate = bool(calibrate)

    def run(
        self,
        on_snapshot: Optional[Callable[[TemperatureSnapshot], None]] = None,
    ) -> AnnealResult:
        """Run one full annealing schedule and return the best solution."""
        # Imported here, not at module level: repro.engine sits above
        # repro.anneal in the layering, and the shim is the one place
        # the lower layer calls back up.
        from repro.engine import AnnealEngine

        def forward_snapshot(snap) -> None:
            if on_snapshot is not None:
                on_snapshot(_to_temperature_snapshot(snap))

        engine = AnnealEngine(
            self.netlist,
            representation="polish",
            objective=self.objective,
            seed=self.seed,
            moves_per_temperature=self.moves_per_temperature,
            schedule=self.schedule,
            calibrate=self._calibrate,
        )
        result = engine.run(
            on_snapshot=forward_snapshot if on_snapshot else None
        )
        return AnnealResult(
            floorplan=result.floorplan,
            expression=result.state,
            breakdown=result.breakdown,
            snapshots=[_to_temperature_snapshot(s) for s in result.snapshots],
            n_moves=result.n_moves,
            n_accepted=result.n_accepted,
            runtime_seconds=result.runtime_seconds,
            perf=result.perf,
        )


def _to_temperature_snapshot(snap) -> TemperatureSnapshot:
    return TemperatureSnapshot(
        step=snap.step,
        temperature=snap.temperature,
        current_cost=snap.current_cost,
        best_cost=snap.best_cost,
        breakdown=snap.breakdown,
        expression=snap.state,
    )
