"""The simulated-annealing floorplanner (Wong & Liu [7], Section 5).

State is a normalized Polish expression; neighbours come from the
M1/M2/M3 moves; acceptance is Metropolis; cooling is geometric with the
initial temperature set from sampled uphill moves.  After every
temperature step the annealer records a :class:`TemperatureSnapshot` of
the current (locally optimized) solution -- Experiment 2 plots exactly
those snapshots.

The loop itself lives in :mod:`repro.anneal.generic`; this module binds
it to the Polish-expression representation and keeps the historical
result types the experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.generic import anneal
from repro.anneal.schedule import GeometricSchedule
from repro.perf import PerfRecorder
from repro.floorplan import (
    Floorplan,
    PolishExpression,
    evaluate_polish,
    initial_expression,
)
from repro.netlist import Netlist

__all__ = ["TemperatureSnapshot", "AnnealResult", "FloorplanAnnealer"]


@dataclass(frozen=True)
class TemperatureSnapshot:
    """The state at the end of one temperature step."""

    step: int
    temperature: float
    current_cost: float
    best_cost: float
    breakdown: CostBreakdown
    expression: PolishExpression


@dataclass
class AnnealResult:
    """Everything a finished annealing run produced."""

    floorplan: Floorplan
    expression: PolishExpression
    breakdown: CostBreakdown
    snapshots: List[TemperatureSnapshot] = field(default_factory=list)
    n_moves: int = 0
    n_accepted: int = 0
    runtime_seconds: float = 0.0
    perf: Optional[PerfRecorder] = None

    @property
    def moves_per_second(self) -> float:
        return self.n_moves / self.runtime_seconds if self.runtime_seconds else 0.0

    @property
    def cost(self) -> float:
        return self.breakdown.cost

    @property
    def acceptance_ratio(self) -> float:
        return self.n_accepted / self.n_moves if self.n_moves else 0.0


class FloorplanAnnealer:
    """Anneal a circuit into a low-cost slicing floorplan.

    Parameters
    ----------
    netlist:
        The circuit.
    objective:
        A calibrated-or-not :class:`FloorplanObjective`; by default an
        area+wirelength objective (Experiment 1's baseline
        floorplanner).  ``calibrate`` below controls auto-calibration.
    seed:
        Seed for every stochastic choice (start expression, moves,
        acceptance); identical seeds give identical runs.
    moves_per_temperature:
        Move attempts per temperature step; defaults to ``10 * m``
        (Wong-Liu's recommendation).
    schedule:
        Cooling schedule.
    calibrate:
        Run objective normalization before annealing (skip when the
        caller already calibrated a shared objective).
    """

    def __init__(
        self,
        netlist: Netlist,
        objective: Optional[FloorplanObjective] = None,
        seed: int = 0,
        moves_per_temperature: Optional[int] = None,
        schedule: Optional[GeometricSchedule] = None,
        calibrate: bool = True,
    ):
        self.netlist = netlist
        self.objective = objective or FloorplanObjective(netlist)
        self.seed = int(seed)
        m = netlist.n_modules
        self.moves_per_temperature = (
            moves_per_temperature if moves_per_temperature is not None else 10 * m
        )
        if self.moves_per_temperature < 1:
            raise ValueError("moves_per_temperature must be >= 1")
        self.schedule = schedule or GeometricSchedule()
        self._calibrate = bool(calibrate)

    def run(
        self,
        on_snapshot: Optional[Callable[[TemperatureSnapshot], None]] = None,
    ) -> AnnealResult:
        """Run one full annealing schedule and return the best solution."""
        names = [m.name for m in self.netlist.modules]
        modules = {m.name: m for m in self.netlist.modules}
        allow_rotation = self.objective.allow_rotation

        def forward_snapshot(snap) -> None:
            if on_snapshot is not None:
                on_snapshot(_to_temperature_snapshot(snap))

        result = anneal(
            objective=self.objective,
            initial=lambda rng: initial_expression(names, rng),
            neighbor=lambda expr, rng: expr.random_neighbor(rng),
            realize=lambda expr: evaluate_polish(expr, modules, allow_rotation),
            seed=self.seed,
            moves_per_temperature=self.moves_per_temperature,
            schedule=self.schedule,
            calibrate=self._calibrate,
            on_snapshot=forward_snapshot if on_snapshot else None,
        )
        return AnnealResult(
            floorplan=result.floorplan,
            expression=result.state,
            breakdown=result.breakdown,
            snapshots=[_to_temperature_snapshot(s) for s in result.snapshots],
            n_moves=result.n_moves,
            n_accepted=result.n_accepted,
            runtime_seconds=result.runtime_seconds,
            perf=result.perf,
        )


def _to_temperature_snapshot(snap) -> TemperatureSnapshot:
    return TemperatureSnapshot(
        step=snap.step,
        temperature=snap.temperature,
        current_cost=snap.current_cost,
        best_cost=snap.best_cost,
        breakdown=snap.breakdown,
        expression=snap.state,
    )
