"""The floorplanner's multi-objective cost (Section 5).

``cost = alpha * Area + beta * Wirelength + gamma * Congestion``, with
each term normalized by its magnitude over a sample of random
floorplans so the weights express *relative importance* rather than
unit conversions (areas are in mm^2-scale um^2, wirelengths in um,
congestion costs in probability mass per um^2 -- raw magnitudes differ
by orders of magnitude).

Annealing evaluates this objective thousands of times on floorplans
that differ by a single move, so the evaluator keeps a *dirty-net delta
path*: it diffs module rectangles against the previously evaluated
state, re-pins and re-decomposes only the nets touching moved modules
(plus, when the chip outline changed, the nets of modules within one
lattice pitch of its hi edges, whose snapped pins the into-chip clamp
may shift), and skips congestion re-evaluation entirely when neither
the chip outline nor any net's placed 2-pin geometry changed.  Only a
different module set falls back to the full path.  ``strict_incremental``
re-runs the
full pipeline after every delta evaluation and asserts agreement to
1e-12 -- the debugging net for the invariants above.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.congestion.base import CongestionModel
from repro.floorplan import Floorplan, evaluate_polish, initial_expression
from repro.floorplan.slicing import SUBTREE_SHAPE_CACHE
from repro.metrics import total_two_pin_length
from repro.netlist import Netlist, TwoPinArrays, batched_mst_edges
from repro.perf import NULL_RECORDER, PerfRecorder
from repro.pins import assign_pins, perimeter_fractions

__all__ = ["CostBreakdown", "FloorplanObjective"]

_DEFAULT_PIN_GRID = 30.0


@dataclass(frozen=True)
class CostBreakdown:
    """One floorplan's objective terms and the combined scalar cost."""

    area: float
    wirelength: float
    congestion: float
    cost: float


class _PinTable:
    """Per-circuit pin and edge topology, flattened for vectorization.

    Pins: one row per (net, terminal) pair, in netlist order -- the
    terminal's module index and its perimeter-walk fraction, with
    ``starts`` delimiting each net's rows.  Edges: a net of ``k`` pins
    always decomposes into exactly ``k - 1`` MST edges, so the flat
    edge layout (``edge_starts``, ``edge_weights``) is fixed too, and
    a dirty net rewrites its slots in place.  2-pin nets (``simple_*``)
    fill their single edge by pure array gather; only nets of 3+ pins
    (``multi``) need a per-net MST.  Everything here is
    floorplan-invariant.
    """

    __slots__ = (
        "module_names",
        "key_set",
        "term_idx",
        "frac",
        "starts",
        "n_edges_total",
        "edge_weights",
        "simple_pin_a",
        "simple_slot",
        "simple_mask",
        "multi_groups",
    )

    def __init__(self, netlist: Netlist, module_names):
        self.module_names = list(module_names)
        self.key_set = set(self.module_names)
        fractions = perimeter_fractions(netlist, self.module_names)
        index = {name: i for i, name in enumerate(self.module_names)}
        term_idx: List[int] = []
        frac: List[float] = []
        starts = [0]
        edge_weights: List[float] = []
        simple_pin_a: List[int] = []
        simple_slot: List[int] = []
        simple_mask: List[bool] = []
        # (net index, first pin row, first edge slot) of each 3+-pin
        # net, bucketed by pin count so all same-size MSTs batch.
        by_k: dict = {}
        for i, net in enumerate(netlist.nets):
            pin_s = len(term_idx)
            for t in net.terminals:
                term_idx.append(index[t])
                frac.append(fractions[(net.name, t)] % 1.0)
            starts.append(len(term_idx))
            k = len(net.terminals)
            slot = len(edge_weights)
            edge_weights.extend([net.weight] * max(k - 1, 0))
            if k == 2:
                simple_pin_a.append(pin_s)
                simple_slot.append(slot)
                simple_mask.append(True)
            else:
                by_k.setdefault(k, []).append((i, pin_s, slot))
                simple_mask.append(False)
        self.term_idx = np.asarray(term_idx, dtype=np.intp)
        self.frac = np.asarray(frac)
        self.starts = np.asarray(starts, dtype=np.intp)
        self.n_edges_total = len(edge_weights)
        self.edge_weights = np.asarray(edge_weights)
        self.simple_pin_a = np.asarray(simple_pin_a, dtype=np.intp)
        self.simple_slot = np.asarray(simple_slot, dtype=np.intp)
        self.simple_mask = np.asarray(simple_mask, dtype=bool)
        self.multi_groups = [
            (
                k,
                np.asarray([g[0] for g in group], dtype=np.intp),
                np.asarray([g[1] for g in group], dtype=np.intp),
                np.asarray([g[2] for g in group], dtype=np.intp),
            )
            for k, group in sorted(by_k.items())
        ]


class _NetState:
    """The previously evaluated floorplan, decomposed for delta reuse.

    Holds the snapped pin coordinate arrays (for dirty detection) and
    the flat placed-edge arrays the congestion / wirelength kernels
    consume directly -- no :class:`TwoPinNet` objects anywhere in the
    hot loop.
    """

    __slots__ = (
        "placements",
        "chip",
        "pins_x",
        "pins_y",
        "edges",
        "wirelength",
        "congestion",
    )

    def __init__(
        self,
        placements,
        chip,
        pins_x: np.ndarray,
        pins_y: np.ndarray,
        edges: TwoPinArrays,
        wirelength: float,
        congestion: float,
    ):
        self.placements = placements
        self.chip = chip
        self.pins_x = pins_x
        self.pins_y = pins_y
        self.edges = edges
        self.wirelength = wirelength
        self.congestion = congestion

    def clone_arrays(self) -> "_NetState":
        """A state whose pin/edge arrays are private copies.

        The delta path mutates edge slots in place; cloning first keeps
        the committed state intact so a rejected move can roll back.
        """
        e = self.edges
        return _NetState(
            placements=self.placements,
            chip=self.chip,
            pins_x=self.pins_x.copy(),
            pins_y=self.pins_y.copy(),
            edges=TwoPinArrays(
                e.p1x.copy(), e.p1y.copy(), e.p2x.copy(), e.p2y.copy(),
                e.weights,
            ),
            wirelength=self.wirelength,
            congestion=self.congestion,
        )


def _fill_multi_group(
    edges: TwoPinArrays, sx, sy, k: int, pin_s: np.ndarray, slot: np.ndarray
) -> None:
    """Write a batch of k-pin nets' MST edges into their flat slots.

    :func:`batched_mst_edges` reproduces ``mst_edges``' arithmetic and
    tie-breaking bit-for-bit, so the edge set is identical to the
    object pipeline's ``decompose_to_two_pin``.
    """
    rows = pin_s[:, None] + np.arange(k)
    xs = sx[rows]
    ys = sy[rows]
    i, j = batched_mst_edges(xs, ys)
    m = np.arange(len(pin_s))[:, None]
    slots = slot[:, None] + np.arange(k - 1)
    edges.p1x[slots] = xs[m, i]
    edges.p1y[slots] = ys[m, i]
    edges.p2x[slots] = xs[m, j]
    edges.p2y[slots] = ys[m, j]


class FloorplanObjective:
    """Weighted, normalized floorplan cost.

    Parameters
    ----------
    netlist:
        The circuit being floorplanned.
    alpha, beta, gamma:
        Weights of area, wirelength, and congestion.  ``gamma == 0``
        skips congestion evaluation entirely (Experiment 1's first
        floorplanner); ``alpha == beta == 0`` with ``gamma > 0`` is the
        congestion-only objective of Experiments 2-3.
    congestion_model:
        Any :class:`~repro.congestion.base.CongestionModel`; required
        when ``gamma > 0``.
    pin_grid_size:
        Lattice pitch for intersection-to-intersection pin snapping.
        Defaults to the congestion model's ``grid_size`` when it has
        one, else 30 um.
    allow_rotation:
        Whether packing may rotate modules.
    incremental:
        Enable the dirty-net delta path (see the module docstring).
        Results agree with the full path to float-summation dust; pass
        ``False`` for the always-from-scratch seed behaviour.
    strict_incremental:
        Debug mode: after every delta evaluation, re-run the full
        pipeline and raise :class:`AssertionError` unless both agree to
        1e-12.

    The ``perf`` attribute accepts a :class:`~repro.perf.PerfRecorder`;
    phases ``pin_assignment`` / ``wirelength`` / ``congestion`` and the
    ``eval_full`` / ``eval_delta`` / ``eval_unchanged`` /
    ``congestion_skipped`` / ``nets_redone`` counters feed the annealing
    perf report.
    """

    def __init__(
        self,
        netlist: Netlist,
        alpha: float = 1.0,
        beta: float = 1.0,
        gamma: float = 0.0,
        congestion_model: Optional[CongestionModel] = None,
        pin_grid_size: Optional[float] = None,
        allow_rotation: bool = True,
        incremental: bool = True,
        strict_incremental: bool = False,
    ):
        if min(alpha, beta, gamma) < 0:
            raise ValueError("objective weights must be non-negative")
        if alpha == beta == gamma == 0:
            raise ValueError("at least one objective weight must be positive")
        if gamma > 0 and congestion_model is None:
            raise ValueError("gamma > 0 requires a congestion model")
        self.netlist = netlist
        self._modules = {m.name: m for m in netlist.modules}
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.congestion_model = congestion_model
        if pin_grid_size is None:
            pin_grid_size = getattr(congestion_model, "grid_size", _DEFAULT_PIN_GRID)
        if pin_grid_size <= 0:
            raise ValueError(f"pin_grid_size must be positive, got {pin_grid_size}")
        self.pin_grid_size = float(pin_grid_size)
        self.allow_rotation = bool(allow_rotation)
        self.incremental = bool(incremental)
        self.strict_incremental = bool(strict_incremental)
        self.perf: PerfRecorder = NULL_RECORDER
        # Normalization constants; 1.0 until calibrate() runs.
        self._area_norm = 1.0
        self._wl_norm = 1.0
        self._cgt_norm = 1.0
        # Delta-path state: the last evaluated floorplan plus the
        # circuit-invariant flattened pin topology.  ``_committed`` is
        # the annealer's accepted state (see :meth:`commit`); the delta
        # path never mutates its arrays, so :meth:`reject` can restore
        # it after a refused move.
        self._state: Optional[_NetState] = None
        self._committed: Optional[_NetState] = None
        self._table: Optional[_PinTable] = None

    # -- calibration ----------------------------------------------------

    def calibrate(self, seed: int = 0, samples: int = 10) -> None:
        """Set normalization constants from random floorplans.

        Each term is divided by its mean over ``samples`` random Polish
        expressions, making the three terms commensurate before the
        weights apply.
        """
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        rng = random.Random(seed)
        areas, wls, cgts = [], [], []
        names = [m.name for m in self.netlist.modules]
        for _ in range(samples):
            expr = initial_expression(names, rng)
            for _ in range(3 * len(names)):
                expr = expr.random_neighbor(rng)
            b = self._raw_terms(expr)
            areas.append(b[0])
            wls.append(b[1])
            cgts.append(b[2])
        self._area_norm = max(sum(areas) / len(areas), 1e-12)
        self._wl_norm = max(sum(wls) / len(wls), 1e-12)
        self._cgt_norm = max(sum(cgts) / len(cgts), 1e-12)

    # -- evaluation -----------------------------------------------------

    def evaluate_expression(self, expression) -> CostBreakdown:
        """Pack, measure and combine: the annealer's hot path."""
        area, wl, cgt = self._raw_terms(expression)
        return self._combine(area, wl, cgt)

    def evaluate_floorplan(self, floorplan: Floorplan) -> CostBreakdown:
        """Cost of an already-packed floorplan (used by the
        sequence-pair annealer and the experiment reports)."""
        area, wl, cgt = self._floorplan_terms(floorplan)
        return self._combine(area, wl, cgt)

    def invalidate(self) -> None:
        """Drop the delta-path state (force the next evaluation full)."""
        self._state = None
        self._committed = None

    # -- annealer transaction protocol ---------------------------------

    def commit(self) -> None:
        """Mark the last evaluated floorplan as the annealer's accepted
        state.  Subsequent delta evaluations diff against it without
        mutating its arrays, so :meth:`reject` can roll back."""
        self._committed = self._state

    def reject(self) -> None:
        """The last evaluated floorplan was refused: restore the
        accepted state so the next delta diffs against it (one move's
        worth of dirty nets, not two)."""
        self._state = self._committed

    def _raw_terms(self, expression):
        # The seed (non-incremental) evaluator stays memo-free so that
        # benchmarks against it measure the genuinely from-scratch path.
        cache = SUBTREE_SHAPE_CACHE if self.incremental else None
        with self.perf.timeit("packing"):
            floorplan = evaluate_polish(
                expression, self._modules, self.allow_rotation, cache=cache
            )
        return self._floorplan_terms(floorplan)

    def _floorplan_terms(self, floorplan: Floorplan):
        area = floorplan.area
        if self.beta == 0 and self.gamma == 0:
            return area, 0.0, 0.0
        if not self.incremental:
            return (area,) + self._full_terms(floorplan)
        wl, cgt = self._delta_terms(floorplan)
        if self.strict_incremental:
            self._assert_delta_matches_full(floorplan, wl, cgt)
        # The delta path maintains wirelength partials regardless of
        # beta (they cost nothing extra); the reported term honours the
        # seed behaviour of beta == 0 -> 0.0.
        return area, (wl if self.beta > 0 else 0.0), cgt

    # -- full path ------------------------------------------------------

    def _full_terms(self, floorplan: Floorplan) -> Tuple[float, float]:
        """Wirelength and congestion from scratch (seed behaviour)."""
        with self.perf.timeit("pin_assignment"):
            assignment = assign_pins(floorplan, self.netlist, self.pin_grid_size)
        wl = 0.0
        cgt = 0.0
        if self.beta > 0:
            with self.perf.timeit("wirelength"):
                wl = total_two_pin_length(assignment.two_pin_nets)
        if self.gamma > 0:
            with self.perf.timeit("congestion"):
                cgt = self.congestion_model.estimate(
                    floorplan.chip, assignment.two_pin_nets
                )
        return wl, cgt

    # -- delta path -----------------------------------------------------

    def _table_for(self, floorplan: Floorplan) -> _PinTable:
        table = self._table
        if table is None or floorplan.placements.keys() != table.key_set:
            table = _PinTable(self.netlist, floorplan.module_names)
            self._table = table
            self._state = None
            self._committed = None
        return table

    def _all_pins(self, floorplan: Floorplan, table: _PinTable):
        """Every (net, terminal) pin of ``floorplan``, as flat arrays.

        Vectorized replica of ``perimeter_point`` + ``snap_to_lattice``
        over all pins at once -- each arithmetic step mirrors the scalar
        helpers operation-for-operation, so the coordinates are
        bit-identical to the seed pipeline's (``strict_incremental``
        checks this every evaluation).
        """
        placements = floorplan.placements
        chip = floorplan.chip
        n = len(table.module_names)
        mx_lo = np.empty(n)
        my_lo = np.empty(n)
        mx_hi = np.empty(n)
        my_hi = np.empty(n)
        for i, name in enumerate(table.module_names):
            r = placements[name]
            mx_lo[i] = r.x_lo
            my_lo[i] = r.y_lo
            mx_hi[i] = r.x_hi
            my_hi[i] = r.y_hi
        w = mx_hi - mx_lo
        h = my_hi - my_lo
        per = 2.0 * (w + h)

        idx = table.term_idx
        x_lo = mx_lo[idx]
        x_hi = mx_hi[idx]
        y_lo = my_lo[idx]
        y_hi = my_hi[idx]
        w_g = w[idx]
        h_g = h[idx]

        # Walk the perimeter: the scalar code subtracts each traversed
        # side in sequence, branching on <=; np.where chains replicate
        # the branch outcomes exactly.  A zero-perimeter module lands in
        # the first branch at its lower-left corner, which equals its
        # center.
        d1 = table.frac * per[idx]
        c1 = d1 <= w_g
        d2 = d1 - w_g
        c2 = d2 <= h_g
        d3 = d2 - h_g
        c3 = d3 <= w_g
        d4 = d3 - w_g
        px = np.where(
            c1, x_lo + d1, np.where(c2, x_hi, np.where(c3, x_hi - d3, x_lo))
        )
        py = np.where(
            c1, y_lo, np.where(c2, y_lo + d2, np.where(c3, y_hi, y_hi - d4))
        )

        # Snap to the chip-anchored lattice, then clamp on-chip.
        # np.rint rounds half-to-even exactly like Python's round().
        gs = self.pin_grid_size
        sx = chip.x_lo + np.rint((px - chip.x_lo) / gs) * gs
        sy = chip.y_lo + np.rint((py - chip.y_lo) / gs) * gs
        np.clip(sx, chip.x_lo, chip.x_hi, out=sx)
        np.clip(sy, chip.y_lo, chip.y_hi, out=sy)
        return sx, sy

    def _fill_simple(self, table, edges, sx, sy, which=None) -> None:
        """Write 2-pin nets' edges straight from the pin arrays.

        ``which`` selects a subset of the simple nets (positions into
        ``table.simple_pin_a``); ``None`` fills them all.  Pure array
        gather/scatter -- no per-net Python.
        """
        pa = table.simple_pin_a
        slot = table.simple_slot
        if which is not None:
            pa = pa[which]
            slot = slot[which]
        edges.p1x[slot] = sx[pa]
        edges.p1y[slot] = sy[pa]
        edges.p2x[slot] = sx[pa + 1]
        edges.p2y[slot] = sy[pa + 1]

    def _wirelength_of(self, table, edges: TwoPinArrays) -> float:
        """Weighted Manhattan length of every placed edge."""
        return float(
            (
                table.edge_weights
                * (
                    np.abs(edges.p2x - edges.p1x)
                    + np.abs(edges.p2y - edges.p1y)
                )
            ).sum()
        )

    def _full_state(self, floorplan: Floorplan) -> Tuple[float, float]:
        """Full evaluation that also (re)builds the delta-path state."""
        table = self._table_for(floorplan)
        n_edges = table.n_edges_total
        edges = TwoPinArrays(
            np.empty(n_edges),
            np.empty(n_edges),
            np.empty(n_edges),
            np.empty(n_edges),
            table.edge_weights,
        )
        with self.perf.timeit("pin_assignment"):
            sx, sy = self._all_pins(floorplan, table)
            self._fill_simple(table, edges, sx, sy)
            for k, _, pin_s, slot in table.multi_groups:
                _fill_multi_group(edges, sx, sy, k, pin_s, slot)
        with self.perf.timeit("wirelength"):
            wl = self._wirelength_of(table, edges)
        cgt = 0.0
        if self.gamma > 0:
            with self.perf.timeit("congestion"):
                cgt = self.congestion_model.estimate_arrays(
                    floorplan.chip, edges
                )
        self._state = _NetState(
            placements=floorplan.placements,
            chip=floorplan.chip,
            pins_x=sx,
            pins_y=sy,
            edges=edges,
            wirelength=wl,
            congestion=cgt,
        )
        self.perf.count("eval_full")
        return wl, cgt

    def _delta_terms(self, floorplan: Floorplan) -> Tuple[float, float]:
        prev = self._state
        table = self._table
        placements = floorplan.placements
        if prev is None or table is None or placements.keys() != table.key_set:
            # Different module set: the flattened pin topology no longer
            # lines up -- restart.
            return self._full_state(floorplan)

        chip = floorplan.chip
        chip_changed = chip != prev.chip
        with self.perf.timeit("pin_assignment"):
            sx, sy = self._all_pins(floorplan, table)
            changed = (sx != prev.pins_x) | (sy != prev.pins_y)
            pins_changed = bool(changed.any())
            if not pins_changed and not chip_changed:
                # Every snapped pin and the outline held still (modules
                # may have shifted by less than the snap resolution):
                # wirelength and congestion are untouched.
                self.perf.count("eval_unchanged")
                if self.gamma > 0:
                    self.perf.count("congestion_skipped")
                return prev.wirelength, prev.congestion
            if prev is self._committed:
                # Never mutate the accepted state's arrays: evaluate the
                # candidate into a private copy so reject() rolls back
                # by reference swap.
                state = prev.clone_arrays()
            else:
                state = prev
            edges = state.edges
            if pins_changed:
                # Rewrite exactly the edge slots of nets owning a moved
                # pin; a net none of whose pins moved keeps its placed
                # edge coordinates verbatim.
                dirty = np.logical_or.reduceat(changed, table.starts[:-1])
                simple_dirty = np.nonzero(dirty[table.simple_mask])[0]
                if simple_dirty.size:
                    self._fill_simple(table, edges, sx, sy, simple_dirty)
                n_multi = 0
                for k, net_idx, pin_s, slot in table.multi_groups:
                    sel = np.nonzero(dirty[net_idx])[0]
                    if sel.size:
                        _fill_multi_group(
                            edges, sx, sy, k, pin_s[sel], slot[sel]
                        )
                        n_multi += int(sel.size)
                self.perf.count(
                    "nets_redone", int(simple_dirty.size) + n_multi
                )
        self.perf.count("eval_delta")

        with self.perf.timeit("wirelength"):
            wl = (
                self._wirelength_of(table, edges)
                if pins_changed
                else prev.wirelength
            )

        if self.gamma == 0:
            cgt = 0.0
        else:
            # A changed pin always changes its net's edge geometry, and
            # a changed outline moves the routing-range clamp, so any
            # fall-through here must re-estimate.
            with self.perf.timeit("congestion"):
                cgt = self.congestion_model.estimate_arrays(chip, edges)

        state.placements = placements
        state.chip = chip
        state.pins_x = sx
        state.pins_y = sy
        state.wirelength = wl
        state.congestion = cgt
        self._state = state
        return wl, cgt

    def _assert_delta_matches_full(
        self, floorplan: Floorplan, wl: float, cgt: float
    ) -> None:
        assignment = assign_pins(floorplan, self.netlist, self.pin_grid_size)
        full_wl = total_two_pin_length(assignment.two_pin_nets)
        if not math.isclose(wl, full_wl, rel_tol=1e-12, abs_tol=1e-12):
            raise AssertionError(
                f"incremental wirelength {wl!r} != full {full_wl!r}"
            )
        if self.gamma > 0:
            full_cgt = self.congestion_model.estimate(
                floorplan.chip, assignment.two_pin_nets
            )
            if not math.isclose(cgt, full_cgt, rel_tol=1e-12, abs_tol=1e-12):
                raise AssertionError(
                    f"incremental congestion {cgt!r} != full {full_cgt!r}"
                )

    def _combine(self, area: float, wl: float, cgt: float) -> CostBreakdown:
        cost = (
            self.alpha * area / self._area_norm
            + self.beta * wl / self._wl_norm
            + self.gamma * cgt / self._cgt_norm
        )
        return CostBreakdown(area=area, wirelength=wl, congestion=cgt, cost=cost)
