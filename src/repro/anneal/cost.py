"""The floorplanner's multi-objective cost (Section 5).

``cost = alpha * Area + beta * Wirelength + gamma * Congestion``, with
each term normalized by its magnitude over a sample of random
floorplans so the weights express *relative importance* rather than
unit conversions (areas are in mm^2-scale um^2, wirelengths in um,
congestion costs in probability mass per um^2 -- raw magnitudes differ
by orders of magnitude).

:class:`FloorplanObjective` is a facade over the staged evaluation
pipeline in :mod:`repro.anneal.pipeline` (pin assignment -> MST
decomposition -> congestion -> cost aggregation, sharing one columnar
:class:`~repro.anneal.pipeline.EvalState`).  Annealing evaluates the
objective thousands of times on floorplans that differ by a single
move, so the pipeline keeps a *dirty-net delta path*: it diffs module
rectangles against the previously evaluated state, re-pins and
re-decomposes only the nets touching moved modules (plus, when the chip
outline changed, the nets of modules within one lattice pitch of its hi
edges, whose snapped pins the into-chip clamp may shift), and skips
congestion re-evaluation entirely when neither the chip outline nor any
net's placed 2-pin geometry changed.  Only a different module set falls
back to the full path.  ``strict_incremental`` re-runs the full
pipeline after every delta evaluation and asserts agreement to 1e-12 --
the debugging net for the invariants above.

All memoization is scoped to the objective's
:class:`~repro.perf.context.CacheContext` (engine-supplied, or private
to the objective): the subtree-shape memo behind expression packing and
-- when the congestion model has no context of its own yet -- the
model's per-net caches.  Two objectives in one process never share
cache state.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.anneal.pipeline import (
    CongestionStage,
    CostAggregator,
    CostBreakdown,
    EvalState,
    EvaluationPipeline,
    MstStage,
    PinStage,
)
from repro.backend import make_backend
from repro.congestion.base import CongestionModel
from repro.floorplan import Floorplan, evaluate_polish, initial_expression
from repro.netlist import Netlist
from repro.perf import NULL_RECORDER, PerfRecorder
from repro.perf.context import CacheContext

__all__ = ["CostBreakdown", "FloorplanObjective"]

_DEFAULT_PIN_GRID = 30.0


class FloorplanObjective:
    """Weighted, normalized floorplan cost.

    Parameters
    ----------
    netlist:
        The circuit being floorplanned.
    alpha, beta, gamma:
        Weights of area, wirelength, and congestion.  ``gamma == 0``
        skips congestion evaluation entirely (Experiment 1's first
        floorplanner); ``alpha == beta == 0`` with ``gamma > 0`` is the
        congestion-only objective of Experiments 2-3.
    congestion_model:
        Any :class:`~repro.congestion.base.CongestionModel`; required
        when ``gamma > 0``.
    pin_grid_size:
        Lattice pitch for intersection-to-intersection pin snapping.
        Defaults to the congestion model's ``grid_size`` when it has
        one, else 30 um.
    allow_rotation:
        Whether packing may rotate modules.
    incremental:
        Enable the dirty-net delta path (see the module docstring).
        Results agree with the full path to float-summation dust; pass
        ``False`` for the always-from-scratch seed behaviour.
    strict_incremental:
        Debug mode: after every delta evaluation, re-run the full
        pipeline and raise :class:`AssertionError` unless both agree to
        1e-12.
    cache_context:
        The :class:`~repro.perf.context.CacheContext` scoping every
        memo this objective uses.  The engine passes its own so all
        restarts' caches report in one place; standalone objectives get
        a private context.  If the congestion model has a
        ``cache_context`` slot that is still unset, the objective's
        context is injected into it.
    backend:
        Compute backend for the hot-path kernels: a registered name
        (``"numpy"`` / ``"numba"`` / ``"python"``), an already-built
        :class:`~repro.backend.KernelBackend`, or ``None`` for the
        numpy default.  Flows into the MST/wirelength stage and -- when
        the congestion model's own ``backend`` slot is still unset --
        into the congestion model, mirroring the cache-context
        injection.  JIT warm-up (compilation) happens at construction,
        never inside a timed phase; its cost is reported under the
        ``jit_compile_seconds`` perf timer.

    The ``perf`` attribute accepts a :class:`~repro.perf.PerfRecorder`;
    phases ``packing`` / ``pin_assignment`` / ``wirelength`` /
    ``congestion`` and the ``eval_full`` / ``eval_delta`` /
    ``eval_unchanged`` / ``congestion_skipped`` / ``nets_redone``
    counters feed the annealing perf report.
    """

    def __init__(
        self,
        netlist: Netlist,
        alpha: float = 1.0,
        beta: float = 1.0,
        gamma: float = 0.0,
        congestion_model: Optional[CongestionModel] = None,
        pin_grid_size: Optional[float] = None,
        allow_rotation: bool = True,
        incremental: bool = True,
        strict_incremental: bool = False,
        cache_context: Optional[CacheContext] = None,
        backend=None,
    ):
        if min(alpha, beta, gamma) < 0:
            raise ValueError("objective weights must be non-negative")
        if alpha == beta == gamma == 0:
            raise ValueError("at least one objective weight must be positive")
        if gamma > 0 and congestion_model is None:
            raise ValueError("gamma > 0 requires a congestion model")
        self.netlist = netlist
        self._modules = {m.name: m for m in netlist.modules}
        self.congestion_model = congestion_model
        if pin_grid_size is None:
            pin_grid_size = getattr(congestion_model, "grid_size", _DEFAULT_PIN_GRID)
        if pin_grid_size <= 0:
            raise ValueError(f"pin_grid_size must be positive, got {pin_grid_size}")
        self.allow_rotation = bool(allow_rotation)
        self.cache_context = (
            cache_context if cache_context is not None else CacheContext()
        )
        # Inject the objective's context into a context-less congestion
        # model so its per-net memos are scoped with everything else;
        # a model arriving with its own context keeps it.
        if (
            congestion_model is not None
            and getattr(congestion_model, "cache_context", False) is None
        ):
            congestion_model.cache_context = self.cache_context
        # Resolve the backend once (JIT warm-up happens here, outside
        # any timed phase) and inject it into a backend-less congestion
        # model, mirroring the cache-context injection above.
        self.backend = make_backend(backend)
        self._jit_recorded = False
        if (
            congestion_model is not None
            and getattr(congestion_model, "backend", False) is None
        ):
            congestion_model.backend = self.backend
        self._pipeline = EvaluationPipeline(
            netlist,
            pins=PinStage(float(pin_grid_size)),
            mst=MstStage(backend=self.backend),
            congestion=CongestionStage(congestion_model if gamma > 0 else None),
            aggregator=CostAggregator(alpha, beta, gamma),
            incremental=incremental,
            strict_incremental=strict_incremental,
        )

    # -- facade plumbing ------------------------------------------------

    @property
    def pipeline(self) -> EvaluationPipeline:
        """The staged evaluation pipeline doing the actual work."""
        return self._pipeline

    @property
    def alpha(self) -> float:
        """Area weight."""
        return self._pipeline.aggregator.alpha

    @property
    def beta(self) -> float:
        """Wirelength weight."""
        return self._pipeline.aggregator.beta

    @property
    def gamma(self) -> float:
        """Congestion weight."""
        return self._pipeline.aggregator.gamma

    @property
    def pin_grid_size(self) -> float:
        """Lattice pitch of the pin snap."""
        return self._pipeline.pins.pin_grid_size

    @property
    def incremental(self) -> bool:
        """Whether the dirty-net delta path is enabled."""
        return self._pipeline.incremental

    @property
    def strict_incremental(self) -> bool:
        """Whether every delta evaluation is checked against the full
        path."""
        return self._pipeline.strict_incremental

    @property
    def perf(self) -> PerfRecorder:
        """The perf recorder receiving phase timings and counters."""
        return self._pipeline.perf

    @perf.setter
    def perf(self, recorder: PerfRecorder) -> None:
        self._pipeline.perf = recorder
        # Surface the construction-time JIT warm-up cost (once, on the
        # first real recorder) so bench numbers can exclude it: compile
        # time never lands inside a timed phase.
        if (
            not self._jit_recorded
            and recorder is not NULL_RECORDER
            and self.backend.jit_seconds > 0.0
        ):
            recorder.add_time(
                "jit_compile_seconds", self.backend.jit_seconds
            )
            self._jit_recorded = True

    @property
    def _state(self) -> Optional[EvalState]:
        return self._pipeline.state

    @_state.setter
    def _state(self, value: Optional[EvalState]) -> None:
        self._pipeline.state = value

    @property
    def _committed(self) -> Optional[EvalState]:
        return self._pipeline.committed

    @_committed.setter
    def _committed(self, value: Optional[EvalState]) -> None:
        self._pipeline.committed = value

    # -- calibration ----------------------------------------------------

    @property
    def norms(self) -> tuple:
        """The ``(area, wirelength, congestion)`` normalization
        constants currently in force (1.0 each before calibration)."""
        agg = self._pipeline.aggregator
        return (agg.area_norm, agg.wl_norm, agg.cgt_norm)

    def set_norms(self, area: float, wl: float, cgt: float) -> None:
        """Reinstate previously calibrated normalization constants.

        Checkpoint resume uses this instead of :meth:`calibrate`: cost
        continuity across the resume boundary requires the *same* norms
        the interrupted run used, not a fresh sample.
        """
        self._pipeline.aggregator.set_norms(area, wl, cgt)

    def calibrate(self, seed: int = 0, samples: int = 10) -> None:
        """Set normalization constants from random floorplans.

        Each term is divided by its mean over ``samples`` random Polish
        expressions, making the three terms commensurate before the
        weights apply.
        """
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        rng = random.Random(seed)
        areas, wls, cgts = [], [], []
        names = [m.name for m in self.netlist.modules]
        for _ in range(samples):
            expr = initial_expression(names, rng)
            for _ in range(3 * len(names)):
                expr = expr.random_neighbor(rng)
            b = self._raw_terms(expr)
            areas.append(b[0])
            wls.append(b[1])
            cgts.append(b[2])
        self._pipeline.aggregator.set_norms(
            sum(areas) / len(areas),
            sum(wls) / len(wls),
            sum(cgts) / len(cgts),
        )

    # -- evaluation -----------------------------------------------------

    def evaluate_expression(self, expression) -> CostBreakdown:
        """Pack, measure and combine: the annealer's hot path."""
        area, wl, cgt = self._raw_terms(expression)
        return self._pipeline.aggregator.combine(area, wl, cgt)

    def evaluate_floorplan(self, floorplan: Floorplan) -> CostBreakdown:
        """Cost of an already-packed floorplan (used by the
        sequence-pair annealer and the experiment reports)."""
        area, wl, cgt = self._pipeline.floorplan_terms(floorplan)
        return self._pipeline.aggregator.combine(area, wl, cgt)

    def invalidate(self) -> None:
        """Drop the delta-path state (force the next evaluation full)."""
        self._pipeline.invalidate()

    # -- annealer transaction protocol ---------------------------------

    def commit(self) -> None:
        """Mark the last evaluated floorplan as the annealer's accepted
        state.  Subsequent delta evaluations diff against it without
        mutating its arrays, so :meth:`reject` can roll back."""
        self._pipeline.commit()

    def reject(self) -> None:
        """The last evaluated floorplan was refused: restore the
        accepted state so the next delta diffs against it (one move's
        worth of dirty nets, not two)."""
        self._pipeline.reject()

    def _raw_terms(self, expression):
        # The seed (non-incremental) evaluator stays memo-free so that
        # benchmarks against it measure the genuinely from-scratch path.
        cache = self.cache_context.subtree_shapes if self.incremental else None
        with self.perf.timeit("packing"):
            floorplan = evaluate_polish(
                expression, self._modules, self.allow_rotation, cache=cache
            )
        return self._pipeline.floorplan_terms(floorplan)
