"""The floorplanner's multi-objective cost (Section 5).

``cost = alpha * Area + beta * Wirelength + gamma * Congestion``, with
each term normalized by its magnitude over a sample of random
floorplans so the weights express *relative importance* rather than
unit conversions (areas are in mm^2-scale um^2, wirelengths in um,
congestion costs in probability mass per um^2 -- raw magnitudes differ
by orders of magnitude).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.congestion.base import CongestionModel
from repro.floorplan import Floorplan, evaluate_polish, initial_expression
from repro.metrics import total_two_pin_length
from repro.netlist import Netlist
from repro.pins import assign_pins

__all__ = ["CostBreakdown", "FloorplanObjective"]

_DEFAULT_PIN_GRID = 30.0


@dataclass(frozen=True)
class CostBreakdown:
    """One floorplan's objective terms and the combined scalar cost."""

    area: float
    wirelength: float
    congestion: float
    cost: float


class FloorplanObjective:
    """Weighted, normalized floorplan cost.

    Parameters
    ----------
    netlist:
        The circuit being floorplanned.
    alpha, beta, gamma:
        Weights of area, wirelength, and congestion.  ``gamma == 0``
        skips congestion evaluation entirely (Experiment 1's first
        floorplanner); ``alpha == beta == 0`` with ``gamma > 0`` is the
        congestion-only objective of Experiments 2-3.
    congestion_model:
        Any :class:`~repro.congestion.base.CongestionModel`; required
        when ``gamma > 0``.
    pin_grid_size:
        Lattice pitch for intersection-to-intersection pin snapping.
        Defaults to the congestion model's ``grid_size`` when it has
        one, else 30 um.
    allow_rotation:
        Whether packing may rotate modules.
    """

    def __init__(
        self,
        netlist: Netlist,
        alpha: float = 1.0,
        beta: float = 1.0,
        gamma: float = 0.0,
        congestion_model: Optional[CongestionModel] = None,
        pin_grid_size: Optional[float] = None,
        allow_rotation: bool = True,
    ):
        if min(alpha, beta, gamma) < 0:
            raise ValueError("objective weights must be non-negative")
        if alpha == beta == gamma == 0:
            raise ValueError("at least one objective weight must be positive")
        if gamma > 0 and congestion_model is None:
            raise ValueError("gamma > 0 requires a congestion model")
        self.netlist = netlist
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.congestion_model = congestion_model
        if pin_grid_size is None:
            pin_grid_size = getattr(congestion_model, "grid_size", _DEFAULT_PIN_GRID)
        if pin_grid_size <= 0:
            raise ValueError(f"pin_grid_size must be positive, got {pin_grid_size}")
        self.pin_grid_size = float(pin_grid_size)
        self.allow_rotation = bool(allow_rotation)
        # Normalization constants; 1.0 until calibrate() runs.
        self._area_norm = 1.0
        self._wl_norm = 1.0
        self._cgt_norm = 1.0

    # -- calibration ----------------------------------------------------

    def calibrate(self, seed: int = 0, samples: int = 10) -> None:
        """Set normalization constants from random floorplans.

        Each term is divided by its mean over ``samples`` random Polish
        expressions, making the three terms commensurate before the
        weights apply.
        """
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        rng = random.Random(seed)
        areas, wls, cgts = [], [], []
        names = [m.name for m in self.netlist.modules]
        for _ in range(samples):
            expr = initial_expression(names, rng)
            for _ in range(3 * len(names)):
                expr = expr.random_neighbor(rng)
            b = self._raw_terms(expr)
            areas.append(b[0])
            wls.append(b[1])
            cgts.append(b[2])
        self._area_norm = max(sum(areas) / len(areas), 1e-12)
        self._wl_norm = max(sum(wls) / len(wls), 1e-12)
        self._cgt_norm = max(sum(cgts) / len(cgts), 1e-12)

    # -- evaluation -----------------------------------------------------

    def evaluate_expression(self, expression) -> CostBreakdown:
        """Pack, measure and combine: the annealer's hot path."""
        area, wl, cgt = self._raw_terms(expression)
        return self._combine(area, wl, cgt)

    def evaluate_floorplan(self, floorplan: Floorplan) -> CostBreakdown:
        """Cost of an already-packed floorplan (used by the
        sequence-pair annealer and the experiment reports)."""
        area, wl, cgt = self._floorplan_terms(floorplan)
        return self._combine(area, wl, cgt)

    def _raw_terms(self, expression):
        modules = {m.name: m for m in self.netlist.modules}
        floorplan = evaluate_polish(expression, modules, self.allow_rotation)
        return self._floorplan_terms(floorplan)

    def _floorplan_terms(self, floorplan: Floorplan):
        area = floorplan.area
        wl = 0.0
        cgt = 0.0
        if self.beta > 0 or self.gamma > 0:
            assignment = assign_pins(floorplan, self.netlist, self.pin_grid_size)
            if self.beta > 0:
                wl = total_two_pin_length(assignment.two_pin_nets)
            if self.gamma > 0:
                cgt = self.congestion_model.estimate(
                    floorplan.chip, assignment.two_pin_nets
                )
        return area, wl, cgt

    def _combine(self, area: float, wl: float, cgt: float) -> CostBreakdown:
        cost = (
            self.alpha * area / self._area_norm
            + self.beta * wl / self._wl_norm
            + self.gamma * cgt / self._cgt_norm
        )
        return CostBreakdown(area=area, wirelength=wl, congestion=cgt, cost=cost)
