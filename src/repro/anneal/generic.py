"""The representation-agnostic annealing loop.

All three floorplan representations (Polish expressions, sequence
pairs, B*-trees) anneal identically: Metropolis acceptance, geometric
cooling with sampled initial temperature, per-temperature snapshots.
This module hosts that loop once; each representation supplies three
functions:

* ``initial(rng) -> state``
* ``neighbor(state, rng) -> state``
* ``realize(state) -> Floorplan``

and gets back the same result/snapshot protocol the experiments
consume.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, TypeVar

from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.schedule import GeometricSchedule, initial_temperature
from repro.floorplan import Floorplan
from repro.perf import PerfRecorder

__all__ = ["Snapshot", "Result", "anneal"]

State = TypeVar("State")


@dataclass(frozen=True)
class Snapshot(Generic[State]):
    """The state at the end of one temperature step."""

    step: int
    temperature: float
    current_cost: float
    best_cost: float
    breakdown: CostBreakdown
    state: State


@dataclass
class Result(Generic[State]):
    """A finished annealing run over any representation."""

    floorplan: Floorplan
    state: State
    breakdown: CostBreakdown
    snapshots: List[Snapshot] = field(default_factory=list)
    n_moves: int = 0
    n_accepted: int = 0
    runtime_seconds: float = 0.0
    perf: Optional[PerfRecorder] = None

    @property
    def cost(self) -> float:
        return self.breakdown.cost

    @property
    def acceptance_ratio(self) -> float:
        return self.n_accepted / self.n_moves if self.n_moves else 0.0


def anneal(
    objective: FloorplanObjective,
    initial: Callable[[random.Random], State],
    neighbor: Callable[[State, random.Random], State],
    realize: Callable[[State], Floorplan],
    seed: int = 0,
    moves_per_temperature: int = 100,
    schedule: Optional[GeometricSchedule] = None,
    calibrate: bool = True,
    temperature_samples: int = 30,
    on_snapshot: Optional[Callable[[Snapshot], None]] = None,
    perf: Optional[PerfRecorder] = None,
) -> Result:
    """Run one full annealing schedule over an arbitrary representation.

    ``perf`` (created on demand) is wired into the objective and its
    congestion model, collects the per-phase breakdown of the whole run
    (packing / pin assignment / IR-grid build / mass evaluation /
    scoring), and comes back on :attr:`Result.perf`.
    """
    if moves_per_temperature < 1:
        raise ValueError("moves_per_temperature must be >= 1")
    schedule = schedule or GeometricSchedule()
    start_time = time.perf_counter()
    rng = random.Random(seed)
    perf = perf or PerfRecorder()
    objective.perf = perf
    model = getattr(objective, "congestion_model", None)
    if model is not None and hasattr(model, "perf"):
        model.perf = perf
    if calibrate:
        objective.calibrate(seed=seed)

    def evaluate(state: State) -> CostBreakdown:
        with perf.timeit("packing"):
            floorplan = realize(state)
        perf.count("evaluations")
        return objective.evaluate_floorplan(floorplan)

    current = initial(rng)
    current_eval = evaluate(current)
    objective.commit()
    best, best_eval = current, current_eval

    # Sample uphill deltas along a random walk to size T0.
    deltas = []
    walk, walk_cost = current, current_eval.cost
    for _ in range(temperature_samples):
        step_state = neighbor(walk, rng)
        step_eval = evaluate(step_state)
        objective.commit()
        deltas.append(step_eval.cost - walk_cost)
        walk, walk_cost = step_state, step_eval.cost
    t0 = initial_temperature(deltas)

    snapshots: List[Snapshot] = []
    n_moves = n_accepted = 0
    for step, temperature in enumerate(schedule.temperatures(t0)):
        for _ in range(moves_per_temperature):
            candidate = neighbor(current, rng)
            if candidate == current:
                continue
            candidate_eval = evaluate(candidate)
            delta = candidate_eval.cost - current_eval.cost
            n_moves += 1
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_eval = candidate, candidate_eval
                objective.commit()
                n_accepted += 1
                if current_eval.cost < best_eval.cost:
                    best, best_eval = current, current_eval
            else:
                # Roll the incremental evaluator back to the accepted
                # state so the next delta carries one move's dirt.
                objective.reject()
        snapshot = Snapshot(
            step=step,
            temperature=temperature,
            current_cost=current_eval.cost,
            best_cost=best_eval.cost,
            breakdown=current_eval,
            state=current,
        )
        snapshots.append(snapshot)
        if on_snapshot is not None:
            on_snapshot(snapshot)

    return Result(
        floorplan=realize(best),
        state=best,
        breakdown=best_eval,
        snapshots=snapshots,
        n_moves=n_moves,
        n_accepted=n_accepted,
        runtime_seconds=time.perf_counter() - start_time,
        perf=perf,
    )
