"""The representation-agnostic annealing loop.

All three floorplan representations (Polish expressions, sequence
pairs, B*-trees) anneal identically: Metropolis acceptance, geometric
cooling with sampled initial temperature, per-temperature snapshots.
This module hosts that loop once; each representation supplies three
functions:

* ``initial(rng) -> state``
* ``neighbor(state, rng) -> state``
* ``realize(state) -> Floorplan``

and gets back the same result/snapshot protocol the experiments
consume.

Fault tolerance: the loop optionally runs under a
:class:`~repro.engine.control.RunControl`, which it polls once per
move.  A requested stop (signal, deadline, supervisor) exits at the
next move boundary with the best-so-far result and ``stop_reason``
set; configured checkpoints are written at temperature-step boundaries
and on stop.  Passing a
:class:`~repro.engine.checkpoint.LoopState` as ``resume`` continues a
checkpointed run bit-identically: the RNG stream is restored verbatim,
the objective's calibration constants are reinstated, and the current
state is re-evaluated once (full evaluation reproduces the delta
path's numbers exactly -- see :mod:`repro.engine.checkpoint`) to warm
the incremental pipeline before the loop picks up where it left off.
"""

from __future__ import annotations

import math
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, TypeVar

from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.schedule import GeometricSchedule, initial_temperature
from repro.errors import CheckpointError
from repro.floorplan import Floorplan
from repro.perf import PerfRecorder

__all__ = ["Snapshot", "Result", "anneal"]

State = TypeVar("State")


@dataclass(frozen=True)
class Snapshot(Generic[State]):
    """The state at the end of one temperature step."""

    step: int
    temperature: float
    current_cost: float
    best_cost: float
    breakdown: CostBreakdown
    state: State


@dataclass
class Result(Generic[State]):
    """A finished annealing run over any representation.

    ``completed`` is False when the run wound down early on a
    cooperative stop; ``stop_reason`` then names the cause
    (``"signal"`` / ``"deadline"`` / ``"stop"``).  ``rng_state`` is the
    RNG's final state -- two runs that consumed identical random
    streams (e.g. an uninterrupted run and its crash+resume twin)
    finish with equal states.
    """

    floorplan: Floorplan
    state: State
    breakdown: CostBreakdown
    snapshots: List[Snapshot] = field(default_factory=list)
    n_moves: int = 0
    n_accepted: int = 0
    runtime_seconds: float = 0.0
    perf: Optional[PerfRecorder] = None
    completed: bool = True
    stop_reason: Optional[str] = None
    rng_state: Optional[object] = None

    @property
    def cost(self) -> float:
        return self.breakdown.cost

    @property
    def acceptance_ratio(self) -> float:
        return self.n_accepted / self.n_moves if self.n_moves else 0.0


def anneal(
    objective: FloorplanObjective,
    initial: Callable[[random.Random], State],
    neighbor: Callable[[State, random.Random], State],
    realize: Callable[[State], Floorplan],
    seed: int = 0,
    moves_per_temperature: int = 100,
    schedule: Optional[GeometricSchedule] = None,
    calibrate: bool = True,
    temperature_samples: int = 30,
    on_snapshot: Optional[Callable[[Snapshot], None]] = None,
    perf: Optional[PerfRecorder] = None,
    control=None,
    resume=None,
    t0_scale: float = 1.0,
    observer=None,
) -> Result:
    """Run one full annealing schedule over an arbitrary representation.

    ``perf`` (created on demand) is wired into the objective and its
    congestion model, collects the per-phase breakdown of the whole run
    (packing / pin assignment / IR-grid build / mass evaluation /
    scoring), and comes back on :attr:`Result.perf`.

    ``control`` (a :class:`~repro.engine.control.RunControl`) enables
    cooperative stop, deadlines, and checkpointing; ``resume`` (a
    :class:`~repro.engine.checkpoint.LoopState`) continues a
    checkpointed run instead of starting fresh (``seed`` and
    ``calibrate`` are then ignored -- the restored RNG state and norms
    take over).

    ``t0_scale`` multiplies the sampled initial temperature; search
    drivers use values below 1 to *continue* annealing from an already
    good state (an elite migrated from another restart) without the
    full high-temperature scramble destroying it.  A resumed run
    ignores it (``t0`` is restored from the checkpoint).

    ``observer`` (a :class:`repro.obs.RunObserver`) receives one
    ``step_complete`` call per temperature step plus warmup/anneal
    spans.  Every observer hook sits strictly between moves and never
    touches ``rng``, so an observed walk is bit-identical to an
    unobserved one.
    """
    if moves_per_temperature < 1:
        raise ValueError("moves_per_temperature must be >= 1")
    if t0_scale <= 0:
        raise ValueError(f"t0_scale must be positive, got {t0_scale}")
    schedule = schedule or GeometricSchedule()
    start_time = time.perf_counter()
    perf = perf or PerfRecorder()
    objective.perf = perf
    model = getattr(objective, "congestion_model", None)
    if model is not None and hasattr(model, "perf"):
        model.perf = perf

    def evaluate(state: State) -> CostBreakdown:
        with perf.timeit("packing"):
            floorplan = realize(state)
        perf.count("evaluations")
        return objective.evaluate_floorplan(floorplan)

    if resume is not None:
        rng = random.Random()
        rng.setstate(resume.rng_state)
        objective.set_norms(*resume.norms)
        t0 = resume.t0
        current = resume.current
        # One full evaluation rebuilds the incremental pipeline's
        # committed state; it reproduces the checkpointed numbers
        # exactly (full and delta paths agree -- see module docstring),
        # so the continuation is bit-identical.
        check = evaluate(current)
        objective.commit()
        if not math.isclose(
            check.cost, resume.current_eval.cost, rel_tol=1e-9, abs_tol=1e-9
        ):
            raise CheckpointError(
                f"checkpoint does not match this objective/netlist: "
                f"re-evaluated cost {check.cost!r} vs checkpointed "
                f"{resume.current_eval.cost!r}"
            )
        current_eval = resume.current_eval
        best, best_eval = resume.best, resume.best_eval
        snapshots: List[Snapshot] = list(resume.snapshots)
        n_moves, n_accepted = resume.n_moves, resume.n_accepted
        start_step, start_move = resume.step, resume.move
        prior_elapsed = resume.elapsed_seconds
    else:
        rng = random.Random(seed)
        with (
            observer.span("warmup")
            if observer is not None
            else nullcontext()
        ):
            if calibrate:
                objective.calibrate(seed=seed)
            current = initial(rng)
            current_eval = evaluate(current)
            objective.commit()
            best, best_eval = current, current_eval

            # Sample uphill deltas along a random walk to size T0.
            deltas = []
            walk, walk_cost = current, current_eval.cost
            for _ in range(temperature_samples):
                step_state = neighbor(walk, rng)
                step_eval = evaluate(step_state)
                objective.commit()
                deltas.append(step_eval.cost - walk_cost)
                walk, walk_cost = step_state, step_eval.cost
        t0 = initial_temperature(deltas) * t0_scale

        snapshots = []
        n_moves = n_accepted = 0
        start_step = start_move = 0
        prior_elapsed = 0.0

    def capture(next_step: int, next_move: int):
        """Freeze the loop for a checkpoint (lazy import: the engine
        layer sits above this module)."""
        from repro.engine.checkpoint import LoopState

        return LoopState(
            step=next_step,
            move=next_move,
            t0=t0,
            rng_state=rng.getstate(),
            current=current,
            current_eval=current_eval,
            best=best,
            best_eval=best_eval,
            n_moves=n_moves,
            n_accepted=n_accepted,
            snapshots=list(snapshots),
            elapsed_seconds=prior_elapsed
            + (time.perf_counter() - start_time),
            norms=objective.norms,
        )

    stop_reason: Optional[str] = None
    with (
        observer.span("anneal", t0=t0)
        if observer is not None
        else nullcontext()
    ):
        for step, temperature in enumerate(schedule.temperatures(t0)):
            if step < start_step:
                continue
            move_start = start_move if step == start_step else 0
            step_moves_base, step_accepted_base = n_moves, n_accepted
            for move_i in range(move_start, moves_per_temperature):
                if control is not None:
                    stop_reason = control.should_stop()
                    if stop_reason is not None:
                        break
                candidate = neighbor(current, rng)
                if candidate == current:
                    continue
                candidate_eval = evaluate(candidate)
                delta = candidate_eval.cost - current_eval.cost
                n_moves += 1
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    current, current_eval = candidate, candidate_eval
                    objective.commit()
                    n_accepted += 1
                    if current_eval.cost < best_eval.cost:
                        best, best_eval = current, current_eval
                else:
                    # Roll the incremental evaluator back to the accepted
                    # state so the next delta carries one move's dirt.
                    objective.reject()
            if stop_reason is not None:
                # Graceful wind-down: persist the exact mid-step position
                # (move_i never ran) so resume continues seamlessly.
                if control is not None:
                    control.write_checkpoint(capture(step, move_i))
                break
            snapshot = Snapshot(
                step=step,
                temperature=temperature,
                current_cost=current_eval.cost,
                best_cost=best_eval.cost,
                breakdown=current_eval,
                state=current,
            )
            snapshots.append(snapshot)
            if on_snapshot is not None:
                on_snapshot(snapshot)
            if observer is not None:
                # Between-move hook: reads the loop, never the RNG.
                observer.step_complete(
                    step=step,
                    temperature=temperature,
                    current_cost=current_eval.cost,
                    best_cost=best_eval.cost,
                    moves=n_moves - step_moves_base,
                    accepted=n_accepted - step_accepted_base,
                    total_moves=n_moves,
                    total_accepted=n_accepted,
                    elapsed=prior_elapsed
                    + (time.perf_counter() - start_time),
                    objective=objective,
                    floorplan=lambda: realize(current),
                )
            if control is not None and control.checkpoint_due(step + 1):
                control.write_checkpoint(capture(step + 1, 0))

    if stop_reason is None and control is not None:
        # Completion checkpoint: a post-run death loses nothing, and
        # resuming a finished run returns its result immediately.
        control.write_checkpoint(capture(schedule.max_steps + 1, 0))

    return Result(
        floorplan=realize(best),
        state=best,
        breakdown=best_eval,
        snapshots=snapshots,
        n_moves=n_moves,
        n_accepted=n_accepted,
        runtime_seconds=prior_elapsed + (time.perf_counter() - start_time),
        perf=perf,
        completed=stop_reason is None,
        stop_reason=stop_reason,
        rng_state=rng.getstate(),
    )
