"""Cooling schedules.

The paper's floorplanner follows Wong-Liu: start at a temperature where
most uphill moves are accepted, cool geometrically, stop when the
temperature is cold enough that the search has frozen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["GeometricSchedule", "initial_temperature"]


def initial_temperature(
    uphill_deltas: Sequence[float],
    initial_acceptance: float = 0.85,
) -> float:
    """Temperature at which the average uphill move is accepted with
    probability ``initial_acceptance``: ``T0 = avg_uphill / -ln(p)``.

    Degenerate sample sets (no uphill moves observed -- e.g. a cost
    plateau) fall back to 1.0 so annealing still runs.
    """
    if not 0.0 < initial_acceptance < 1.0:
        raise ValueError(
            f"initial_acceptance must be in (0, 1), got {initial_acceptance}"
        )
    uphill = [d for d in uphill_deltas if d > 0]
    if not uphill:
        return 1.0
    avg = sum(uphill) / len(uphill)
    return avg / -math.log(initial_acceptance)


@dataclass(frozen=True)
class GeometricSchedule:
    """Geometric cooling: ``T_{k+1} = cooling_rate * T_k``.

    ``freeze_ratio`` ends the schedule when the temperature falls below
    that fraction of the initial temperature, bounding the number of
    temperature steps at ``log(freeze_ratio) / log(cooling_rate)``
    (about 130 steps for the defaults).
    """

    cooling_rate: float = 0.9
    freeze_ratio: float = 1e-6
    max_steps: int = 200

    def __post_init__(self) -> None:
        if not 0.0 < self.cooling_rate < 1.0:
            raise ValueError(
                f"cooling_rate must be in (0, 1), got {self.cooling_rate}"
            )
        if not 0.0 < self.freeze_ratio < 1.0:
            raise ValueError(
                f"freeze_ratio must be in (0, 1), got {self.freeze_ratio}"
            )
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")

    def temperatures(self, initial: float) -> Iterator[float]:
        """Yield the cooling sequence starting at ``initial``."""
        if initial <= 0:
            raise ValueError(f"initial temperature must be positive, got {initial}")
        t = initial
        floor = initial * self.freeze_ratio
        for _ in range(self.max_steps):
            yield t
            t *= self.cooling_rate
            if t < floor:
                break

    def n_steps(self, initial: float = 1.0) -> int:
        """Number of temperature steps the schedule will produce."""
        return sum(1 for _ in self.temperatures(initial))
