"""Simulated-annealing floorplanner (Section 5; Wong & Liu [7]).

* :mod:`repro.anneal.schedule` -- cooling schedules and the uphill-
  sampling initial temperature;
* :mod:`repro.anneal.pipeline` -- the staged evaluation pipeline (pin
  assignment -> MST decomposition -> congestion -> cost aggregation)
  with its dirty-net delta state machine;
* :mod:`repro.anneal.cost` -- the normalized multi-objective cost
  ``alpha*Area + beta*Wirelength + gamma*Congestion``, a facade over
  the pipeline;
* :mod:`repro.anneal.annealer` -- the annealer over normalized Polish
  expressions, with per-temperature snapshots (Experiment 2 extracts
  them) and acceptance statistics.
"""

from repro.anneal.schedule import GeometricSchedule, initial_temperature
from repro.anneal.pipeline import (
    CongestionStage,
    CostAggregator,
    EvalState,
    EvaluationPipeline,
    MstStage,
    PinStage,
    PinTopology,
)
from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.annealer import (
    AnnealResult,
    FloorplanAnnealer,
    TemperatureSnapshot,
)
from repro.anneal.sp_annealer import (
    SequencePairAnnealer,
    SequencePairResult,
    SequencePairSnapshot,
)
from repro.anneal.btree_annealer import (
    BStarTreeAnnealer,
    BStarTreeResult,
    BStarTreeSnapshot,
)
from repro.anneal.generic import anneal

__all__ = [
    "GeometricSchedule",
    "initial_temperature",
    "PinTopology",
    "EvalState",
    "PinStage",
    "MstStage",
    "CongestionStage",
    "CostAggregator",
    "EvaluationPipeline",
    "CostBreakdown",
    "FloorplanObjective",
    "AnnealResult",
    "FloorplanAnnealer",
    "TemperatureSnapshot",
    "SequencePairAnnealer",
    "SequencePairResult",
    "SequencePairSnapshot",
    "BStarTreeAnnealer",
    "BStarTreeResult",
    "BStarTreeSnapshot",
    "anneal",
]
