"""Simulated-annealing floorplanner (Section 5; Wong & Liu [7]).

* :mod:`repro.anneal.schedule` -- cooling schedules and the uphill-
  sampling initial temperature;
* :mod:`repro.anneal.cost` -- the normalized multi-objective cost
  ``alpha*Area + beta*Wirelength + gamma*Congestion``;
* :mod:`repro.anneal.annealer` -- the annealer over normalized Polish
  expressions, with per-temperature snapshots (Experiment 2 extracts
  them) and acceptance statistics.
"""

from repro.anneal.schedule import GeometricSchedule, initial_temperature
from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.annealer import (
    AnnealResult,
    FloorplanAnnealer,
    TemperatureSnapshot,
)
from repro.anneal.sp_annealer import (
    SequencePairAnnealer,
    SequencePairResult,
    SequencePairSnapshot,
)
from repro.anneal.btree_annealer import (
    BStarTreeAnnealer,
    BStarTreeResult,
    BStarTreeSnapshot,
)
from repro.anneal.generic import anneal

__all__ = [
    "GeometricSchedule",
    "initial_temperature",
    "CostBreakdown",
    "FloorplanObjective",
    "AnnealResult",
    "FloorplanAnnealer",
    "TemperatureSnapshot",
    "SequencePairAnnealer",
    "SequencePairResult",
    "SequencePairSnapshot",
    "BStarTreeAnnealer",
    "BStarTreeResult",
    "BStarTreeSnapshot",
    "anneal",
]
