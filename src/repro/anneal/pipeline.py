"""Staged evaluation pipeline behind the floorplan objective.

:class:`~repro.anneal.cost.FloorplanObjective` is a thin facade; the
work happens here, split into four explicit stages that share one
columnar :class:`EvalState`:

1. :class:`PinStage` -- perimeter pin placement and lattice snapping,
   vectorized over every (net, terminal) pair at once;
2. :class:`MstStage` -- MST decomposition of every net into flat placed
   2-pin edge arrays (and the weighted wirelength over them);
3. :class:`CongestionStage` -- congestion estimation over the placed
   edges via any :class:`~repro.congestion.base.CongestionModel`;
4. :class:`CostAggregator` -- normalization and the weighted
   ``alpha * Area + beta * Wirelength + gamma * Congestion`` combine.

:class:`EvaluationPipeline` wires the stages together and owns the
*dirty-net delta* state machine: it diffs snapped pins against the last
evaluated state, rewrites only the edge slots of nets owning a moved
pin, and skips congestion entirely when neither the chip outline nor
any placed edge changed.  The annealer's transaction protocol
(:meth:`EvaluationPipeline.commit` / :meth:`EvaluationPipeline.reject`)
keeps the accepted state's arrays immutable so a refused move rolls
back by reference swap, and ``strict_incremental`` re-runs the full
path after every delta evaluation, asserting agreement to 1e-12.

The pipeline holds no module-global mutable state: memoization lives in
the :class:`~repro.perf.context.CacheContext` owned by the objective
(or the engine above it) and injected into the congestion model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.congestion.base import CongestionModel
from repro.floorplan import Floorplan
from repro.metrics import total_two_pin_length
from repro.netlist import Netlist, TwoPinArrays, batched_mst_edges
from repro.perf import NULL_RECORDER, PerfRecorder
from repro.pins import assign_pins, perimeter_fractions

__all__ = [
    "CostBreakdown",
    "PinTopology",
    "EvalState",
    "PinStage",
    "MstStage",
    "CongestionStage",
    "CostAggregator",
    "EvaluationPipeline",
]


@dataclass(frozen=True)
class CostBreakdown:
    """One floorplan's objective terms and the combined scalar cost."""

    area: float
    wirelength: float
    congestion: float
    cost: float

    def to_json(self) -> dict:
        """A JSON-serializable image (trace events, progress lines)."""
        return {
            "area": self.area,
            "wirelength": self.wirelength,
            "congestion": self.congestion,
            "cost": self.cost,
        }


class PinTopology:
    """Per-circuit pin and edge topology, flattened for vectorization.

    Pins: one row per (net, terminal) pair, in netlist order -- the
    terminal's module index and its perimeter-walk fraction, with
    ``starts`` delimiting each net's rows.  Edges: a net of ``k`` pins
    always decomposes into exactly ``k - 1`` MST edges, so the flat
    edge layout (``edge_starts``, ``edge_weights``) is fixed too, and
    a dirty net rewrites its slots in place.  2-pin nets (``simple_*``)
    fill their single edge by pure array gather; only nets of 3+ pins
    (``multi``) need a per-net MST.  Everything here is
    floorplan-invariant.
    """

    __slots__ = (
        "module_names",
        "key_set",
        "term_idx",
        "frac",
        "starts",
        "n_edges_total",
        "edge_weights",
        "edge_owner",
        "simple_pin_a",
        "simple_slot",
        "simple_mask",
        "multi_groups",
    )

    def __init__(self, netlist: Netlist, module_names):
        self.module_names = list(module_names)
        self.key_set = set(self.module_names)
        fractions = perimeter_fractions(netlist, self.module_names)
        index = {name: i for i, name in enumerate(self.module_names)}
        term_idx: List[int] = []
        frac: List[float] = []
        starts = [0]
        edge_weights: List[float] = []
        edge_owner: List[int] = []
        simple_pin_a: List[int] = []
        simple_slot: List[int] = []
        simple_mask: List[bool] = []
        # (net index, first pin row, first edge slot) of each 3+-pin
        # net, bucketed by pin count so all same-size MSTs batch.
        by_k: dict = {}
        for i, net in enumerate(netlist.nets):
            pin_s = len(term_idx)
            for t in net.terminals:
                term_idx.append(index[t])
                frac.append(fractions[(net.name, t)] % 1.0)
            starts.append(len(term_idx))
            k = len(net.terminals)
            slot = len(edge_weights)
            edge_weights.extend([net.weight] * max(k - 1, 0))
            edge_owner.extend([i] * max(k - 1, 0))
            if k == 2:
                simple_pin_a.append(pin_s)
                simple_slot.append(slot)
                simple_mask.append(True)
            else:
                by_k.setdefault(k, []).append((i, pin_s, slot))
                simple_mask.append(False)
        self.term_idx = np.asarray(term_idx, dtype=np.intp)
        self.frac = np.asarray(frac)
        self.starts = np.asarray(starts, dtype=np.intp)
        self.n_edges_total = len(edge_weights)
        self.edge_weights = np.asarray(edge_weights)
        # Owning net of each flat edge slot: composing with a per-net
        # dirty mask yields the dirty *edge* rows the congestion
        # ledger's O(dirty) delta path consumes.
        self.edge_owner = np.asarray(edge_owner, dtype=np.intp)
        self.simple_pin_a = np.asarray(simple_pin_a, dtype=np.intp)
        self.simple_slot = np.asarray(simple_slot, dtype=np.intp)
        self.simple_mask = np.asarray(simple_mask, dtype=bool)
        self.multi_groups = [
            (
                k,
                np.asarray([g[0] for g in group], dtype=np.intp),
                np.asarray([g[1] for g in group], dtype=np.intp),
                np.asarray([g[2] for g in group], dtype=np.intp),
            )
            for k, group in sorted(by_k.items())
        ]


class EvalState:
    """The previously evaluated floorplan, decomposed for delta reuse.

    Columnar: holds the snapped pin coordinate arrays (for dirty
    detection) and the flat placed-edge arrays the congestion /
    wirelength kernels consume directly -- no :class:`TwoPinNet`
    objects anywhere in the hot loop.
    """

    __slots__ = (
        "placements",
        "chip",
        "pins_x",
        "pins_y",
        "edges",
        "wirelength",
        "congestion",
        "congestion_ledger",
    )

    def __init__(
        self,
        placements,
        chip,
        pins_x: np.ndarray,
        pins_y: np.ndarray,
        edges: TwoPinArrays,
        wirelength: float,
        congestion: float,
        congestion_ledger=None,
    ):
        self.placements = placements
        self.chip = chip
        self.pins_x = pins_x
        self.pins_y = pins_y
        self.edges = edges
        self.wirelength = wirelength
        self.congestion = congestion
        # The committed-grid CongestionLedger recorded by the last
        # congestion evaluation of this state (None when the model
        # carries none).  Ledgers are immutable by convention, so
        # states share them by reference.
        self.congestion_ledger = congestion_ledger

    def clone_arrays(self) -> "EvalState":
        """A state whose pin/edge arrays are private copies.

        The delta path mutates edge slots in place; cloning first keeps
        the committed state intact so a rejected move can roll back.
        """
        e = self.edges
        return EvalState(
            placements=self.placements,
            chip=self.chip,
            pins_x=self.pins_x.copy(),
            pins_y=self.pins_y.copy(),
            edges=TwoPinArrays(
                e.p1x.copy(), e.p1y.copy(), e.p2x.copy(), e.p2y.copy(),
                e.weights,
            ),
            wirelength=self.wirelength,
            congestion=self.congestion,
            congestion_ledger=self.congestion_ledger,
        )


class PinStage:
    """Stage 1: perimeter pin placement and lattice snapping.

    Vectorized replica of ``perimeter_point`` + ``snap_to_lattice``
    over all pins at once -- each arithmetic step mirrors the scalar
    helpers operation-for-operation, so the coordinates are
    bit-identical to the seed pipeline's (``strict_incremental``
    checks this every evaluation).
    """

    __slots__ = ("pin_grid_size",)

    def __init__(self, pin_grid_size: float):
        if pin_grid_size <= 0:
            raise ValueError(
                f"pin_grid_size must be positive, got {pin_grid_size}"
            )
        self.pin_grid_size = float(pin_grid_size)

    def compute(
        self, floorplan: Floorplan, topology: PinTopology
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Every (net, terminal) pin of ``floorplan``, as flat arrays."""
        placements = floorplan.placements
        chip = floorplan.chip
        n = len(topology.module_names)
        mx_lo = np.empty(n)
        my_lo = np.empty(n)
        mx_hi = np.empty(n)
        my_hi = np.empty(n)
        for i, name in enumerate(topology.module_names):
            r = placements[name]
            mx_lo[i] = r.x_lo
            my_lo[i] = r.y_lo
            mx_hi[i] = r.x_hi
            my_hi[i] = r.y_hi
        w = mx_hi - mx_lo
        h = my_hi - my_lo
        per = 2.0 * (w + h)

        idx = topology.term_idx
        x_lo = mx_lo[idx]
        x_hi = mx_hi[idx]
        y_lo = my_lo[idx]
        y_hi = my_hi[idx]
        w_g = w[idx]
        h_g = h[idx]

        # Walk the perimeter: the scalar code subtracts each traversed
        # side in sequence, branching on <=; np.where chains replicate
        # the branch outcomes exactly.  A zero-perimeter module lands in
        # the first branch at its lower-left corner, which equals its
        # center.
        d1 = topology.frac * per[idx]
        c1 = d1 <= w_g
        d2 = d1 - w_g
        c2 = d2 <= h_g
        d3 = d2 - h_g
        c3 = d3 <= w_g
        d4 = d3 - w_g
        px = np.where(
            c1, x_lo + d1, np.where(c2, x_hi, np.where(c3, x_hi - d3, x_lo))
        )
        py = np.where(
            c1, y_lo, np.where(c2, y_lo + d2, np.where(c3, y_hi, y_hi - d4))
        )

        # Snap to the chip-anchored lattice, then clamp on-chip.
        # np.rint rounds half-to-even exactly like Python's round().
        gs = self.pin_grid_size
        sx = chip.x_lo + np.rint((px - chip.x_lo) / gs) * gs
        sy = chip.y_lo + np.rint((py - chip.y_lo) / gs) * gs
        np.clip(sx, chip.x_lo, chip.x_hi, out=sx)
        np.clip(sy, chip.y_lo, chip.y_hi, out=sy)
        return sx, sy


class MstStage:
    """Stage 2: MST decomposition into flat placed 2-pin edge arrays.

    Also owns the weighted Manhattan wirelength over those arrays --
    wirelength is a pure reduction of the stage's output, not a stage
    of its own.

    ``backend`` is an optional :class:`repro.backend.KernelBackend`;
    when it carries MST / wirelength kernels, the per-group Prim
    decomposition and the wirelength reduction go through them (the MST
    edge lists are bit-identical either way -- both implementations
    share first-minimum tie-breaking).
    """

    __slots__ = ("backend",)

    def __init__(self, backend=None):
        self.backend = backend

    def fill_simple(
        self, topology: PinTopology, edges: TwoPinArrays, sx, sy, which=None
    ) -> None:
        """Write 2-pin nets' edges straight from the pin arrays.

        ``which`` selects a subset of the simple nets (positions into
        ``topology.simple_pin_a``); ``None`` fills them all.  Pure
        array gather/scatter -- no per-net Python.
        """
        pa = topology.simple_pin_a
        slot = topology.simple_slot
        if which is not None:
            pa = pa[which]
            slot = slot[which]
        edges.p1x[slot] = sx[pa]
        edges.p1y[slot] = sy[pa]
        edges.p2x[slot] = sx[pa + 1]
        edges.p2y[slot] = sy[pa + 1]

    def fill_multi_group(
        self, edges: TwoPinArrays, sx, sy, k: int, pin_s: np.ndarray, slot: np.ndarray
    ) -> None:
        """Write a batch of k-pin nets' MST edges into their flat slots.

        :func:`batched_mst_edges` reproduces ``mst_edges``' arithmetic
        and tie-breaking bit-for-bit, so the edge set is identical to
        the object pipeline's ``decompose_to_two_pin``.
        """
        rows = pin_s[:, None] + np.arange(k)
        xs = sx[rows]
        ys = sy[rows]
        kern = None if self.backend is None else self.backend.mst_kernel
        if kern is not None:
            i = np.empty((len(pin_s), k - 1), dtype=np.int64)
            j = np.empty((len(pin_s), k - 1), dtype=np.int64)
            kern(xs, ys, i, j)
        else:
            i, j = batched_mst_edges(xs, ys)
        m = np.arange(len(pin_s))[:, None]
        slots = slot[:, None] + np.arange(k - 1)
        edges.p1x[slots] = xs[m, i]
        edges.p1y[slots] = ys[m, i]
        edges.p2x[slots] = xs[m, j]
        edges.p2y[slots] = ys[m, j]

    def fill_all(
        self, topology: PinTopology, edges: TwoPinArrays, sx, sy
    ) -> None:
        """Decompose every net of the circuit into its edge slots."""
        self.fill_simple(topology, edges, sx, sy)
        for k, _, pin_s, slot in topology.multi_groups:
            self.fill_multi_group(edges, sx, sy, k, pin_s, slot)

    def fill_dirty(
        self, topology: PinTopology, edges: TwoPinArrays, sx, sy, dirty
    ) -> int:
        """Rewrite exactly the edge slots of nets owning a moved pin.

        ``dirty`` is a per-net boolean mask; a net none of whose pins
        moved keeps its placed edge coordinates verbatim.  Returns the
        number of nets redone (the ``nets_redone`` perf counter).
        """
        simple_dirty = np.nonzero(dirty[topology.simple_mask])[0]
        if simple_dirty.size:
            self.fill_simple(topology, edges, sx, sy, simple_dirty)
        redone = int(simple_dirty.size)
        for k, net_idx, pin_s, slot in topology.multi_groups:
            sel = np.nonzero(dirty[net_idx])[0]
            if sel.size:
                self.fill_multi_group(edges, sx, sy, k, pin_s[sel], slot[sel])
                redone += int(sel.size)
        return redone

    def wirelength(self, topology: PinTopology, edges: TwoPinArrays) -> float:
        """Weighted Manhattan length of every placed edge."""
        kern = (
            None if self.backend is None else self.backend.wirelength_kernel
        )
        if kern is not None:
            return float(
                kern(
                    topology.edge_weights,
                    edges.p1x, edges.p1y, edges.p2x, edges.p2y,
                )
            )
        return float(
            (
                topology.edge_weights
                * (
                    np.abs(edges.p2x - edges.p1x)
                    + np.abs(edges.p2y - edges.p1y)
                )
            ).sum()
        )


class CongestionStage:
    """Stage 3: congestion estimation over the placed edges.

    Thin adapter over any :class:`~repro.congestion.base.CongestionModel`;
    ``model is None`` means the objective's ``gamma`` is zero and the
    stage is inert (``enabled`` is False, estimates are never asked
    for).  The model's memoization comes from the
    :class:`~repro.perf.context.CacheContext` the objective injected
    into it -- the stage itself is stateless.
    """

    __slots__ = ("model",)

    def __init__(self, model: Optional[CongestionModel] = None):
        self.model = model

    @property
    def enabled(self) -> bool:
        """Whether congestion participates in the objective."""
        return self.model is not None

    def estimate_arrays(self, chip, edges: TwoPinArrays) -> float:
        """Congestion cost of flat placed-edge arrays (the hot path)."""
        return self.model.estimate_arrays(chip, edges)

    def estimate_arrays_ledger(self, chip, edges: TwoPinArrays, ledger, dirty):
        """Ledger-carrying congestion cost: ``(score, new_ledger)``.

        ``ledger`` / ``dirty`` describe the previously evaluated state
        (see :meth:`CongestionModel.estimate_arrays_ledger`); models
        without a delta path return ``(score, None)``.
        """
        return self.model.estimate_arrays_ledger(chip, edges, ledger, dirty)

    def estimate(self, chip, two_pin_nets) -> float:
        """Congestion cost of ``TwoPinNet`` objects (the seed path and
        the ``strict_incremental`` reference)."""
        return self.model.estimate(chip, two_pin_nets)


class CostAggregator:
    """Stage 4: normalization and the weighted cost combine.

    Each term is divided by its calibrated magnitude over random
    floorplans so ``alpha`` / ``beta`` / ``gamma`` express relative
    importance rather than unit conversions; norms default to 1.0 until
    :meth:`set_norms` runs.
    """

    __slots__ = ("alpha", "beta", "gamma", "area_norm", "wl_norm", "cgt_norm")

    def __init__(self, alpha: float, beta: float, gamma: float):
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.area_norm = 1.0
        self.wl_norm = 1.0
        self.cgt_norm = 1.0

    def set_norms(self, area: float, wl: float, cgt: float) -> None:
        """Install calibrated per-term magnitudes (floored at 1e-12)."""
        self.area_norm = max(area, 1e-12)
        self.wl_norm = max(wl, 1e-12)
        self.cgt_norm = max(cgt, 1e-12)

    def combine(self, area: float, wl: float, cgt: float) -> CostBreakdown:
        """Normalize, weight and sum the three terms."""
        cost = (
            self.alpha * area / self.area_norm
            + self.beta * wl / self.wl_norm
            + self.gamma * cgt / self.cgt_norm
        )
        return CostBreakdown(area=area, wirelength=wl, congestion=cgt, cost=cost)


class EvaluationPipeline:
    """Stages 1-4 plus the dirty-net delta state machine.

    Owns the columnar :class:`EvalState` pair behind the annealer's
    transaction protocol: ``state`` is the last evaluated floorplan,
    ``committed`` the last accepted one.  The delta path never mutates
    the committed state's arrays (candidates evaluate into a private
    clone), so :meth:`reject` rolls back by reference swap.

    The ``perf`` attribute accepts a :class:`~repro.perf.PerfRecorder`;
    phases ``pin_assignment`` / ``wirelength`` / ``congestion`` and the
    ``eval_full`` / ``eval_delta`` / ``eval_unchanged`` /
    ``congestion_skipped`` / ``nets_redone`` counters feed the
    annealing perf report.
    """

    def __init__(
        self,
        netlist: Netlist,
        pins: PinStage,
        mst: MstStage,
        congestion: CongestionStage,
        aggregator: CostAggregator,
        incremental: bool = True,
        strict_incremental: bool = False,
    ):
        self.netlist = netlist
        self.pins = pins
        self.mst = mst
        self.congestion = congestion
        self.aggregator = aggregator
        self.incremental = bool(incremental)
        self.strict_incremental = bool(strict_incremental)
        self.perf: PerfRecorder = NULL_RECORDER
        self.state: Optional[EvalState] = None
        self.committed: Optional[EvalState] = None
        self.topology: Optional[PinTopology] = None
        # Retired EvalState recycled as the next candidate's scratch
        # buffers: the annealing loop then allocates zero edge arrays
        # per move in steady state (the pair just alternates roles).
        self._spare: Optional[EvalState] = None

    # -- annealer transaction protocol ---------------------------------

    def invalidate(self) -> None:
        """Drop the delta-path state (force the next evaluation full)."""
        self.state = None
        self.committed = None
        self._spare = None

    def commit(self) -> None:
        """Mark the last evaluated floorplan as the annealer's accepted
        state.  Subsequent delta evaluations diff against it without
        mutating its arrays, so :meth:`reject` can roll back."""
        old = self.committed
        if old is not None and old is not self.state:
            self._spare = old
        self.committed = self.state

    def reject(self) -> None:
        """The last evaluated floorplan was refused: restore the
        accepted state so the next delta diffs against it (one move's
        worth of dirty nets, not two)."""
        if self.state is not None and self.state is not self.committed:
            self._spare = self.state
        self.state = self.committed

    # -- evaluation -----------------------------------------------------

    def floorplan_terms(
        self, floorplan: Floorplan
    ) -> Tuple[float, float, float]:
        """``(area, wirelength, congestion)`` of a placed floorplan,
        via the delta path when enabled."""
        agg = self.aggregator
        area = floorplan.area
        if agg.beta == 0 and agg.gamma == 0:
            return area, 0.0, 0.0
        if not self.incremental:
            wl, cgt = self.full_terms(floorplan)
            return area, wl, cgt
        wl, cgt = self._delta_terms(floorplan)
        if self.strict_incremental:
            self._assert_delta_matches_full(floorplan, wl, cgt)
        # The delta path maintains wirelength partials regardless of
        # beta (they cost nothing extra); the reported term honours the
        # seed behaviour of beta == 0 -> 0.0.
        return area, (wl if agg.beta > 0 else 0.0), cgt

    def full_terms(self, floorplan: Floorplan) -> Tuple[float, float]:
        """Wirelength and congestion from scratch (seed behaviour),
        through the object pin/net pipeline; leaves no delta state."""
        with self.perf.timeit("pin_assignment"):
            assignment = assign_pins(
                floorplan, self.netlist, self.pins.pin_grid_size
            )
        wl = 0.0
        cgt = 0.0
        if self.aggregator.beta > 0:
            with self.perf.timeit("wirelength"):
                wl = total_two_pin_length(assignment.two_pin_nets)
        if self.aggregator.gamma > 0:
            with self.perf.timeit("congestion"):
                cgt = self.congestion.estimate(
                    floorplan.chip, assignment.two_pin_nets
                )
        return wl, cgt

    # -- delta path -----------------------------------------------------

    def _topology_for(self, floorplan: Floorplan) -> PinTopology:
        topology = self.topology
        if topology is None or floorplan.placements.keys() != topology.key_set:
            topology = PinTopology(self.netlist, floorplan.module_names)
            self.topology = topology
            self.state = None
            self.committed = None
            self._spare = None
        return topology

    def _acquire_candidate(self, prev: EvalState) -> EvalState:
        """A candidate state whose edge arrays are private copies of
        ``prev``'s -- recycled from the spare when one fits.

        Only the four edge-coordinate arrays are copied (``np.copyto``
        into the spare's buffers): the pin arrays are replaced wholesale
        by the freshly computed snap results before ``_delta_terms``
        returns, so copying them -- as :meth:`EvalState.clone_arrays`
        must for the general case -- would be pure churn.
        """
        spare = self._spare
        if (
            spare is None
            or spare is prev
            or len(spare.edges.p1x) != len(prev.edges.p1x)
        ):
            return prev.clone_arrays()
        self._spare = None
        src = prev.edges
        dst = spare.edges
        np.copyto(dst.p1x, src.p1x)
        np.copyto(dst.p1y, src.p1y)
        np.copyto(dst.p2x, src.p2x)
        np.copyto(dst.p2y, src.p2y)
        spare.placements = prev.placements
        spare.chip = prev.chip
        spare.pins_x = prev.pins_x
        spare.pins_y = prev.pins_y
        spare.wirelength = prev.wirelength
        spare.congestion = prev.congestion
        spare.congestion_ledger = prev.congestion_ledger
        return spare

    def _full_state(self, floorplan: Floorplan) -> Tuple[float, float]:
        """Full evaluation that also (re)builds the delta-path state."""
        topology = self._topology_for(floorplan)
        n_edges = topology.n_edges_total
        edges = TwoPinArrays(
            np.empty(n_edges),
            np.empty(n_edges),
            np.empty(n_edges),
            np.empty(n_edges),
            topology.edge_weights,
        )
        with self.perf.timeit("pin_assignment"):
            sx, sy = self.pins.compute(floorplan, topology)
            self.mst.fill_all(topology, edges, sx, sy)
        with self.perf.timeit("wirelength"):
            wl = self.mst.wirelength(topology, edges)
        cgt = 0.0
        ledger = None
        if self.aggregator.gamma > 0:
            with self.perf.timeit("congestion"):
                cgt, ledger = self.congestion.estimate_arrays_ledger(
                    floorplan.chip, edges, None, None
                )
        self.state = EvalState(
            placements=floorplan.placements,
            chip=floorplan.chip,
            pins_x=sx,
            pins_y=sy,
            edges=edges,
            wirelength=wl,
            congestion=cgt,
            congestion_ledger=ledger,
        )
        self.perf.count("eval_full")
        return wl, cgt

    def _delta_terms(self, floorplan: Floorplan) -> Tuple[float, float]:
        prev = self.state
        topology = self.topology
        placements = floorplan.placements
        if (
            prev is None
            or topology is None
            or placements.keys() != topology.key_set
        ):
            # Different module set: the flattened pin topology no longer
            # lines up -- restart.
            return self._full_state(floorplan)

        chip = floorplan.chip
        chip_changed = chip != prev.chip
        with self.perf.timeit("pin_assignment"):
            sx, sy = self.pins.compute(floorplan, topology)
            changed = (sx != prev.pins_x) | (sy != prev.pins_y)
            pins_changed = bool(changed.any())
            if not pins_changed and not chip_changed:
                # Every snapped pin and the outline held still (modules
                # may have shifted by less than the snap resolution):
                # wirelength and congestion are untouched.
                self.perf.count("eval_unchanged")
                if self.aggregator.gamma > 0:
                    self.perf.count("congestion_skipped")
                return prev.wirelength, prev.congestion
            if prev is self.committed:
                # Never mutate the accepted state's arrays: evaluate the
                # candidate into a private copy (recycled from the spare
                # buffers when possible) so reject() rolls back by
                # reference swap.
                state = self._acquire_candidate(prev)
            else:
                state = prev
            edges = state.edges
            if pins_changed:
                dirty = np.logical_or.reduceat(changed, topology.starts[:-1])
                self.perf.count(
                    "nets_redone",
                    self.mst.fill_dirty(topology, edges, sx, sy, dirty),
                )
        self.perf.count("eval_delta")

        with self.perf.timeit("wirelength"):
            wl = (
                self.mst.wirelength(topology, edges)
                if pins_changed
                else prev.wirelength
            )

        if self.aggregator.gamma == 0:
            cgt = 0.0
        else:
            # A changed pin always changes its net's edge geometry, and
            # a changed outline moves the routing-range clamp, so any
            # fall-through here must re-estimate.  The dirty *edge* set
            # (every edge owned by a dirty net) plus the previously
            # evaluated state's ledger lets the model take its O(dirty)
            # delta path when the merged grid held still; a chip change
            # invalidates every edge's clamp, so it forces the full
            # path by withholding the dirty set.
            if pins_changed and not chip_changed:
                dirty_edges = np.nonzero(dirty[topology.edge_owner])[0]
            else:
                dirty_edges = None
            with self.perf.timeit("congestion"):
                cgt, ledger = self.congestion.estimate_arrays_ledger(
                    chip, edges, prev.congestion_ledger, dirty_edges
                )
            state.congestion_ledger = ledger

        state.placements = placements
        state.chip = chip
        state.pins_x = sx
        state.pins_y = sy
        state.wirelength = wl
        state.congestion = cgt
        self.state = state
        return wl, cgt

    def _assert_delta_matches_full(
        self, floorplan: Floorplan, wl: float, cgt: float
    ) -> None:
        assignment = assign_pins(
            floorplan, self.netlist, self.pins.pin_grid_size
        )
        full_wl = total_two_pin_length(assignment.two_pin_nets)
        if not math.isclose(wl, full_wl, rel_tol=1e-12, abs_tol=1e-12):
            raise AssertionError(
                f"incremental wirelength {wl!r} != full {full_wl!r}"
            )
        if self.aggregator.gamma > 0:
            full_cgt = self.congestion.estimate(
                floorplan.chip, assignment.two_pin_nets
            )
            if not math.isclose(cgt, full_cgt, rel_tol=1e-12, abs_tol=1e-12):
                raise AssertionError(
                    f"incremental congestion {cgt!r} != full {full_cgt!r}"
                )
