"""The crash-safe job journal: append-only WAL + compacted snapshots.

Every queue mutation is journaled **before** it touches memory
(write-ahead logging): one JSON record per line, appended through
:func:`repro.ioutil.atomic_append_text` (a single ``O_APPEND``
``os.write`` + fsync), so a ``kill -9`` between any two instructions
leaves the journal holding a readable prefix of complete records --
the mutation either fully happened or never happened.

Against *torn* writes (power loss, a disk that lies about fsync, or
the injected ``journal write crash`` fault that deliberately writes a
partial line), every record carries a CRC-32 over its canonical body::

    {"seq": 17, "op": "transition", "data": {...}, "crc": 2873410954}

Replay walks the file line by line and stops at the first line that
fails to parse, fails its CRC, or breaks the strictly-increasing
``seq`` order; everything from that line on is the torn tail and is
discarded.  The property suite truncates a journal at every byte
boundary of its last record and asserts replay always lands on a
consistent prefix state.

Unbounded journals would make startup O(lifetime), so the queue
periodically **compacts**: the full queue state goes to
``snapshot.json`` (atomically, with the last applied ``seq``) and the
journal is atomically truncated.  A crash between those two steps is
harmless -- replay skips records with ``seq <= snapshot.applied_seq``,
so the surviving journal records are applied exactly once.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.ioutil import atomic_append_text, atomic_write_bytes, atomic_write_json

__all__ = [
    "JOURNAL_VERSION",
    "JournalRecord",
    "record_crc",
    "encode_record",
    "decode_line",
    "append_record",
    "replay_journal",
    "write_snapshot",
    "load_snapshot",
    "truncate_journal",
]

JOURNAL_VERSION = 1


def record_crc(seq: int, op: str, data: Dict[str, Any]) -> int:
    """CRC-32 over the record's canonical body.

    The body is serialized with sorted keys and fixed separators, so
    the checksum is stable across Python versions and dict insertion
    orders.
    """
    body = json.dumps(
        [seq, op, data], sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(body.encode("utf-8"))


@dataclass(frozen=True)
class JournalRecord:
    """One validated journal record."""

    seq: int
    op: str
    data: Dict[str, Any]


def encode_record(record: JournalRecord) -> str:
    """The record's one-line wire form (newline-terminated)."""
    payload = {
        "seq": record.seq,
        "op": record.op,
        "data": record.data,
        "crc": record_crc(record.seq, record.op, record.data),
    }
    return json.dumps(payload, separators=(",", ":")) + "\n"


def decode_line(line: bytes) -> JournalRecord:
    """Parse and verify one journal line.

    Raises ``ValueError`` on anything short of a complete, checksummed
    record -- the caller treats that as the torn tail.
    """
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("journal line is not an object")
    try:
        seq = int(payload["seq"])
        op = str(payload["op"])
        data = payload["data"]
        crc = int(payload["crc"])
    except (KeyError, TypeError, ValueError):
        raise ValueError("journal line is missing required fields")
    if not isinstance(data, dict):
        raise ValueError("journal record data is not an object")
    if record_crc(seq, op, data) != crc:
        raise ValueError(f"journal record seq={seq} fails its checksum")
    return JournalRecord(seq=seq, op=op, data=data)


def append_record(path: Union[str, Path], record: JournalRecord) -> None:
    """Durably append one record (single fsynced ``O_APPEND`` write)."""
    atomic_append_text(path, encode_record(record))


def replay_journal(
    path: Union[str, Path], after_seq: int = 0
) -> Tuple[List[JournalRecord], int]:
    """Read every intact record with ``seq > after_seq``, in order.

    Returns ``(records, discarded_lines)``.  Reading stops at the
    first unparsable, checksum-failing, or out-of-order line; that
    line and everything after it count as discarded (the torn tail a
    crash mid-append leaves behind).  A missing file is an empty
    journal.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    raw = path.read_bytes()
    records: List[JournalRecord] = []
    lines = raw.split(b"\n")
    last_seq = 0
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = decode_line(line)
        except ValueError:
            return records, sum(1 for t in lines[i:] if t.strip())
        if record.seq <= last_seq:
            # Sequence numbers strictly increase within one journal; a
            # regression means the tail predates the last compaction's
            # truncate (or is corrupt) -- either way it is not ours.
            return records, sum(1 for t in lines[i:] if t.strip())
        last_seq = record.seq
        if record.seq > after_seq:
            records.append(record)
    return records, 0


def write_snapshot(
    path: Union[str, Path],
    applied_seq: int,
    payload: Dict[str, Any],
) -> None:
    """Atomically persist the compacted queue state.

    ``payload`` is the queue's own image; the envelope adds the format
    version and the journal position the snapshot covers.
    """
    atomic_write_json(
        path,
        {
            "version": JOURNAL_VERSION,
            "applied_seq": applied_seq,
            "state": payload,
        },
    )


def load_snapshot(
    path: Union[str, Path],
) -> Tuple[int, Dict[str, Any]]:
    """Read a :func:`write_snapshot` file; ``(0, {})`` when missing.

    A snapshot that fails to parse raises ``ValueError`` -- snapshots
    are written atomically, so a bad one is an operator error (wrong
    file, version from the future), never a crash artifact.
    """
    path = Path(path)
    if not path.exists():
        return 0, {}
    payload = json.loads(path.read_text())
    version = payload.get("version")
    if version != JOURNAL_VERSION:
        raise ValueError(
            f"snapshot {path} has format version {version}; this build "
            f"reads version {JOURNAL_VERSION}"
        )
    return int(payload["applied_seq"]), dict(payload["state"])


def truncate_journal(path: Union[str, Path]) -> None:
    """Atomically empty the journal (used right after a snapshot)."""
    atomic_write_bytes(path, b"")
