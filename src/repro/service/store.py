"""The content-addressed result store.

Results are filed under the SHA-256 of the job content
(:meth:`~repro.service.jobs.JobSpec.content_hash`): identical
netlist + search configuration means a bit-identical answer (the
engine is deterministic in those fields), so a second submission of
the same work short-circuits to the stored result instead of burning
a worker -- the service's cheapest "scale" lever.

Results that did **not** run to completion (deadline-stopped
best-so-far answers) are filed under a per-job key instead
(``job-<id>``): a partial answer must never masquerade as the content
hash's canonical result, or a later full run of the same content
would be cache-blocked by a truncated one.

Writes are atomic (:func:`repro.ioutil.atomic_write_json`), so a
crash mid-store leaves either the complete previous result or none --
readers never see a torn file.  Entries are sharded two-level
(``ab/abcdef....json``) to keep directories small at millions of
results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.ioutil import atomic_write_json

__all__ = ["ResultStore"]


class ResultStore:
    """JSON results keyed by content hash (or per-job partial key)."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where ``key``'s result lives (sharded by hash prefix)."""
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"bad result key {key!r}")
        shard = key[:2] if len(key) > 2 else "__"
        return self.root / shard / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether a result is already filed under ``key``."""
        return self.path_for(key).exists()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result, or ``None`` when absent."""
        path = self.path_for(key)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def put(self, key: str, result: Dict[str, Any]) -> Path:
        """Atomically file ``result`` under ``key``.

        Idempotent by construction: content-addressed keys always map
        to the same bytes, so concurrent writers replacing each other
        is harmless.
        """
        return atomic_write_json(self.path_for(key), result)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
