"""Floorplanning-as-a-service: the asyncio HTTP front end.

Stdlib only: :func:`asyncio.start_server` plus hand-rolled HTTP/1.1
parsing (the API is five small JSON routes; a framework would be the
only third-party dependency in the repo).  The whole request parse
runs under one deadline of the service's ``client_timeout`` (each
socket read gets only the remaining budget) and header count/bytes are
capped, so a slowloris-shaped client -- headers promising a body that
never arrives, or trickling one header line per read -- gets a ``408``
(or ``400`` past the caps) and its connection closed instead of
pinning a server task (the fault suite drives this with
:func:`repro.testing.faults.slow_client_request`).

Routes::

    POST /v1/jobs               submit a job (JobSpec JSON)  -> 200/400/429
    GET  /v1/jobs/<id>          job status                   -> 200/404
    GET  /v1/jobs/<id>/result   the stored result            -> 200/404/409
    POST /v1/jobs/<id>/cancel   cancel a queued job          -> 200/404/409
    GET  /healthz               liveness (always 200)
    GET  /readyz                readiness (503 while draining)
    GET  /metrics               MetricsRegistry snapshot + queue gauges

:class:`FloorplanService` composes the queue, result store, fleet and
metrics; its handlers are plain synchronous methods (journal appends
are single fsynced writes -- microseconds to low milliseconds, cheap
enough to run on the event loop at this service's scale) so unit tests
drive them directly, without sockets.

Shutdown: SIGTERM (or :meth:`FloorplanService.drain`) flips readiness
to 503, stops the fleet claiming, lets every running worker checkpoint
and requeue, compacts the journal, and only then stops the listener --
the drain path of the job state machine, end to end.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import (
    JobNotFound,
    JobValidationError,
    QuotaExceeded,
    ServiceError,
)
from repro.obs import MetricsRegistry
from repro.service.fleet import ServiceFleet
from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue
from repro.service.store import ResultStore

__all__ = ["FloorplanService", "ServiceServer", "ServiceThread", "serve"]

_MAX_BODY_BYTES = 32 * 1024 * 1024  # a netlist, not a filesystem
_MAX_HEADER_BYTES = 16 * 1024  # request line + all header lines
_MAX_HEADER_COUNT = 100


class FloorplanService:
    """The service core: queue + store + fleet + metrics, one root dir.

    ``root`` gains ``queue/`` (journal + snapshot), ``results/`` (the
    content-addressed store) and ``work/`` (per-job checkpoint and
    heartbeat files plus the drain stop file).  Restarting a service on
    the same root resumes exactly where the last one stopped: the
    journal replays, interrupted jobs re-queue, their checkpoints make
    the reruns resumes.
    """

    def __init__(
        self,
        root: Union[str, Path],
        workers: int = 2,
        tenant_quota: Optional[int] = None,
        client_timeout: float = 10.0,
        job_timeout: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        retry_jitter: float = 0.25,
        max_pool_rebuilds: int = 2,
        compact_every: int = 512,
        metrics: Optional[MetricsRegistry] = None,
        observer=None,
    ):
        if client_timeout <= 0:
            raise ValueError(
                f"client_timeout must be positive, got {client_timeout}"
            )
        self.root = Path(root)
        self.client_timeout = float(client_timeout)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queue = JobQueue(
            self.root / "queue",
            tenant_quota=tenant_quota,
            compact_every=compact_every,
        )
        self.store = ResultStore(self.root / "results")
        self.fleet = ServiceFleet(
            self.queue,
            self.store,
            self.root / "work",
            workers=workers,
            timeout=job_timeout,
            heartbeat_timeout=heartbeat_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            retry_jitter=retry_jitter,
            max_pool_rebuilds=max_pool_rebuilds,
            metrics=self.metrics,
            observer=observer,
        )
        self.draining = False
        self.started_at = time.time()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Start the fleet (journal replay already ran in __init__)."""
        self.draining = False
        self.fleet.start()

    def drain(self) -> None:
        """Graceful shutdown of the execution arm (idempotent).

        Readiness goes 503 first so load balancers stop routing, then
        the fleet checkpoints and requeues every running job and the
        journal compacts.  The HTTP listener stays up until the caller
        stops it -- status polls during a drain still answer.
        """
        if self.draining:
            return
        self.draining = True
        self.fleet.drain()

    # -- handlers (synchronous; the HTTP layer and tests share them) --

    def submit_job(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Validate, enqueue (or dedupe), and maybe cache-serve a job."""
        spec = JobSpec.from_json(body)
        spec.build_netlist()  # malformed YAL fails the submit, not a worker
        with self.metrics.timeit("service_submit"):
            # The store is append-only, so a hit observed here is still
            # a hit when submit journals the job; submit() itself births
            # the job `done` under the queue lock, so the dispatcher can
            # never claim it between enqueue and cache short-circuit.
            content_key = spec.content_hash()
            cached_key = content_key if self.store.has(content_key) else None
            job, created = self.queue.submit(spec, cached_result_key=cached_key)
            if created:
                self.metrics.count("service_jobs_submitted")
                if job.cached:
                    self.metrics.count("service_cache_hits")
            else:
                self.metrics.count("service_idempotent_replays")
        status = job.status_json()
        status["created"] = created
        return status

    def job_status(self, job_id: str) -> Dict[str, Any]:
        """The job's status JSON (netlist elided)."""
        return self.queue.get(job_id).status_json()

    def job_result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """``(http_status, payload)`` for the result route: 200 with
        the stored result once done, 409 with the job status while the
        job is still in flight or ended without a result."""
        job = self.queue.get(job_id)
        if job.state == "done" and job.result_key:
            result = self.store.get(job.result_key)
            if result is not None:
                return 200, result
        payload = job.status_json()
        payload["error"] = (
            job.error
            if job.terminal
            else f"job {job_id} is {job.state}; no result yet"
        )
        return 409, payload

    def cancel_job(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """Cancel a queued job; 409 for states past cancelling."""
        job = self.queue.get(job_id)
        if not job.can_transition("cancelled"):
            payload = job.status_json()
            payload["error"] = f"cannot cancel a {job.state} job"
            return 409, payload
        return 200, self.queue.cancel(job_id).status_json()

    def healthz(self) -> Dict[str, Any]:
        """Liveness: always ok while the process answers."""
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
        }

    def readyz(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness: 503 while draining or the fleet is down."""
        ready = self.fleet.running and not self.draining
        payload = {
            "ready": ready,
            "draining": self.draining,
            "degraded": self.fleet.sequential_only,
            "jobs": self.queue.counts(),
        }
        return (200 if ready else 503), payload

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The metrics registry plus live queue-state gauges."""
        for state, n in self.queue.counts().items():
            self.metrics.gauge(f"service_jobs_{state}", n)
        self.metrics.gauge(
            "service_degraded_mode", 1.0 if self.fleet.sequential_only else 0.0
        )
        return self.metrics.snapshot()


class ServiceServer:
    """The asyncio listener wrapping one :class:`FloorplanService`."""

    def __init__(
        self,
        service: FloorplanService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port  # 0 -> OS-assigned; real port set after start()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Start the fleet and bind the listener (port 0 -> OS pick)."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener (the service itself is untouched)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one connection ------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except asyncio.TimeoutError:
                await self._respond(
                    writer, 408, {"error": "client too slow; request timed out"}
                )
                return
            except (asyncio.IncompleteReadError, ValueError) as exc:
                await self._respond(writer, 400, {"error": f"bad request: {exc}"})
                return
            status, payload = self._route(method, path, body)
            await self._respond(writer, status, payload)
        except (ConnectionResetError, BrokenPipeError):
            pass  # the client hung up; nothing to tell them
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request under one overall deadline.

        The *whole* request -- request line, headers, body -- must
        arrive within ``client_timeout``; each read gets only the time
        remaining, so a client trickling one header line per read
        cannot hold the connection past the budget.  Header count and
        total header bytes are capped too (-> 400), so the headers
        dict cannot be grown without bound either.
        """
        deadline = (
            asyncio.get_running_loop().time() + self.service.client_timeout
        )

        async def read_bounded(coro_factory):
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise asyncio.TimeoutError()
            return await asyncio.wait_for(coro_factory(), remaining)

        request_line = await read_bounded(reader.readline)
        if not request_line.strip():
            raise ValueError("empty request line")
        try:
            method, path, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise ValueError(f"malformed request line {request_line!r}")
        headers: Dict[str, str] = {}
        header_bytes = len(request_line)
        while True:
            line = await read_bounded(reader.readline)
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise ValueError(
                    f"headers exceed {_MAX_HEADER_BYTES} bytes"
                )
            if len(headers) >= _MAX_HEADER_COUNT:
                raise ValueError(
                    f"more than {_MAX_HEADER_COUNT} header lines"
                )
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise ValueError(f"unacceptable content-length {length}")
        body = b""
        if length:
            body = await read_bounded(lambda: reader.readexactly(length))
        return method.upper(), path, headers, body

    def _route(self, method: str, path: str, body: bytes):
        """Dispatch to the service core, mapping its exceptions to HTTP."""
        try:
            if method == "GET" and path == "/healthz":
                return 200, self.service.healthz()
            if method == "GET" and path == "/readyz":
                return self.service.readyz()
            if method == "GET" and path == "/metrics":
                return 200, self.service.metrics_snapshot()
            if method == "POST" and path == "/v1/jobs":
                try:
                    parsed = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    return 400, {"error": f"body is not JSON: {exc}"}
                if not isinstance(parsed, dict):
                    return 400, {"error": "body must be a JSON object"}
                return 200, self.service.submit_job(parsed)
            if method == "GET" and path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/") :]
                if rest.endswith("/result"):
                    return self.service.job_result(rest[: -len("/result")])
                return 200, self.service.job_status(rest)
            if method == "POST" and path.startswith("/v1/jobs/") and (
                path.endswith("/cancel")
            ):
                job_id = path[len("/v1/jobs/") : -len("/cancel")]
                return self.service.cancel_job(job_id)
            return 404, {"error": f"no route {method} {path}"}
        except JobValidationError as exc:
            return 400, {"error": str(exc)}
        except QuotaExceeded as exc:
            return 429, {"error": str(exc)}
        except JobNotFound as exc:
            # KeyError heritage wraps the message in quotes; unwrap.
            return 404, {"error": str(exc).strip("'\"")}
        except ServiceError as exc:
            return 409, {"error": str(exc)}
        except Exception as exc:
            # Infrastructure failure (full disk mid-journal-append, a
            # corrupt stored result, ...): answer with a well-formed 500
            # instead of killing the connection and leaving the client
            # to diagnose a reset.  Details stay server-side.
            self.service.metrics.count("service_internal_errors")
            return 500, {"error": f"internal error: {type(exc).__name__}"}

    async def _respond(self, writer, status: int, payload) -> None:
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            408: "Request Timeout",
            409: "Conflict",
            429: "Too Many Requests",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def serve(
    service: FloorplanService,
    host: str = "127.0.0.1",
    port: int = 8712,
    install_signals: bool = True,
    ready=None,
) -> None:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    The signal handler only sets an event; the drain itself (which
    joins the fleet thread) runs in the default executor so the event
    loop keeps answering status polls while workers checkpoint.
    ``ready`` (optional ``Callable[[ServiceServer], None]``) fires once
    the port is bound -- the CLI uses it to print the actual port.
    """
    server = ServiceServer(service, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signals:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, ValueError):
                break  # non-unix or non-main-thread: drain via stop()
    try:
        await stop.wait()
    finally:
        await loop.run_in_executor(None, service.drain)
        await server.stop()


class ServiceThread:
    """A live server on a background thread (tests and the smoke
    script): ``start()`` returns once the port is bound; ``stop()``
    drains the service and tears the loop down."""

    def __init__(
        self,
        service: FloorplanService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ServiceServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        """Start the loop thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self._run, name="service-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service thread failed to start in time")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._server = ServiceServer(self.service, self.host, port=0)
        self._loop.run_until_complete(self._server.start())
        self.port = self._server.port
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._server.stop())
            self._loop.close()

    def stop(self, drain: bool = True) -> None:
        """Drain (optionally) and tear the event loop down."""
        if drain:
            self.service.drain()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
