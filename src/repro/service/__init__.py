"""Floorplanning-as-a-service: crash-safe queue, supervised fleet, HTTP API.

The service layer (PR 10) turns the engine into a long-running
multi-tenant job server without adding a single dependency:

* :mod:`repro.service.jobs` -- job specs, content hashing, the state
  machine;
* :mod:`repro.service.journal` -- the checksummed append-only WAL and
  compacted snapshots every queue mutation survives crashes through;
* :mod:`repro.service.queue` -- the priority/quota/idempotency queue
  built on that journal;
* :mod:`repro.service.store` -- the content-addressed result store
  (identical submissions short-circuit to a stored answer);
* :mod:`repro.service.worker` -- the picklable per-job run function:
  checkpoint-resume, heartbeats, drain awareness;
* :mod:`repro.service.fleet` -- the supervised process-pool dispatcher
  (retries, pool rebuilds, graceful degradation to sequential);
* :mod:`repro.service.server` -- the stdlib asyncio HTTP front end and
  drain-on-SIGTERM lifecycle;
* :mod:`repro.service.client` -- the programmatic client with safe
  retries.

See DESIGN.md section 15 for the architecture and the journal format.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.fleet import ServiceFleet
from repro.service.jobs import JOB_STATES, VALID_TRANSITIONS, Job, JobSpec
from repro.service.journal import (
    JournalRecord,
    append_record,
    replay_journal,
    load_snapshot,
    write_snapshot,
)
from repro.service.queue import JobQueue
from repro.service.server import (
    FloorplanService,
    ServiceServer,
    ServiceThread,
    serve,
)
from repro.service.store import ResultStore
from repro.service.worker import (
    JobOutcome,
    JobPayload,
    ServiceRunControl,
    result_payload,
    run_service_job,
)

__all__ = [
    "JOB_STATES",
    "VALID_TRANSITIONS",
    "Job",
    "JobSpec",
    "JournalRecord",
    "append_record",
    "replay_journal",
    "load_snapshot",
    "write_snapshot",
    "JobQueue",
    "ResultStore",
    "JobOutcome",
    "JobPayload",
    "ServiceRunControl",
    "result_payload",
    "run_service_job",
    "ServiceFleet",
    "FloorplanService",
    "ServiceServer",
    "ServiceThread",
    "serve",
    "ServiceClient",
    "ServiceClientError",
]
