"""The service's job model: specs, states, and the transition graph.

A **job** is one floorplanning request frozen as data: the circuit (as
YAL text, so it travels over HTTP and hashes canonically), the search
configuration (representation, seed, objective weights, schedule), and
the service envelope (priority, tenant, deadline, idempotency key).

Two derived identities matter:

* :meth:`JobSpec.content_hash` -- SHA-256 over exactly the fields that
  determine the *answer* (netlist + search configuration).  Jobs with
  equal content hashes produce bit-identical results (the engine is
  deterministic in those fields), so the hash keys the
  content-addressed result store; priority/tenant/deadline/idempotency
  and checkpoint cadence are deliberately excluded -- none of them
  perturbs the walk.
* ``idempotency_key`` -- the *client's* identity for a submission.  A
  retried submit with the same key returns the original job id instead
  of enqueueing twice, which is what makes client retries after a
  dropped response safe.

The job state machine is deliberately small::

    queued ----> running ----> done
      | \\           |  \\
      |  \\          |   +--> failed
      |   +> done    +-----> queued      (worker died / drain: requeue)
      +----> cancelled

``queued -> done`` is the content-cache short-circuit (the result
already exists, no worker runs); ``running -> queued`` is crash/drain
recovery -- the job keeps its checkpoint and resumes where it stopped.
``done`` / ``failed`` / ``cancelled`` are terminal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional

from repro.errors import JobValidationError

__all__ = [
    "JOB_STATES",
    "VALID_TRANSITIONS",
    "JobSpec",
    "Job",
]


JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

VALID_TRANSITIONS: Mapping[str, frozenset] = {
    "queued": frozenset({"running", "done", "cancelled"}),
    "running": frozenset({"done", "failed", "queued"}),
    "done": frozenset(),
    "failed": frozenset(),
    "cancelled": frozenset(),
}

# The JobSpec fields that determine the result; everything else is
# service envelope.  Kept explicit (not "all fields minus a denylist")
# so adding an envelope field can never silently change content hashes.
_CONTENT_FIELDS = (
    "netlist_yal",
    "representation",
    "seed",
    "alpha",
    "beta",
    "gamma",
    "congestion_grid_size",
    "pin_grid_size",
    "backend",
    "incremental",
    "moves_per_temperature",
    "cooling_rate",
    "freeze_ratio",
    "max_steps",
)


@dataclass(frozen=True)
class JobSpec:
    """One floorplanning request, frozen as plain data.

    ``netlist_yal`` is the circuit in the YAL dialect of
    :mod:`repro.data.yal` -- text, so the spec JSON-serializes, crosses
    HTTP, and hashes without canonicalization questions.  The search
    fields mirror :class:`~repro.engine.multistart.ObjectiveSpec` plus
    the schedule; the envelope fields (``priority`` higher-first,
    ``tenant``, ``deadline_seconds`` wall-clock budget for the run,
    ``idempotency_key``, ``checkpoint_every`` temperature steps between
    the job's crash-recovery checkpoints) never affect the result.
    """

    netlist_yal: str
    representation: str = "polish"
    seed: int = 0
    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 0.0
    congestion_grid_size: float = 30.0
    pin_grid_size: Optional[float] = None
    backend: Optional[str] = None
    incremental: bool = True
    moves_per_temperature: Optional[int] = None
    cooling_rate: float = 0.9
    freeze_ratio: float = 1e-6
    max_steps: int = 200
    # -- service envelope (excluded from the content hash) ------------
    priority: int = 0
    tenant: str = "default"
    deadline_seconds: Optional[float] = None
    idempotency_key: Optional[str] = None
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if not self.netlist_yal.strip():
            raise JobValidationError("netlist_yal must be non-empty YAL text")
        if self.representation not in ("polish", "sp", "btree"):
            # Validated here (not only in the worker) so a typo fails
            # the submit with HTTP 400 instead of burning a worker run.
            raise JobValidationError(
                f"unknown representation {self.representation!r}"
            )
        if self.checkpoint_every < 1:
            raise JobValidationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise JobValidationError(
                f"deadline_seconds must be positive, got "
                f"{self.deadline_seconds}"
            )
        if (
            self.moves_per_temperature is not None
            and self.moves_per_temperature < 1
        ):
            raise JobValidationError(
                f"moves_per_temperature must be >= 1, got "
                f"{self.moves_per_temperature}"
            )
        if not self.tenant:
            raise JobValidationError("tenant must be non-empty")

    # -- identity -----------------------------------------------------

    def content_hash(self) -> str:
        """SHA-256 over the result-determining fields, hex-encoded.

        Equal hashes imply bit-identical results (the engine is a pure
        function of these fields), so this keys the content-addressed
        result store.
        """
        payload = json.dumps(
            {name: getattr(self, name) for name in _CONTENT_FIELDS},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- engine recipes -----------------------------------------------

    def build_netlist(self):
        """Parse the YAL text (raises :class:`JobValidationError` on
        malformed circuits -- validated at submit time, not run time)."""
        from repro.data import loads_yal

        try:
            return loads_yal(self.netlist_yal)
        except Exception as exc:
            raise JobValidationError(f"netlist_yal does not parse: {exc}")

    def objective_spec(self):
        """The picklable :class:`~repro.engine.multistart.ObjectiveSpec`
        a worker builds its objective from."""
        from repro.engine import ObjectiveSpec

        return ObjectiveSpec(
            alpha=self.alpha,
            beta=self.beta,
            gamma=self.gamma,
            congestion_grid_size=self.congestion_grid_size,
            pin_grid_size=self.pin_grid_size,
            incremental=self.incremental,
            backend=self.backend,
        )

    def schedule(self):
        """The cooling schedule the worker anneals under."""
        from repro.anneal.schedule import GeometricSchedule

        return GeometricSchedule(
            cooling_rate=self.cooling_rate,
            freeze_ratio=self.freeze_ratio,
            max_steps=self.max_steps,
        )

    # -- serialization ------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """A lossless JSON image (journal submit records carry this)."""
        return {
            "netlist_yal": self.netlist_yal,
            "representation": self.representation,
            "seed": self.seed,
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "congestion_grid_size": self.congestion_grid_size,
            "pin_grid_size": self.pin_grid_size,
            "backend": self.backend,
            "incremental": self.incremental,
            "moves_per_temperature": self.moves_per_temperature,
            "cooling_rate": self.cooling_rate,
            "freeze_ratio": self.freeze_ratio,
            "max_steps": self.max_steps,
            "priority": self.priority,
            "tenant": self.tenant,
            "deadline_seconds": self.deadline_seconds,
            "idempotency_key": self.idempotency_key,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_json` output (or a client
        submission body).  Unknown keys are rejected loudly -- a typoed
        field name must not silently fall back to a default."""
        if "netlist_yal" not in data:
            raise JobValidationError("submission is missing netlist_yal")
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise JobValidationError(
                f"unknown job field(s): {sorted(unknown)}"
            )
        try:
            return cls(**dict(data))
        except (TypeError, ValueError) as exc:
            if isinstance(exc, JobValidationError):
                raise
            raise JobValidationError(f"bad job specification: {exc}")


@dataclass
class Job:
    """One job's full service-side record.

    ``seq`` is the journal sequence number of the submit record --
    unique, monotone, and the FIFO tie-breaker within a priority class.
    ``report`` is the latest supervision ledger
    (:meth:`~repro.engine.multistart.RunReport.to_json` image) attached
    on failure/requeue, so blame survives in the job record itself.
    Timestamps are wall-clock seconds for humans; replay never branches
    on them.
    """

    job_id: str
    spec: JobSpec
    state: str = "queued"
    seq: int = 0
    attempts: int = 0
    result_key: Optional[str] = None
    cached: bool = False
    error: Optional[str] = None
    report: Optional[Dict[str, Any]] = None
    submitted_at: float = 0.0
    finished_at: Optional[float] = None

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def active(self) -> bool:
        """Whether the job still occupies tenant quota."""
        return self.state in ("queued", "running")

    @property
    def terminal(self) -> bool:
        return not VALID_TRANSITIONS[self.state]

    def can_transition(self, to: str) -> bool:
        """Whether the state machine allows moving to ``to``."""
        return to in VALID_TRANSITIONS[self.state]

    def status_json(self) -> Dict[str, Any]:
        """The public status view (``GET /v1/jobs/<id>``): everything
        except the netlist text, which can be large."""
        spec = self.spec.to_json()
        spec.pop("netlist_yal")
        return {
            "job_id": self.job_id,
            "state": self.state,
            "attempts": self.attempts,
            "result_key": self.result_key,
            "cached": self.cached,
            "error": self.error,
            "report": self.report,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "spec": spec,
        }

    def to_json(self) -> Dict[str, Any]:
        """Lossless image for snapshots (netlist included)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_json(),
            "state": self.state,
            "seq": self.seq,
            "attempts": self.attempts,
            "result_key": self.result_key,
            "cached": self.cached,
            "error": self.error,
            "report": self.report,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Job":
        return cls(
            job_id=str(data["job_id"]),
            spec=JobSpec.from_json(data["spec"]),
            state=str(data["state"]),
            seq=int(data["seq"]),
            attempts=int(data.get("attempts", 0)),
            result_key=data.get("result_key"),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
            report=data.get("report"),
            submitted_at=float(data.get("submitted_at", 0.0)),
            finished_at=data.get("finished_at"),
        )

    def with_spec_priority(self, priority: int) -> "Job":
        """A copy at a different priority (admin requeue helper)."""
        return replace(self, spec=replace(self.spec, priority=priority))
