"""The crash-safe job queue.

:class:`JobQueue` holds every job the service knows about, in memory
for speed and on disk for survival.  The durability contract:

* every mutation appends a checksummed journal record **before** the
  in-memory state changes (write-ahead; see
  :mod:`repro.service.journal`), and the in-memory apply runs the same
  ``_apply`` code replay runs, so a rebuilt queue and a live queue can
  never disagree about what a record means;
* startup = load snapshot + replay journal suffix + recover: any job
  found ``running`` belonged to a worker that died with the server --
  it flips back to ``queued`` (in memory only; the flip is a pure
  function of the replayed state, so every replay of the same bytes
  agrees) and will resume from its on-disk checkpoint;
* a `kill -9` mid-enqueue loses nothing: either the submit record is
  fully on disk (the job exists after restart and the client's
  idempotent resubmit returns its id) or it is not (the resubmit
  simply enqueues it).

Scheduling order is ``(-priority, seq)`` -- strictly higher priority
first, FIFO within a class.  Per-tenant quotas bound *active*
(queued + running) jobs; terminal jobs stop counting, so a tenant's
quota is a concurrency limit, not a lifetime one.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import JobNotFound, QuotaExceeded, ServiceError
from repro.service.jobs import Job, JobSpec
from repro.service.journal import (
    JournalRecord,
    append_record,
    load_snapshot,
    replay_journal,
    truncate_journal,
    write_snapshot,
)

__all__ = ["JobQueue"]


class JobQueue:
    """Journal-backed priority queue of :class:`~repro.service.jobs.Job`.

    Parameters
    ----------
    root:
        Directory holding ``journal.jsonl`` and ``snapshot.json``
        (created when missing).
    tenant_quota:
        Maximum *active* (queued + running) jobs per tenant; ``None``
        disables quotas.
    compact_every:
        Journal records between automatic compactions (snapshot +
        truncate).  Compaction also runs on :meth:`compact` (the drain
        path calls it so restarts replay an empty journal).
    now:
        Clock for human-facing timestamps (injectable for tests);
        replay never branches on it.

    Thread safety: every public method takes the queue lock; the HTTP
    thread and the dispatcher thread share one instance.
    """

    def __init__(
        self,
        root: Union[str, Path],
        tenant_quota: Optional[int] = None,
        compact_every: int = 512,
        now=time.time,
    ):
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError(
                f"tenant_quota must be >= 1, got {tenant_quota}"
            )
        if compact_every < 1:
            raise ValueError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self.snapshot_path = self.root / "snapshot.json"
        self.tenant_quota = tenant_quota
        self.compact_every = int(compact_every)
        self._now = now
        self._lock = threading.RLock()
        self.jobs: Dict[str, Job] = {}
        self._by_idempotency: Dict[str, str] = {}
        self._seq = 0  # last journal seq applied (and written)
        self._next_job = 1
        self._records_since_compact = 0
        self.replay_discarded = 0
        self.recovered_jobs: List[str] = []
        self._load()

    # -- startup ------------------------------------------------------

    def _load(self) -> None:
        applied_seq, state = load_snapshot(self.snapshot_path)
        self._seq = applied_seq
        self._next_job = int(state.get("next_job", 1))
        for job_data in state.get("jobs", []):
            job = Job.from_json(job_data)
            self.jobs[job.job_id] = job
        records, self.replay_discarded = replay_journal(
            self.journal_path, after_seq=applied_seq
        )
        for record in records:
            self._apply(record)
            self._seq = record.seq
            self._records_since_compact += 1
        self._rebuild_indexes()
        # Recovery: a "running" job's worker died with the server.  The
        # flip is derived state (pure function of the replayed journal),
        # so it is NOT journaled -- every replay of the same bytes
        # reaches the same answer, and the job's checkpoint file lets
        # the next run resume instead of restarting.
        for job in self.jobs.values():
            if job.state == "running":
                job.state = "queued"
                self.recovered_jobs.append(job.job_id)
        if self.replay_discarded:
            # The torn tail is still physically in the file, and it has
            # no trailing newline -- the next append would glue onto it
            # and a later replay would then stop at (and discard) that
            # merged line plus every fsynced record after it.  Compact
            # now: snapshot the replayed state and truncate the journal
            # before any new mutation can land.
            self.compact()

    def _rebuild_indexes(self) -> None:
        self._by_idempotency = {
            job.spec.idempotency_key: job.job_id
            for job in self.jobs.values()
            if job.spec.idempotency_key
        }

    # -- the single mutation path -------------------------------------

    def _apply(self, record: JournalRecord) -> None:
        """Interpret one journal record against the in-memory state.

        Both live mutations and startup replay funnel through here --
        the journal's semantics are defined exactly once.
        """
        data = record.data
        if record.op == "submit":
            job = Job.from_json(data)
            self.jobs[job.job_id] = job
            if job.spec.idempotency_key:
                self._by_idempotency[job.spec.idempotency_key] = job.job_id
            self._next_job = max(self._next_job, int(job.job_id[1:]) + 1)
        elif record.op == "transition":
            job = self.jobs.get(data["job_id"])
            if job is None:
                # A transition for a job the snapshot+prefix never saw
                # can only mean a compaction raced a crash; skipping is
                # the consistent interpretation (the snapshot already
                # contains the transition's effect).
                return
            job.state = data["to"]
            if "attempts" in data:
                job.attempts = int(data["attempts"])
            if "result_key" in data:
                job.result_key = data["result_key"]
            if "cached" in data:
                job.cached = bool(data["cached"])
            if "error" in data:
                job.error = data["error"]
            if "report" in data:
                job.report = data["report"]
            if "finished_at" in data:
                job.finished_at = data["finished_at"]
        else:
            raise ServiceError(f"unknown journal op {record.op!r}")

    def _journal(self, op: str, data: Dict[str, Any]) -> None:
        """Append one record (WAL) then apply it to memory.

        If the append raises (disk full, injected journal crash), the
        in-memory state is untouched and the sequence number rolls
        back -- the failed mutation never happened, on disk or in
        memory.
        """
        record = JournalRecord(seq=self._seq + 1, op=op, data=data)
        append_record(self.journal_path, record)
        self._seq = record.seq
        self._apply(record)
        self._records_since_compact += 1
        if self._records_since_compact >= self.compact_every:
            self.compact()

    def _transition(self, job: Job, to: str, **fields: Any) -> None:
        if not job.can_transition(to):
            raise ServiceError(
                f"job {job.job_id} cannot go {job.state!r} -> {to!r}"
            )
        self._journal(
            "transition", {"job_id": job.job_id, "to": to, **fields}
        )

    # -- public API ---------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        cached_result_key: Optional[str] = None,
    ) -> Tuple[Job, bool]:
        """Enqueue one job; returns ``(job, created)``.

        ``created`` is ``False`` when the spec's idempotency key was
        seen before -- the original job is returned untouched, so a
        client retrying a dropped response can never run work twice.
        Raises :class:`~repro.errors.QuotaExceeded` when the tenant's
        active-job quota is full.

        ``cached_result_key`` is the content-cache short-circuit: the
        caller already holds a stored result for this spec's content
        hash, so the job is born ``done`` (one submit record, applied
        under the queue lock) and the dispatcher can never claim it.
        Doing this *inside* submit closes the race where a separate
        ``submit -> complete`` pair let the fleet claim the job in
        between, making the cached complete collide with the worker's.
        """
        with self._lock:
            key = spec.idempotency_key
            if key and key in self._by_idempotency:
                return self.jobs[self._by_idempotency[key]], False
            born_done = cached_result_key is not None
            if self.tenant_quota is not None and not born_done:
                active = sum(
                    1
                    for j in self.jobs.values()
                    if j.tenant == spec.tenant and j.active
                )
                if active >= self.tenant_quota:
                    raise QuotaExceeded(
                        f"tenant {spec.tenant!r} has {active} active "
                        f"job(s); quota is {self.tenant_quota}"
                    )
            now = self._now()
            job = Job(
                job_id=f"j{self._next_job:06d}",
                spec=spec,
                state="done" if born_done else "queued",
                seq=self._seq + 1,
                result_key=cached_result_key,
                cached=born_done,
                submitted_at=now,
                finished_at=now if born_done else None,
            )
            self._journal("submit", job.to_json())
            return self.jobs[job.job_id], True

    def get(self, job_id: str) -> Job:
        """The job, or :class:`~repro.errors.JobNotFound`."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise JobNotFound(f"no such job: {job_id}")
            return job

    def list_jobs(self, tenant: Optional[str] = None) -> List[Job]:
        """Jobs in submission order, optionally filtered by tenant."""
        with self._lock:
            jobs = sorted(self.jobs.values(), key=lambda j: j.seq)
            if tenant is not None:
                jobs = [j for j in jobs if j.tenant == tenant]
            return jobs

    def ready_jobs(self) -> List[Job]:
        """Queued jobs in scheduling order: priority desc, then FIFO."""
        with self._lock:
            ready = [j for j in self.jobs.values() if j.state == "queued"]
            ready.sort(key=lambda j: (-j.priority, j.seq))
            return ready

    def claim(self, max_jobs: int) -> List[Job]:
        """Move up to ``max_jobs`` ready jobs to ``running``."""
        with self._lock:
            batch = self.ready_jobs()[: max(0, max_jobs)]
            for job in batch:
                self._transition(job, "running", attempts=job.attempts + 1)
            return batch

    def complete(
        self,
        job_id: str,
        result_key: str,
        cached: bool = False,
        report: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Deliver a result: ``queued|running -> done``."""
        with self._lock:
            job = self.get(job_id)
            fields: Dict[str, Any] = {
                "result_key": result_key,
                "cached": cached,
                "finished_at": self._now(),
            }
            if report is not None:
                fields["report"] = report
            self._transition(job, "done", **fields)
            return job

    def fail(
        self,
        job_id: str,
        error: str,
        report: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Retries exhausted: ``running -> failed`` with blame."""
        with self._lock:
            job = self.get(job_id)
            fields: Dict[str, Any] = {
                "error": error,
                "finished_at": self._now(),
            }
            if report is not None:
                fields["report"] = report
            self._transition(job, "failed", **fields)
            return job

    def requeue(
        self,
        job_id: str,
        reason: str,
        report: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Put an interrupted running job back in line
        (``running -> queued``); its checkpoint makes the next run a
        resume, not a restart."""
        with self._lock:
            job = self.get(job_id)
            fields: Dict[str, Any] = {"error": reason}
            if report is not None:
                fields["report"] = report
            self._transition(job, "queued", **fields)
            return job

    def cancel(self, job_id: str) -> Job:
        """Client cancellation: ``queued -> cancelled`` only (a running
        job belongs to its worker until it comes home)."""
        with self._lock:
            job = self.get(job_id)
            self._transition(job, "cancelled", finished_at=self._now())
            return job

    # -- maintenance ---------------------------------------------------

    def compact(self) -> None:
        """Snapshot the full state and truncate the journal.

        Crash-ordering: the snapshot (carrying ``applied_seq``) lands
        atomically first; replay skips journal records at or below it,
        so dying between the two writes double-applies nothing.
        """
        with self._lock:
            write_snapshot(
                self.snapshot_path,
                applied_seq=self._seq,
                payload={
                    "next_job": self._next_job,
                    "jobs": [
                        job.to_json()
                        for job in sorted(
                            self.jobs.values(), key=lambda j: j.seq
                        )
                    ],
                },
            )
            truncate_journal(self.journal_path)
            self._records_since_compact = 0

    def counts(self) -> Dict[str, int]:
        """Jobs per state (for ``/metrics`` and logs)."""
        with self._lock:
            out: Dict[str, int] = {}
            for job in self.jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out
