"""The service's worker job: one floorplanning run, crash-resumable.

:func:`run_service_job` is the module-level picklable function the
fleet hands to :class:`~repro.engine.supervise.SupervisedRunner` -- it
runs in pool workers and in the degraded sequential path, so both
execution modes share literally the same code.

Crash recovery is checkpoint-first: every job owns a directory with a
``checkpoint.ckpt`` the engine rewrites atomically every
``checkpoint_every`` temperature steps.  A fresh attempt finding a
checkpoint **resumes** it (:meth:`~repro.engine.engine.AnnealEngine.resume`)
instead of starting over, and because checkpoints capture the complete
loop state -- RNG stream, move counters, incumbent and best solutions
-- a run that is killed and resumed finishes *bit-identical* to one
that was never interrupted.  That identity is what lets the service
promise exactly-once results over at-least-once execution.

Liveness is heartbeat-based: the worker's
:class:`ServiceRunControl` touches a per-job ``heartbeat`` file from
the annealing loop's own stop poll (once per move, throttled to a few
writes per second), so the supervisor can tell a *hung* worker (stale
mtime) from a merely *slow* one without wall-clock guessing.  The same
control polls a shared ``stop`` file: the drain path creates it, every
worker checkpoints and comes home with ``stop_reason="drain"``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.engine.control import RunControl
from repro.engine.engine import AnnealEngine, EngineResult
from repro.service.jobs import JobSpec

__all__ = [
    "RESULT_SCHEMA",
    "HEARTBEAT_INTERVAL",
    "STOP_POLL_INTERVAL",
    "ServiceRunControl",
    "JobPayload",
    "JobOutcome",
    "result_payload",
    "run_service_job",
]

RESULT_SCHEMA = "repro.service.result/v1"

# Seconds between heartbeat touches / stop-file polls.  Both piggyback
# on the per-move should_stop() call, so the steady-state cost is one
# monotonic clock read per move; the file I/O happens a few times a
# second regardless of move rate.
HEARTBEAT_INTERVAL = 0.2
STOP_POLL_INTERVAL = 0.1


class ServiceRunControl(RunControl):
    """A :class:`~repro.engine.control.RunControl` that also proves the
    worker is alive and notices fleet-wide drains.

    Extends the per-move stop poll with (throttled):

    * touching ``heartbeat_path`` -- the supervisor's hang detector
      reads its mtime; a worker stuck inside one evaluation stops
      touching it and gets killed, while a slow-but-moving worker keeps
      its lease forever;
    * checking ``stop_path`` -- the drain file.  Workers are separate
      processes, so the drain signal travels through the filesystem
      rather than a shared Event; when the file appears the run stops
      with reason ``"drain"``, writes its final checkpoint, and returns
      best-so-far;
    * chaining ``parent`` -- in sequential (in-process) mode the
      fleet's own control rides along, so a SIGTERM reaches even
      degraded-mode jobs without touching disk.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        checkpoint_path=None,
        checkpoint_every: int = 1,
        heartbeat_path=None,
        stop_path=None,
        parent: Optional[RunControl] = None,
    ):
        super().__init__(
            deadline_seconds=deadline_seconds,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        self.heartbeat_path = (
            Path(heartbeat_path) if heartbeat_path is not None else None
        )
        self.stop_path = Path(stop_path) if stop_path is not None else None
        self.parent = parent
        self._last_beat = float("-inf")
        self._last_poll = float("-inf")

    def beat(self) -> None:
        """Touch the heartbeat file now (best-effort; a beat lost to a
        transient I/O error just narrows the hang margin by one tick)."""
        if self.heartbeat_path is None:
            return
        try:
            self.heartbeat_path.write_text(f"{time.time():.6f}\n")
        except OSError:
            pass

    def begin(self) -> None:
        """Start the run clock and write the first heartbeat."""
        super().begin()
        self.beat()  # the lease starts before the first move runs

    def should_stop(self) -> Optional[str]:
        """The per-move poll: beat, check the drain file and any
        parent control (both throttled), then defer to the base
        deadline/stop logic."""
        now = time.monotonic()
        if now - self._last_beat >= HEARTBEAT_INTERVAL:
            self._last_beat = now
            self.beat()
        if not self.stop_requested and (
            now - self._last_poll >= STOP_POLL_INTERVAL
        ):
            self._last_poll = now
            if self.stop_path is not None and self.stop_path.exists():
                self.request_stop("drain")
            elif self.parent is not None:
                reason = self.parent.should_stop()
                if reason:
                    self.request_stop(reason)
        return super().should_stop()


@dataclass(frozen=True)
class JobPayload:
    """Everything one worker attempt needs, frozen and picklable.

    ``job_dir`` holds the job's checkpoint and heartbeat files --
    stable across attempts, which is exactly what makes attempt N+1
    resume attempt N's checkpoint.  ``stop_path`` is the fleet-wide
    drain file (absent outside a drain).  ``fault`` is the test-only
    injection hook (a :class:`repro.testing.faults.JobFault`); it
    targets one (attempt, mode) pair, so the supervised retry of an
    injected kill deterministically succeeds.
    """

    job_id: str
    spec: JobSpec
    job_dir: str
    stop_path: Optional[str] = None
    fault: Optional[Any] = None

    @property
    def checkpoint_path(self) -> Path:
        return Path(self.job_dir) / "checkpoint.ckpt"

    @property
    def heartbeat_path(self) -> Path:
        return Path(self.job_dir) / "heartbeat"


@dataclass
class JobOutcome:
    """What a worker attempt brings home (picklable, JSON-free of
    live objects).

    ``result`` is the JSON payload filed in the result store;
    ``completed`` distinguishes a finished schedule from a cooperative
    stop (``stop_reason`` then says why: ``"drain"`` / ``"deadline"`` /
    ``"signal"``), which the fleet maps to requeue-for-resume versus
    partial-result delivery.
    """

    job_id: str
    completed: bool
    stop_reason: Optional[str]
    resumed: bool
    checkpoints_written: int
    result: Dict[str, Any] = field(default_factory=dict)


def result_payload(
    engine_result: EngineResult, spec: JobSpec
) -> Dict[str, Any]:
    """The canonical JSON image of one finished run.

    Deliberately excludes wall-clock fields (runtime, checkpoint
    counts) and execution history (whether the run was resumed): the
    payload must be **bit-identical** across an uninterrupted run, a
    killed-and-resumed run, and a cache replay of either -- that
    identity is what the fault suite asserts and what makes
    content-addressed caching sound.  Move counters survive a resume
    exactly (they live in the checkpointed loop state), so they stay
    in.
    """
    floorplan = engine_result.floorplan
    return {
        "schema": RESULT_SCHEMA,
        "content_hash": spec.content_hash(),
        "representation": engine_result.representation,
        "seed": engine_result.seed,
        "completed": engine_result.completed,
        "stop_reason": engine_result.stop_reason,
        "breakdown": engine_result.breakdown.to_json(),
        "chip": {
            "width": floorplan.chip.width,
            "height": floorplan.chip.height,
            "area": floorplan.chip.area,
        },
        "placements": {
            name: [rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi]
            for name, rect in sorted(floorplan.placements.items())
        },
        "n_moves": engine_result.n_moves,
        "n_accepted": engine_result.n_accepted,
    }


def run_service_job(
    payload: JobPayload,
    attempt: int = 0,
    mode: str = "pool",
    control: Optional[RunControl] = None,
) -> JobOutcome:
    """Execute (or resume) one job and return its outcome.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it; ``(attempt, mode)`` arrive from the supervisor's
    ``make_args`` exactly as multistart's restart function receives
    them, and ``control`` rides along only in sequential mode.
    """
    spec = payload.spec
    job_dir = Path(payload.job_dir)
    job_dir.mkdir(parents=True, exist_ok=True)
    checkpoint_path = payload.checkpoint_path
    resumed = checkpoint_path.exists()
    if resumed:
        engine = AnnealEngine.resume(checkpoint_path)
    else:
        engine = AnnealEngine(
            spec.build_netlist(),
            representation=spec.representation,
            objective_spec=spec.objective_spec(),
            seed=spec.seed,
            moves_per_temperature=spec.moves_per_temperature,
            schedule=spec.schedule(),
        )
    run_control = ServiceRunControl(
        deadline_seconds=spec.deadline_seconds,
        checkpoint_path=checkpoint_path,
        checkpoint_every=spec.checkpoint_every,
        heartbeat_path=payload.heartbeat_path,
        stop_path=payload.stop_path,
        parent=control,
    )
    on_snapshot = None
    if payload.fault is not None:
        on_snapshot = payload.fault.snapshot_hook(attempt=attempt, mode=mode)
    engine_result = engine.run(on_snapshot=on_snapshot, control=run_control)
    outcome = JobOutcome(
        job_id=payload.job_id,
        completed=engine_result.completed,
        stop_reason=engine_result.stop_reason,
        resumed=resumed,
        checkpoints_written=run_control.checkpoints_written,
        result=result_payload(engine_result, spec),
    )
    if engine_result.completed:
        # The run finished; its checkpoint would only confuse a later
        # identical submission (which the content cache serves anyway).
        try:
            os.remove(checkpoint_path)
        except OSError:
            pass
    return outcome
