"""The programmatic client for the floorplanning service.

Stdlib :mod:`http.client`, one connection per request (the server
closes connections anyway), JSON in and out.  The client's job is to
make the service's reliability contract easy to hold up from the
caller's side:

* :meth:`ServiceClient.submit` generates an idempotency key when the
  caller does not supply one, then **retries submits safely** -- a
  response lost to a flaky network resolves to the original job id on
  resubmit, never to duplicate work;
* :meth:`ServiceClient.wait` polls status until the job is terminal
  and returns the stored result, raising :class:`ServiceClientError`
  with the server's blame report when the job failed.
"""

from __future__ import annotations

import http.client
import json
import time
import uuid
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServiceError

__all__ = ["ServiceClientError", "ServiceClient"]


class ServiceClientError(ServiceError):
    """An HTTP-level or job-level failure seen by the client.

    ``status`` is the HTTP status code (0 for transport errors);
    ``payload`` is the server's JSON body when there was one.
    """

    def __init__(self, message: str, status: int = 0, payload=None):
        super().__init__(message)
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talk to one service endpoint.

    ``retries`` bounds transport-level retries of idempotent calls
    (every GET, and POSTs that carry an idempotency key); the backoff
    is linear and short because the safe-retry guarantee, not the
    pacing, is what matters here.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8712,
        timeout: float = 30.0,
        retries: int = 2,
        retry_delay: float = 0.2,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_delay = float(retry_delay)

    # -- transport ----------------------------------------------------

    def _request_once(
        self, method: str, path: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            return response.status, decoded
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        idempotent: bool = True,
    ) -> Tuple[int, Dict[str, Any]]:
        last_error: Optional[Exception] = None
        attempts = 1 + (self.retries if idempotent else 0)
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    time.sleep(self.retry_delay * (attempt + 1))
        raise ServiceClientError(
            f"{method} {path} failed after {attempts} attempt(s): "
            f"{last_error}"
        )

    @staticmethod
    def _check(status: int, payload: Dict[str, Any], context: str):
        if status >= 400:
            raise ServiceClientError(
                f"{context}: HTTP {status}: "
                f"{payload.get('error', payload)}",
                status=status,
                payload=payload,
            )
        return payload

    # -- API ----------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job spec (a :class:`~repro.service.jobs.JobSpec`
        JSON image).  An ``idempotency_key`` is generated when missing,
        which is what makes the transport-level retry safe: the server
        resolves every retry to the same job.
        """
        body = dict(spec)
        if not body.get("idempotency_key"):
            body["idempotency_key"] = f"auto-{uuid.uuid4().hex}"
        status, payload = self._request(
            "POST", "/v1/jobs", body=body, idempotent=True
        )
        return self._check(status, payload, "submit")

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's status JSON (404 raises)."""
        status, payload = self._request("GET", f"/v1/jobs/{job_id}")
        return self._check(status, payload, f"status of {job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The stored result; raises (HTTP 409 surfaced) while the job
        is still in flight."""
        status, payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        return self._check(status, payload, f"result of {job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued job (409 raises once it is running)."""
        status, payload = self._request(
            "POST", f"/v1/jobs/{job_id}/cancel", idempotent=True
        )
        return self._check(status, payload, f"cancel of {job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Block until ``job_id`` is terminal; return its result.

        A ``done`` job returns the stored result payload; ``failed`` /
        ``cancelled`` raise :class:`ServiceClientError` carrying the
        job's error and supervision report.
        """
        deadline = time.monotonic() + timeout
        while True:
            info = self.status(job_id)
            if info["state"] == "done":
                return self.result(job_id)
            if info["state"] in ("failed", "cancelled"):
                raise ServiceClientError(
                    f"job {job_id} ended {info['state']}: "
                    f"{info.get('error')}",
                    payload=info,
                )
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"job {job_id} still {info['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def healthz(self) -> Dict[str, Any]:
        """The server's liveness payload."""
        status, payload = self._request("GET", "/healthz")
        return self._check(status, payload, "healthz")

    def readyz(self) -> Tuple[bool, Dict[str, Any]]:
        """``(ready, payload)`` -- 503 is a normal answer, not an error."""
        status, payload = self._request("GET", "/readyz")
        return status == 200, payload

    def metrics(self) -> Dict[str, Any]:
        """The server's metrics snapshot."""
        status, payload = self._request("GET", "/metrics")
        return self._check(status, payload, "metrics")
