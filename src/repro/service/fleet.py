"""The supervised worker fleet: claims jobs, survives its workers.

:class:`ServiceFleet` is the service's execution arm -- a dispatcher
thread that claims batches of ready jobs from the
:class:`~repro.service.queue.JobQueue` and runs them through a
:class:`~repro.engine.supervise.SupervisedRunner` process pool (the
same machinery PR 3 built for multistart, here with heartbeat hang
detection and jittered retry backoff turned on).

The supervision ladder, from mildest to worst:

* a worker that **raises** charges one attempt to its job; bounded
  retries with exponential-plus-jitter backoff;
* a worker that **crashes or hangs** (heartbeat gone stale) costs the
  pool: finished futures are harvested, every in-flight job is charged
  one attempt, the pool is killed and rebuilt, and the blame lands in
  each affected job's :class:`~repro.engine.multistart.RunReport`;
* a pool that keeps dying past ``max_pool_rebuilds`` **degrades the
  fleet to sequential execution** -- a latch, not a retry: every later
  batch runs in-process until the service restarts, trading throughput
  for certainty;
* killed attempts are never wasted work: the next attempt finds the
  job's checkpoint and *resumes* it, bit-identical to an uninterrupted
  run.

Job dispositions after a batch: a completed run files its result under
the spec's content hash and the job goes ``done``; a deadline-stopped
run files its best-so-far under a per-job key (``job-<id>``) and still
goes ``done`` (the deadline asked for exactly this); a drain/signal
stop **requeues** the job so the next server run resumes it; exhausted
retries go ``failed`` with the full supervision ledger attached.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.engine.control import RunControl
from repro.engine.multistart import RunReport
from repro.engine.supervise import SupervisedRunner
from repro.service.jobs import Job
from repro.service.queue import JobQueue
from repro.service.store import ResultStore
from repro.service.worker import JobOutcome, JobPayload, run_service_job

__all__ = ["ServiceFleet"]


class ServiceFleet:
    """Dispatcher thread + supervised process pool over the job queue.

    Parameters mirror :class:`~repro.engine.supervise.SupervisedRunner`
    where they share names.  ``faults`` maps ``job_id`` to a
    :class:`repro.testing.faults.JobFault` (test-only; lets the fault
    suite kill exactly one chosen job's worker).  ``metrics`` is a
    :class:`repro.obs.MetricsRegistry`; pass the service's so fleet
    counters land on ``/metrics``.
    """

    def __init__(
        self,
        queue: JobQueue,
        store: ResultStore,
        jobs_root,
        workers: int = 2,
        timeout: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        retry_jitter: float = 0.25,
        max_pool_rebuilds: int = 2,
        poll_interval: float = 0.05,
        metrics=None,
        observer=None,
        faults: Optional[Dict[str, object]] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue = queue
        self.store = store
        self.jobs_root = Path(jobs_root)
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        self.stop_path = self.jobs_root / "stop"
        self.workers = int(workers)
        self.timeout = timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_jitter = float(retry_jitter)
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.poll_interval = float(poll_interval)
        self.metrics = metrics
        self.observer = observer
        self.faults: Dict[str, object] = dict(faults or {})
        self.control = RunControl()  # parent control for sequential jobs
        self.sequential_only = False  # the degradation latch
        self.pool_rebuilds = 0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        # A stop file surviving from a previous (drained or killed)
        # server must not halt this one's workers.
        try:
            self.stop_path.unlink()
        except OSError:
            pass
        self.control = RunControl()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="service-fleet", daemon=True
        )
        self._thread.start()

    def drain(self, timeout: float = 60.0) -> None:
        """Graceful shutdown: stop claiming, checkpoint running jobs,
        requeue them, compact the journal.

        The drain signal travels two ways at once -- the stop *file*
        for pool workers (separate processes) and the parent control's
        stop flag for sequential/in-process jobs -- so every running
        job writes a final checkpoint and comes home with
        ``stop_reason="drain"`` instead of being killed mid-move.
        """
        self._stop_event.set()
        self.stop_path.write_text("drain\n")
        self.control.request_stop("drain")
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self.queue.compact()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no job is queued or running (or ``timeout``);
        returns whether the queue went idle.  Test/smoke helper."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            counts = self.queue.counts()
            if not counts.get("queued") and not counts.get("running"):
                return True
            time.sleep(self.poll_interval)
        return False

    # -- dispatch -----------------------------------------------------

    def _loop(self) -> None:
        while not self._stop_event.is_set():
            batch = self.queue.claim(self.workers)
            if not batch:
                self._stop_event.wait(self.poll_interval)
                continue
            try:
                self._run_batch(batch)
            except Exception as exc:  # dispatcher must outlive any batch
                self._count("service_dispatch_errors")
                for job in batch:
                    try:
                        if self.queue.get(job.job_id).state == "running":
                            self.queue.requeue(
                                job.job_id, f"dispatcher error: {exc}"
                            )
                    except Exception:
                        pass

    def _job_dir(self, job_id: str) -> Path:
        return self.jobs_root / "jobs" / job_id

    def _payload(self, job: Job) -> JobPayload:
        payload = JobPayload(
            job_id=job.job_id,
            spec=job.spec,
            job_dir=str(self._job_dir(job.job_id)),
            stop_path=str(self.stop_path),
            fault=self.faults.get(job.job_id),
        )
        # A heartbeat file surviving a killed/drained earlier run has a
        # stale mtime; left in place it could condemn this dispatch as
        # hung before its worker writes a first beat.  (The checkpoint
        # file next to it stays -- that is what makes the rerun a
        # resume.)
        try:
            payload.heartbeat_path.unlink()
        except OSError:
            pass
        return payload

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n)

    def _run_batch(self, batch: List[Job]) -> None:
        payloads = {k: self._payload(job) for k, job in enumerate(batch)}
        reports = {
            k: RunReport(seed=job.spec.seed, label=job.job_id)
            for k, job in enumerate(batch)
        }
        results: Dict[int, object] = {}
        runner = SupervisedRunner(
            fn=run_service_job,
            make_args=lambda k, attempt, mode: (payloads[k], attempt, mode),
            timeout=self.timeout,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            retry_jitter=self.retry_jitter,
            heartbeat_path=lambda k: payloads[k].heartbeat_path,
            heartbeat_timeout=self.heartbeat_timeout,
            max_pool_rebuilds=self.max_pool_rebuilds,
            observer=self.observer,
        )
        effective = 1 if self.sequential_only else self.workers
        started = time.monotonic()
        rebuilds, degraded = runner.run(
            list(payloads), effective, reports, results, control=self.control
        )
        self.pool_rebuilds += rebuilds
        self._count("service_pool_rebuilds", rebuilds)
        if degraded and not self.sequential_only:
            # Latch, don't retry: a machine whose pools keep dying gets
            # slow-but-certain sequential execution until restart.
            self.sequential_only = True
            self._count("service_degraded")
        self._settle_batch(batch, results, reports)
        if self.metrics is not None:
            self.metrics.observe(
                "service_batch_seconds", time.monotonic() - started
            )

    def _settle_batch(
        self,
        batch: List[Job],
        results: Dict[int, object],
        reports: Dict[int, RunReport],
    ) -> None:
        """Settle every job in the batch, tolerating per-job failures.

        One job whose transition is refused (e.g. something raced it to
        a terminal state) or whose store write fails must not abort the
        settling of its batch-mates -- their results are real and
        discarding them would re-run finished work.  The failed job is
        requeued if it is still ``running``; terminal states are left
        where they are.
        """
        for k, job in enumerate(batch):
            try:
                self._settle(job, results.get(k), reports[k])
            except Exception as exc:
                self._count("service_settle_errors")
                try:
                    if self.queue.get(job.job_id).state == "running":
                        self.queue.requeue(
                            job.job_id, f"settle error: {exc}"
                        )
                except Exception:
                    pass

    def _settle(
        self, job: Job, outcome: Optional[object], report: RunReport
    ) -> None:
        """Translate one job's supervision outcome into a queue
        transition (every path journals exactly one transition)."""
        report_json = report.to_json()
        if isinstance(outcome, JobOutcome):
            if outcome.completed:
                key = job.spec.content_hash()
                self.store.put(key, outcome.result)
                self.queue.complete(job.job_id, key, report=report_json)
                self._count("service_jobs_done")
            elif outcome.stop_reason == "deadline":
                # The deadline asked for best-so-far; deliver it under
                # a per-job key so it can never shadow the content
                # hash's canonical (complete) result.
                key = f"job-{job.job_id}"
                self.store.put(key, outcome.result)
                self.queue.complete(job.job_id, key, report=report_json)
                self._count("service_jobs_deadline")
            else:
                # Drain / signal / supervisor stop: the checkpoint is
                # on disk, the next claim resumes it.
                self.queue.requeue(
                    job.job_id,
                    f"stopped: {outcome.stop_reason or 'stop'}",
                    report=report_json,
                )
                self._count("service_jobs_requeued")
        elif report.status == "skipped":
            # A stop arrived before this job's attempt started.
            self.queue.requeue(
                job.job_id, "drain before start", report=report_json
            )
            self._count("service_jobs_requeued")
        else:
            message = (
                report.failures[-1].message
                if report.failures
                else "worker produced no result"
            )
            self.queue.fail(job.job_id, message, report=report_json)
            self._count("service_jobs_failed")
