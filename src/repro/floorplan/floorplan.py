"""The placed-floorplan container."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.geometry import Point, Rect

__all__ = ["Floorplan"]


class Floorplan:
    """A non-overlapping packing of named modules.

    Produced by the slicing evaluator or the sequence-pair packer; the
    chip outline is the bounding box of the placements unless an
    explicit outline is given.
    """

    def __init__(
        self,
        placements: Mapping[str, Rect],
        chip: "Rect | None" = None,
    ):
        if not placements:
            raise ValueError("floorplan needs at least one placed module")
        self._placements: Dict[str, Rect] = dict(placements)
        bbox = None
        for rect in self._placements.values():
            bbox = rect if bbox is None else bbox.union_bbox(rect)
        if chip is None:
            chip = bbox
        elif not chip.contains_rect(bbox):
            # Shape-list heights/widths are sums in a different order
            # than the placement walk, so the bbox can exceed the chip
            # by float rounding; absorb that, reject real violations.
            tolerance = 1e-6 * max(bbox.width, bbox.height, 1.0)
            grown = chip.union_bbox(bbox)
            if (
                grown.width - chip.width > tolerance
                or grown.height - chip.height > tolerance
            ):
                raise ValueError(
                    "chip outline does not contain all placed modules: "
                    f"chip {chip}, placements bbox {bbox}"
                )
            chip = grown
        self.chip: Rect = chip

    # -- access ------------------------------------------------------------

    @property
    def placements(self) -> Mapping[str, Rect]:
        return dict(self._placements)

    @property
    def module_names(self) -> Tuple[str, ...]:
        return tuple(self._placements)

    def placement(self, name: str) -> Rect:
        """The placed rectangle of module ``name``."""
        try:
            return self._placements[name]
        except KeyError:
            raise KeyError(f"module {name!r} is not placed in this floorplan")

    def center(self, name: str) -> Point:
        """Center of a placed module -- the raw pin location before
        intersection-to-intersection snapping."""
        return self.placement(name).center

    # -- measures ------------------------------------------------------

    @property
    def n_modules(self) -> int:
        return len(self._placements)

    @property
    def area(self) -> float:
        """Chip (bounding) area -- the floorplanner's area objective."""
        return self.chip.area

    @property
    def module_area(self) -> float:
        return sum(r.area for r in self._placements.values())

    @property
    def whitespace_fraction(self) -> float:
        """Dead-space fraction of the chip: ``1 - sum(module)/chip``."""
        if self.chip.area == 0:
            return 0.0
        return 1.0 - self.module_area / self.chip.area

    # -- validation ----------------------------------------------------

    def overlapping_pairs(self) -> Iterable[Tuple[str, str]]:
        """All pairs of modules whose interiors intersect materially.

        Overlaps shallower than ~1e-9 of the chip edge are float dust
        (serialization round trips, shape-sum reassociation), not
        packing bugs, and are ignored.  A correct packer yields none;
        the test suite asserts this on every floorplan the library
        produces.  O(m^2), acceptable for block-level module counts.
        """
        tolerance = 1e-9 * max(self.chip.width, self.chip.height, 1.0)
        names = list(self._placements)
        for i, a in enumerate(names):
            ra = self._placements[a]
            for b in names[i + 1 :]:
                rb = self._placements[b]
                depth_x = min(ra.x_hi, rb.x_hi) - max(ra.x_lo, rb.x_lo)
                depth_y = min(ra.y_hi, rb.y_hi) - max(ra.y_lo, rb.y_lo)
                if depth_x > tolerance and depth_y > tolerance:
                    yield (a, b)

    def validate(self) -> None:
        """Raise :class:`ValueError` on any material interior overlap."""
        bad = list(self.overlapping_pairs())
        if bad:
            raise ValueError(f"floorplan has overlapping modules: {bad[:5]}")

    def __repr__(self) -> str:
        return (
            f"Floorplan({self.n_modules} modules, chip "
            f"{self.chip.width:.1f} x {self.chip.height:.1f}, "
            f"whitespace {100 * self.whitespace_fraction:.1f}%)"
        )
