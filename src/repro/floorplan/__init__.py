"""Floorplan representations and packing.

The paper's floorplanner (Section 5) is the classic Wong-Liu simulated
annealer over *normalized Polish expressions* [7]; this package provides
that representation plus the shape-curve packing that turns an
expression into module coordinates:

* :mod:`repro.floorplan.polish` -- normalized Polish expressions and the
  Wong-Liu neighbourhood moves M1/M2/M3;
* :mod:`repro.floorplan.packing` -- non-dominated shape lists and their
  horizontal/vertical combination;
* :mod:`repro.floorplan.slicing` -- expression -> placed floorplan;
* :mod:`repro.floorplan.floorplan` -- the placed-floorplan container;
* :mod:`repro.floorplan.sequence_pair` -- a non-slicing representation
  (extension; shows the congestion model is floorplanner-agnostic).
"""

from repro.floorplan.floorplan import Floorplan
from repro.floorplan.polish import (
    PolishExpression,
    OP_ABOVE,
    OP_BESIDE,
    initial_expression,
)
from repro.floorplan.packing import Shape, ShapeList, combine
from repro.floorplan.slicing import evaluate_polish, build_slicing_tree
from repro.floorplan.sequence_pair import SequencePair, pack_sequence_pair
from repro.floorplan.btree import BStarTree, pack_btree

__all__ = [
    "Floorplan",
    "PolishExpression",
    "OP_ABOVE",
    "OP_BESIDE",
    "initial_expression",
    "Shape",
    "ShapeList",
    "combine",
    "evaluate_polish",
    "build_slicing_tree",
    "SequencePair",
    "pack_sequence_pair",
    "BStarTree",
    "pack_btree",
]
