"""B*-tree floorplan representation (extension).

The third classic floorplan representation [Chang et al., DAC 2000],
completing the set next to slicing trees and sequence pairs: an ordered
binary tree over modules where

* the **left child** of a node is the lowest adjacent module to its
  *right* (``x = parent.x + parent.width``);
* the **right child** sits at the *same x* as its parent, above it.

Packing walks the tree in DFS order maintaining a *contour* -- the
skyline of placed modules -- so each module drops to the lowest legal
y at its x position.  B*-trees reach exactly the admissible compacted
placements, and packing is O(m) amortized per walk.

The perturbation set mirrors the literature: rotate a module, move a
node to a new parent, and swap two nodes.  Together with
:class:`~repro.anneal.btree_annealer`-style drivers (we reuse the
sequence-pair annealer pattern) this gives the congestion model a third
host floorplanner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.floorplan.floorplan import Floorplan
from repro.geometry import Rect

__all__ = ["BStarTree", "pack_btree"]


@dataclass(frozen=True)
class _Node:
    """One tree node: a module name plus child slots (names or None)."""

    left: Optional[str] = None
    right: Optional[str] = None


@dataclass(frozen=True)
class BStarTree:
    """An immutable B*-tree over module names.

    ``root`` names the module at the origin; ``nodes`` maps every
    module to its child slots; ``rotated`` flags 90-degree rotations.
    """

    root: str
    nodes: Mapping[str, _Node]
    rotated: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        names = set(self.nodes)
        if self.root not in names:
            raise ValueError(f"root {self.root!r} is not a tree node")
        seen = set()
        stack = [self.root]
        while stack:
            name = stack.pop()
            if name in seen:
                raise ValueError(f"node {name!r} reachable twice (cycle/DAG)")
            seen.add(name)
            node = self.nodes[name]
            for child in (node.left, node.right):
                if child is not None:
                    if child not in names:
                        raise ValueError(f"child {child!r} is not a tree node")
                    stack.append(child)
        if seen != names:
            raise ValueError(
                f"unreachable nodes: {sorted(names - seen)}"
            )
        unknown = set(self.rotated) - names
        if unknown:
            raise ValueError(f"rotation flags for unknown modules {unknown}")

    # -- constructors ----------------------------------------------------

    @classmethod
    def initial(
        cls, names: List[str], rng: "random.Random | None" = None
    ) -> "BStarTree":
        """A left-skewed chain (modules in a row), optionally shuffled."""
        order = list(names)
        if not order:
            raise ValueError("need at least one module")
        if rng is not None:
            rng.shuffle(order)
        nodes: Dict[str, _Node] = {}
        for i, name in enumerate(order):
            left = order[i + 1] if i + 1 < len(order) else None
            nodes[name] = _Node(left=left, right=None)
        return cls(order[0], nodes)

    # -- moves -------------------------------------------------------------

    def toggle_rotation(self, rng: random.Random) -> "BStarTree":
        """Flip one random module's 90-degree rotation."""
        name = rng.choice(sorted(self.nodes))
        rotated = set(self.rotated)
        if name in rotated:
            rotated.remove(name)
        else:
            rotated.add(name)
        return replace(self, rotated=frozenset(rotated))

    def swap_nodes(self, rng: random.Random) -> "BStarTree":
        """Swap two modules' positions in the tree (names trade places)."""
        names = sorted(self.nodes)
        if len(names) < 2:
            return self
        a, b = rng.sample(names, 2)
        mapping = {a: b, b: a}

        def rename(x: Optional[str]) -> Optional[str]:
            return mapping.get(x, x) if x is not None else None

        nodes = {
            mapping.get(name, name): _Node(rename(n.left), rename(n.right))
            for name, n in self.nodes.items()
        }
        rotated = frozenset(mapping.get(n, n) for n in self.rotated)
        return BStarTree(mapping.get(self.root, self.root), nodes, rotated)

    def move_node(self, rng: random.Random) -> "BStarTree":
        """Detach a random leaf and re-attach it at a random free slot."""
        leaves = [
            name
            for name, n in self.nodes.items()
            if n.left is None and n.right is None and name != self.root
        ]
        if not leaves:
            return self
        mover = rng.choice(sorted(leaves))
        nodes = {k: v for k, v in self.nodes.items() if k != mover}
        # Detach from its parent.
        for name, n in list(nodes.items()):
            if n.left == mover:
                nodes[name] = replace(n, left=None)
            elif n.right == mover:
                nodes[name] = replace(n, right=None)
        # Free slots after detachment.
        slots: List[Tuple[str, str]] = []
        for name, n in nodes.items():
            if n.left is None:
                slots.append((name, "left"))
            if n.right is None:
                slots.append((name, "right"))
        parent, side = slots[rng.randrange(len(slots))]
        attached = replace(
            nodes[parent], **{side: mover}
        )
        nodes[parent] = attached
        nodes[mover] = _Node()
        return BStarTree(self.root, nodes, self.rotated)

    def random_neighbor(self, rng: random.Random) -> "BStarTree":
        """One uniformly-chosen perturbation (rotate/swap/move)."""
        choice = rng.randrange(3)
        if choice == 0:
            return self.toggle_rotation(rng)
        if choice == 1:
            return self.swap_nodes(rng)
        return self.move_node(rng)


def pack_btree(tree: BStarTree, modules: Mapping[str, object]) -> Floorplan:
    """Pack a B*-tree with the contour algorithm.

    DFS preorder; left children go right of their parent, right
    children share their parent's x.  Each module's y is the maximum
    contour height over its x span; the contour is then raised.
    """
    dims: Dict[str, Tuple[float, float]] = {}
    for name in tree.nodes:
        try:
            m = modules[name]
        except KeyError:
            raise KeyError(f"B*-tree names unknown module {name!r}")
        if name in tree.rotated:
            dims[name] = (m.height, m.width)
        else:
            dims[name] = (m.width, m.height)

    # Contour as a sorted list of (x, height) steps; height applies
    # from this x to the next step's x.
    contour: List[Tuple[float, float]] = [(0.0, 0.0)]
    placements: Dict[str, Rect] = {}

    def contour_max(x_lo: float, x_hi: float) -> float:
        top = 0.0
        for i, (x, h) in enumerate(contour):
            seg_end = contour[i + 1][0] if i + 1 < len(contour) else float("inf")
            if x < x_hi and seg_end > x_lo:
                top = max(top, h)
        return top

    def contour_raise(x_lo: float, x_hi: float, new_h: float) -> None:
        # Rebuild the step list with [x_lo, x_hi) at new_h.
        new: List[Tuple[float, float]] = []
        inserted = False
        tail_height = 0.0
        for i, (x, h) in enumerate(contour):
            seg_end = contour[i + 1][0] if i + 1 < len(contour) else float("inf")
            if seg_end <= x_lo or x >= x_hi:
                new.append((x, h))
                if x < x_hi:
                    tail_height = h
                continue
            # Overlapping segment: keep the uncovered prefix/suffix.
            if x < x_lo:
                new.append((x, h))
            if not inserted:
                new.append((x_lo, new_h))
                inserted = True
            if seg_end > x_hi:
                new.append((x_hi, h))
            tail_height = h
        if not inserted:
            new.append((x_lo, new_h))
            new.append((x_hi, tail_height))
        elif all(abs(x - x_hi) > 1e-12 for x, _ in new):
            new.append((x_hi, tail_height))
        # Normalize: sort, drop duplicate xs (keep the later entry).
        new.sort(key=lambda s: s[0])
        dedup: List[Tuple[float, float]] = []
        for x, h in new:
            if dedup and abs(dedup[-1][0] - x) < 1e-12:
                dedup[-1] = (x, h)
            else:
                dedup.append((x, h))
        contour[:] = dedup

    def place(name: str, x: float) -> None:
        w, h = dims[name]
        y = contour_max(x, x + w)
        placements[name] = Rect.from_origin(x, y, w, h)
        contour_raise(x, x + w, y + h)
        node = tree.nodes[name]
        if node.left is not None:
            place(node.left, x + w)
        if node.right is not None:
            place(node.right, x)

    place(tree.root, 0.0)
    return Floorplan(placements)
