"""Normalized Polish expressions and the Wong-Liu moves.

A slicing floorplan of ``m`` modules is a Polish (postfix) expression of
the ``m`` module names and ``m - 1`` cut operators [Wong & Liu, DAC'86]:

* ``+`` -- the second operand is placed *above* the first
  (a horizontal cut: widths max, heights add);
* ``*`` -- the second operand is placed *beside* (right of) the first
  (a vertical cut: widths add, heights max).

An expression is valid iff it satisfies the *balloting property* (every
prefix has more operands than operators) and is *normalized* (no two
consecutive identical operators), which makes the representation of each
slicing structure unique.  The annealer perturbs expressions with the
three classic moves:

* **M1** -- swap two operands adjacent in the operand subsequence;
* **M2** -- complement a maximal chain of operators;
* **M3** -- swap an adjacent operand/operator pair (skipping swaps that
  would break balloting or normality).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "OP_ABOVE",
    "OP_BESIDE",
    "OPERATORS",
    "PolishExpression",
    "initial_expression",
]

OP_ABOVE = "+"
OP_BESIDE = "*"
OPERATORS = frozenset((OP_ABOVE, OP_BESIDE))

_COMPLEMENT = {OP_ABOVE: OP_BESIDE, OP_BESIDE: OP_ABOVE}


def _is_operator(token: str) -> bool:
    return token in OPERATORS


class PolishExpression:
    """An immutable, validated, normalized Polish expression."""

    __slots__ = ("_tokens",)

    def __init__(self, tokens: Sequence[str]):
        self._tokens: Tuple[str, ...] = tuple(tokens)
        self._validate()

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        if not self._tokens:
            raise ValueError("empty Polish expression")
        n_operands = 0
        n_operators = 0
        prev_operator = False
        seen = set()
        for tok in self._tokens:
            if _is_operator(tok):
                n_operators += 1
                if n_operators >= n_operands:
                    raise ValueError(
                        "balloting property violated in "
                        f"{' '.join(self._tokens)!r}"
                    )
                if prev_operator and tok == prev_tok:
                    raise ValueError(
                        "expression is not normalized (consecutive "
                        f"{tok!r}) in {' '.join(self._tokens)!r}"
                    )
                prev_operator = True
            else:
                n_operands += 1
                if tok in seen:
                    raise ValueError(f"operand {tok!r} appears twice")
                seen.add(tok)
                prev_operator = False
            prev_tok = tok
        if n_operators != n_operands - 1:
            raise ValueError(
                f"expected {n_operands - 1} operators for {n_operands} "
                f"operands, got {n_operators}"
            )

    # -- access ------------------------------------------------------------

    @property
    def tokens(self) -> Tuple[str, ...]:
        return self._tokens

    @property
    def operands(self) -> Tuple[str, ...]:
        return tuple(t for t in self._tokens if not _is_operator(t))

    @property
    def n_modules(self) -> int:
        return (len(self._tokens) + 1) // 2

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PolishExpression) and self._tokens == other._tokens
        )

    def __hash__(self) -> int:
        return hash(self._tokens)

    def __repr__(self) -> str:
        return f"PolishExpression({' '.join(self._tokens)!r})"

    # -- moves -------------------------------------------------------------

    def move_m1(self, rng: random.Random) -> "PolishExpression":
        """Swap two operands adjacent in the operand subsequence."""
        positions = [i for i, t in enumerate(self._tokens) if not _is_operator(t)]
        if len(positions) < 2:
            return self
        k = rng.randrange(len(positions) - 1)
        i, j = positions[k], positions[k + 1]
        tokens = list(self._tokens)
        tokens[i], tokens[j] = tokens[j], tokens[i]
        return PolishExpression(tokens)

    def move_m2(self, rng: random.Random) -> "PolishExpression":
        """Complement every operator in one maximal operator chain."""
        chains = self._operator_chains()
        if not chains:
            return self
        start, end = chains[rng.randrange(len(chains))]
        tokens = list(self._tokens)
        for i in range(start, end):
            tokens[i] = _COMPLEMENT[tokens[i]]
        return PolishExpression(tokens)

    def move_m3(
        self, rng: random.Random, max_attempts: int = 32
    ) -> Optional["PolishExpression"]:
        """Swap one adjacent operand/operator pair.

        Candidate positions are tried in random order; returns ``None``
        when no attempted swap yields a valid normalized expression (the
        annealer then draws a different move).
        """
        candidates = [
            i
            for i in range(len(self._tokens) - 1)
            if _is_operator(self._tokens[i]) != _is_operator(self._tokens[i + 1])
        ]
        rng.shuffle(candidates)
        for i in candidates[:max_attempts]:
            tokens = list(self._tokens)
            tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
            try:
                return PolishExpression(tokens)
            except ValueError:
                continue
        return None

    def random_neighbor(self, rng: random.Random) -> "PolishExpression":
        """One random M1/M2/M3 perturbation (uniform over move kinds;
        falls back to M1 when M3 finds no legal swap)."""
        choice = rng.randrange(3)
        if choice == 0:
            return self.move_m1(rng)
        if choice == 1:
            return self.move_m2(rng)
        neighbor = self.move_m3(rng)
        return neighbor if neighbor is not None else self.move_m1(rng)

    # -- helpers -------------------------------------------------------

    def _operator_chains(self) -> List[Tuple[int, int]]:
        """Half-open index ranges of maximal operator runs."""
        chains = []
        i = 0
        n = len(self._tokens)
        while i < n:
            if _is_operator(self._tokens[i]):
                j = i
                while j < n and _is_operator(self._tokens[j]):
                    j += 1
                chains.append((i, j))
                i = j
            else:
                i += 1
        return chains


def initial_expression(
    module_names: Sequence[str],
    rng: "random.Random | None" = None,
) -> PolishExpression:
    """A valid starting expression: a left-deep alternating chain.

    ``m0 m1 + m2 * m3 + ...`` -- trivially balloting-valid and
    normalized.  With an ``rng`` the operand order is shuffled so
    different seeds start annealing from different floorplans.
    """
    names = list(module_names)
    if len(names) < 1:
        raise ValueError("need at least one module")
    if rng is not None:
        rng.shuffle(names)
    tokens: List[str] = [names[0]]
    ops = (OP_ABOVE, OP_BESIDE)
    for k, name in enumerate(names[1:]):
        tokens.append(name)
        tokens.append(ops[k % 2])
    return PolishExpression(tokens)
