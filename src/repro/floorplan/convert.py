"""Representation conversion: a placed floorplan -> any representation.

The portfolio search driver races Polish-expression, sequence-pair and
B*-tree annealers against each other and migrates *elite* solutions
across representations: the best floorplan found under one
representation becomes the starting state of a restart under another.
That needs the inverse of ``realize`` -- given a placed
:class:`~repro.floorplan.floorplan.Floorplan`, reconstruct a state in
the target representation whose packing resembles it.

Exactness is impossible in general (slicing trees cannot express every
packing; B*-trees reach only left-bottom-compacted ones), so each
converter is a *structure-preserving heuristic*: the reconstructed
state packs to a floorplan with the same neighborhood relations where
the representation can express them, and the migrated run re-anneals
from there.  All three converters are deterministic -- identical
inputs produce identical states, which the driver parity tests rely
on -- and always return a *valid* state (validation failures fall back
to a deterministic placement-ordered chain, never an exception).

Rotation flags are recovered per module by comparing the placed
rectangle's dimensions against the module's nominal ``width x height``
(ties -- squares -- are never flagged).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.floorplan.btree import BStarTree, _Node
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.polish import (
    OP_ABOVE,
    OP_BESIDE,
    PolishExpression,
    initial_expression,
)
from repro.floorplan.sequence_pair import SequencePair
from repro.netlist import Module

__all__ = [
    "polish_from_floorplan",
    "sequence_pair_from_floorplan",
    "btree_from_floorplan",
]


def _rotated_names(
    floorplan: Floorplan, modules: Mapping[str, Module]
) -> frozenset:
    """Modules whose placed rect matches the rotated outline better."""
    rotated = set()
    for name, rect in floorplan.placements.items():
        m = modules.get(name)
        if m is None or m.width == m.height:
            continue
        upright = abs(rect.width - m.width) + abs(rect.height - m.height)
        turned = abs(rect.width - m.height) + abs(rect.height - m.width)
        if turned < upright:
            rotated.add(name)
    return frozenset(rotated)


def _sweep_order(floorplan: Floorplan, names: Sequence[str]) -> List[str]:
    """Deterministic placement sweep: left-to-right, bottom-to-top."""
    rects = floorplan.placements
    return sorted(
        names, key=lambda n: (rects[n].x_lo, rects[n].y_lo, n)
    )


# -- Polish expressions (slicing) ------------------------------------------


def _guillotine_parts(
    names: List[str], rects: Mapping[str, "object"], vertical: bool
) -> Optional[List[List[str]]]:
    """Split ``names`` at every full guillotine cut along one axis.

    Returns the maximal list of parts (>= 2) ordered along the axis, or
    ``None`` when no cut line spans the whole group.  Parts are maximal
    slices, so no part admits another top-level cut in the *same*
    direction -- which is what keeps the emitted postfix normalized
    (no two consecutive identical operators).
    """
    if vertical:
        lo = lambda n: rects[n].x_lo  # noqa: E731
        hi = lambda n: rects[n].x_hi  # noqa: E731
    else:
        lo = lambda n: rects[n].y_lo  # noqa: E731
        hi = lambda n: rects[n].y_hi  # noqa: E731
    ordered = sorted(names, key=lambda n: (lo(n), hi(n), n))
    spans = [hi(n) - lo(n) for n in ordered]
    tol = 1e-9 * max(max(spans), 1.0)
    parts: List[List[str]] = []
    part: List[str] = []
    reach = None
    for n in ordered:
        if part and reach is not None and lo(n) >= reach - tol:
            parts.append(part)
            part = []
            reach = None
        part.append(n)
        reach = hi(n) if reach is None else max(reach, hi(n))
    parts.append(part)
    return parts if len(parts) >= 2 else None


def _flatten(op: str, children: List[object]) -> Tuple[str, List[object]]:
    """Merge same-operator children into one n-ary combine.

    Same-direction slicing combines are associative (``(a b *) c *``
    and ``a (b c *) *`` pack identically), so a child whose top-level
    operator equals the parent's dissolves into the parent's operand
    list.  After flattening, no direct child carries the parent's
    operator -- the property that makes the emitted postfix normalized.
    """
    out: List[object] = []
    for child in children:
        if isinstance(child, tuple) and child[0] == op:
            out.extend(child[1])
        else:
            out.append(child)
    return (op, out)


def _polish_node(names: List[str], rects, prefer_vertical: bool):
    """A slicing-tree node (leaf name, or ``(op, children)``) for one
    group, recursing through guillotine cuts.

    ``prefer_vertical`` picks which axis to try first and which
    operator a cutless (non-slicing) cluster is forced apart with;
    alternating it per level keeps fallback splits balanced.
    """
    if len(names) == 1:
        return names[0]
    for vertical in (True, False) if prefer_vertical else (False, True):
        parts = _guillotine_parts(names, rects, vertical)
        if parts is not None:
            # OP_BESIDE places the second operand right of the first,
            # OP_ABOVE above it; parts come ordered along the axis, so
            # an in-order combine reproduces the spatial order.
            op = OP_BESIDE if vertical else OP_ABOVE
            return _flatten(
                op, [_polish_node(p, rects, not vertical) for p in parts]
            )
    # No guillotine cut exists (a non-slicing wheel): split the group
    # in half along the preferred axis by rect centers and force the
    # corresponding operator.
    key = (
        (lambda n: (rects[n].x_lo + rects[n].x_hi, n))
        if prefer_vertical
        else (lambda n: (rects[n].y_lo + rects[n].y_hi, n))
    )
    ordered = sorted(names, key=key)
    half = len(ordered) // 2
    op = OP_BESIDE if prefer_vertical else OP_ABOVE
    return _flatten(
        op,
        [
            _polish_node(ordered[:half], rects, not prefer_vertical),
            _polish_node(ordered[half:], rects, not prefer_vertical),
        ],
    )


def _emit_postfix(node) -> List[str]:
    """Left-deep postfix of a slicing tree.

    Flattening guarantees no child shares its parent's operator, so
    every emitted operator is preceded by tokens ending in either an
    operand or a *different* operator -- the expression is normalized
    by construction.
    """
    if isinstance(node, str):
        return [node]
    op, children = node
    tokens = _emit_postfix(children[0])
    for child in children[1:]:
        tokens += _emit_postfix(child)
        tokens.append(op)
    return tokens


def polish_from_floorplan(
    floorplan: Floorplan, modules: Mapping[str, Module]
) -> PolishExpression:
    """Reconstruct a normalized Polish expression from a placement.

    Recursive guillotine extraction: wherever a vertical or horizontal
    cut line spans the whole group the group splits there (multi-way,
    combined left-deep so the postfix stays normalized); clusters with
    no guillotine cut fall back to center-median splits with
    alternating cut direction.  A slicing placement round-trips to an
    expression that packs to the same adjacency structure; any
    placement yields *some* valid expression.
    """
    rects = floorplan.placements
    names = sorted(rects)
    if len(names) == 1:
        return PolishExpression(names)
    tokens = _emit_postfix(_polish_node(names, rects, prefer_vertical=True))
    try:
        return PolishExpression(tokens)
    except ValueError:
        # Defensive fallback: a deterministic alternating chain over
        # the placement sweep order is always valid.
        return initial_expression(_sweep_order(floorplan, names))


# -- Sequence pairs --------------------------------------------------------


def sequence_pair_from_floorplan(
    floorplan: Floorplan, modules: Mapping[str, Module]
) -> SequencePair:
    """Reconstruct a sequence pair from a placement.

    The classic center-sort construction: ``gamma_plus`` orders modules
    from top-left to bottom-right (key ``x - y``), ``gamma_minus`` from
    bottom-left to top-right (key ``x + y``).  For modules whose rects
    strictly dominate each other horizontally or vertically this
    reproduces the exact left-of / below relations; diagonal neighbors
    resolve by center geometry.  Rotation flags are recovered from the
    placed dimensions.
    """
    rects = floorplan.placements
    names = sorted(rects)

    def center(n: str) -> Tuple[float, float]:
        r = rects[n]
        return (r.x_lo + r.x_hi) / 2.0, (r.y_lo + r.y_hi) / 2.0

    gamma_plus = tuple(
        sorted(names, key=lambda n: (center(n)[0] - center(n)[1], n))
    )
    gamma_minus = tuple(
        sorted(names, key=lambda n: (center(n)[0] + center(n)[1], n))
    )
    return SequencePair(
        gamma_plus, gamma_minus, _rotated_names(floorplan, modules)
    )


# -- B*-trees --------------------------------------------------------------


def btree_from_floorplan(
    floorplan: Floorplan, modules: Mapping[str, Module]
) -> BStarTree:
    """Reconstruct a B*-tree from a placement.

    Modules attach in placement sweep order (x, then y): each module
    picks the already-placed module whose free child slot best matches
    the B*-tree geometry -- a **left child** sits at its parent's right
    edge (``x = parent.x_hi, y ~ parent.y_lo``), a **right child**
    stacks above at the same x (``x = parent.x_lo, y ~ parent.y_hi``).
    The closest geometric fit wins (ties break on parent name, left
    slot first); a binary tree over ``k`` placed nodes always has a
    free slot, so every module attaches and the result is always a
    valid tree.
    """
    rects = floorplan.placements
    order = _sweep_order(floorplan, list(rects))
    root = order[0]
    children: Dict[str, List[Optional[str]]] = {root: [None, None]}
    for name in order[1:]:
        r = rects[name]
        best = None  # (score, parent_name, slot_index)
        for parent in sorted(children):
            p = rects[parent]
            slots = children[parent]
            if slots[0] is None:
                score = abs(p.x_hi - r.x_lo) + abs(p.y_lo - r.y_lo)
                cand = (score, parent, 0)
                if best is None or cand < best:
                    best = cand
            if slots[1] is None:
                score = abs(p.x_lo - r.x_lo) + abs(p.y_hi - r.y_lo)
                cand = (score, parent, 1)
                if best is None or cand < best:
                    best = cand
        assert best is not None  # k placed nodes expose k+1 free slots
        _, parent, slot = best
        children[parent][slot] = name
        children[name] = [None, None]
    nodes = {
        name: _Node(left=slots[0], right=slots[1])
        for name, slots in children.items()
    }
    return BStarTree(root, nodes, _rotated_names(floorplan, modules))
