"""Non-dominated shape lists for slicing-tree area evaluation.

Each slicing subtree admits a set of realizable outlines; only the
*non-dominated* ones (no other outline at most as wide and at most as
tall) can ever appear in an optimal packing.  For hard modules with
90-degree rotation a leaf has at most two shapes, and composing two
children with a cut keeps the list size at most ``|L| + |R| - 1``
[Stockmeyer 1983], so whole-tree evaluation is linear in total shape
count.

Every :class:`Shape` carries back-pointers to the child shapes that
realize it, so after choosing the root outline the placer can walk back
down and recover each module's orientation and position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.floorplan.polish import OP_ABOVE, OP_BESIDE

__all__ = ["Shape", "ShapeList", "leaf_shapes", "leaf_shapes_for_module", "combine"]


@dataclass(frozen=True)
class Shape:
    """One realizable outline of a subtree.

    ``left_index``/``right_index`` identify the child shapes composing
    this one; ``None`` for leaves, where ``rotated`` records the module
    orientation instead.
    """

    width: float
    height: float
    left_index: Optional[int] = None
    right_index: Optional[int] = None
    rotated: bool = False

    @property
    def area(self) -> float:
        return self.width * self.height

    def dominates(self, other: "Shape") -> bool:
        """At most as wide *and* at most as tall (weakly better)."""
        return self.width <= other.width and self.height <= other.height


class ShapeList:
    """Non-dominated shapes sorted by increasing width.

    After pruning, widths strictly increase and heights strictly
    decrease along the list.
    """

    __slots__ = ("shapes",)

    def __init__(self, shapes: Sequence[Shape]):
        if not shapes:
            raise ValueError("shape list cannot be empty")
        self.shapes: List[Shape] = _prune(shapes)

    def min_area_index(self) -> int:
        """Index of the smallest-area shape."""
        best, best_area = 0, self.shapes[0].area
        for i, s in enumerate(self.shapes[1:], start=1):
            if s.area < best_area:
                best, best_area = i, s.area
        return best

    def min_area(self) -> float:
        """Area of the smallest-area shape."""
        return self.shapes[self.min_area_index()].area

    def __len__(self) -> int:
        return len(self.shapes)

    def __getitem__(self, i: int) -> Shape:
        return self.shapes[i]

    def __iter__(self):
        return iter(self.shapes)


def _prune(shapes: Sequence[Shape]) -> List[Shape]:
    """Keep only non-dominated shapes, sorted by increasing width.

    After sorting by ``(width, height)``, a shape survives iff it is
    strictly shorter than every shape already kept (all of which are no
    wider), leaving widths strictly increasing and heights strictly
    decreasing.
    """
    ordered = sorted(shapes, key=lambda s: (s.width, s.height))
    out: List[Shape] = []
    for s in ordered:
        if not out or s.height < out[-1].height:
            out.append(s)
    return out


def leaf_shapes(width: float, height: float, allow_rotation: bool = True) -> ShapeList:
    """Shape list of a single hard module."""
    shapes = [Shape(width, height, rotated=False)]
    if allow_rotation and width != height:
        shapes.append(Shape(height, width, rotated=True))
    return ShapeList(shapes)


def leaf_shapes_for_module(module, allow_rotation: bool = True) -> ShapeList:
    """Shape list from any module-like object exposing ``shapes()``.

    Hard modules yield their one or two rotations; soft modules yield a
    discretized aspect-ratio sweep (see
    :class:`repro.netlist.soft.SoftModule`).  Dominated outlines are
    pruned by :class:`ShapeList` as usual.
    """
    candidates = [Shape(w, h) for w, h in module.shapes(allow_rotation)]
    return ShapeList(candidates)


def combine(op: str, left: ShapeList, right: ShapeList) -> ShapeList:
    """Compose two children's shape lists under a cut operator.

    ``+`` stacks right above left (widths max, heights add); ``*``
    places right beside left (widths add, heights max).  The classic
    two-pointer merge enumerates at most ``len(left) + len(right) - 1``
    candidates containing every non-dominated composition.
    """
    if op == OP_ABOVE:
        return _combine_stack(left, right)
    if op == OP_BESIDE:
        return _combine_beside(left, right)
    raise ValueError(f"unknown cut operator {op!r}")


def _combine_beside(left: ShapeList, right: ShapeList) -> ShapeList:
    # Widths add, height is the max: pair shapes by descending height.
    # Both lists have heights strictly decreasing with index; start at
    # the tallest of each and step the currently-taller side forward.
    candidates: List[Shape] = []
    i = j = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        ls, rs = left[i], right[j]
        candidates.append(
            Shape(ls.width + rs.width, max(ls.height, rs.height), i, j)
        )
        if ls.height > rs.height:
            i += 1
        elif rs.height > ls.height:
            j += 1
        else:
            i += 1
            j += 1
    return ShapeList(candidates)


def _combine_stack(left: ShapeList, right: ShapeList) -> ShapeList:
    # Heights add, width is the max: pair shapes by descending width,
    # i.e. iterate the lists from the wide end backwards.
    candidates: List[Shape] = []
    i, j = len(left) - 1, len(right) - 1
    while i >= 0 and j >= 0:
        ls, rs = left[i], right[j]
        candidates.append(
            Shape(max(ls.width, rs.width), ls.height + rs.height, i, j)
        )
        if ls.width > rs.width:
            i -= 1
        elif rs.width > ls.width:
            j -= 1
        else:
            i -= 1
            j -= 1
    return ShapeList(candidates)
