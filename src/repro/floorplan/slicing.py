"""Slicing-tree evaluation: Polish expression -> placed floorplan.

The evaluator builds the slicing tree from the postfix expression,
computes each node's non-dominated shape list bottom-up, picks the
minimum-area root outline, then walks back down the recorded child
choices assigning coordinates:

* ``*`` (beside): left child at ``(x, y)``, right child at
  ``(x + w_left, y)``;
* ``+`` (above): left child at ``(x, y)``, right child at
  ``(x, y + h_left)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.floorplan.floorplan import Floorplan
from repro.floorplan.packing import (
    ShapeList,
    combine,
    leaf_shapes_for_module,
)
from repro.floorplan.polish import OP_ABOVE, OPERATORS, PolishExpression
from repro.geometry import Rect
from repro.netlist import Module

__all__ = ["SlicingNode", "build_slicing_tree", "evaluate_polish"]


@dataclass
class SlicingNode:
    """A slicing-tree node with its computed shape list."""

    shapes: ShapeList
    op: Optional[str] = None  # None for leaves
    module_name: Optional[str] = None
    left: "SlicingNode | None" = None
    right: "SlicingNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.op is None


def build_slicing_tree(
    expression: PolishExpression,
    modules: Mapping[str, Module],
    allow_rotation: bool = True,
) -> SlicingNode:
    """Build the tree and compute every node's shape list bottom-up."""
    stack: list[SlicingNode] = []
    for token in expression.tokens:
        if token in OPERATORS:
            right = stack.pop()
            left = stack.pop()
            node = SlicingNode(
                shapes=combine(token, left.shapes, right.shapes),
                op=token,
                left=left,
                right=right,
            )
            stack.append(node)
        else:
            try:
                module = modules[token]
            except KeyError:
                raise KeyError(
                    f"expression operand {token!r} has no module definition"
                )
            stack.append(
                SlicingNode(
                    shapes=leaf_shapes_for_module(module, allow_rotation),
                    module_name=token,
                )
            )
    # PolishExpression validity guarantees exactly one tree remains.
    return stack[0]


def _place(
    node: SlicingNode,
    shape_index: int,
    x: float,
    y: float,
    out: Dict[str, Rect],
) -> None:
    shape = node.shapes[shape_index]
    if node.is_leaf:
        out[node.module_name] = Rect.from_origin(x, y, shape.width, shape.height)
        return
    left_shape = node.left.shapes[shape.left_index]
    _place(node.left, shape.left_index, x, y, out)
    if node.op == OP_ABOVE:
        _place(node.right, shape.right_index, x, y + left_shape.height, out)
    else:
        _place(node.right, shape.right_index, x + left_shape.width, y, out)


def evaluate_polish(
    expression: PolishExpression,
    modules: Mapping[str, Module],
    allow_rotation: bool = True,
) -> Floorplan:
    """Pack a Polish expression into the minimum-area floorplan.

    The chip outline is the chosen root shape (modules may leave
    whitespace inside it wherever a cut's two sides differ in extent).
    """
    root = build_slicing_tree(expression, modules, allow_rotation)
    best = root.shapes.min_area_index()
    placements: Dict[str, Rect] = {}
    _place(root, best, 0.0, 0.0, placements)
    chip_shape = root.shapes[best]
    chip = Rect.from_origin(0.0, 0.0, chip_shape.width, chip_shape.height)
    return Floorplan(placements, chip=chip)
