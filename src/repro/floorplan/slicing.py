"""Slicing-tree evaluation: Polish expression -> placed floorplan.

The evaluator builds the slicing tree from the postfix expression,
computes each node's non-dominated shape list bottom-up, picks the
minimum-area root outline, then walks back down the recorded child
choices assigning coordinates:

* ``*`` (beside): left child at ``(x, y)``, right child at
  ``(x + w_left, y)``;
* ``+`` (above): left child at ``(x, y)``, right child at
  ``(x, y + h_left)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.floorplan.floorplan import Floorplan
from repro.floorplan.packing import (
    ShapeList,
    combine,
    leaf_shapes_for_module,
)
from repro.floorplan.polish import OP_ABOVE, OPERATORS, PolishExpression
from repro.geometry import Rect
from repro.netlist import Module
from repro.perf.cache import BoundedCache

__all__ = [
    "SlicingNode",
    "build_slicing_tree",
    "evaluate_polish",
]

# Shape lists are pure functions of a subtree: ``combine`` over the same
# operator and child lists always yields the same (immutable) result.
# Annealing moves perturb a couple of tokens, so almost every subtree of
# a candidate expression was already evaluated in a recent state -- the
# ``cache`` argument (an engine-owned ``BoundedCache``, typically
# ``CacheContext.subtree_shapes``) turns the bottom-up Stockmeyer pass
# into mostly lookups.  Leaf keys are grounded in the module objects
# themselves (frozen dataclasses), so identically named modules with
# different dimensions -- or rotation settings -- never collide.
# Interior keys are ``(op, left_id, right_id)`` over *interned* child
# ids (each cache entry carries a unique id from ``_SUBTREE_IDS``)
# rather than nested child keys: hashing a nested key would walk the
# whole subtree at every level, turning the pass quadratic.  Ids come
# from a process-wide counter and are never reused, so distinct
# subtrees can't collide even across separate caches; an
# evicted-and-reinterned subtree merely strands its parents' old
# entries until they age out.
_SUBTREE_IDS = itertools.count()


@dataclass
class SlicingNode:
    """A slicing-tree node with its computed shape list."""

    shapes: ShapeList
    op: Optional[str] = None  # None for leaves
    module_name: Optional[str] = None
    left: "SlicingNode | None" = None
    right: "SlicingNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.op is None


def build_slicing_tree(
    expression: PolishExpression,
    modules: Mapping[str, Module],
    allow_rotation: bool = True,
    cache: Optional[BoundedCache] = None,
) -> SlicingNode:
    """Build the tree and compute every node's shape list bottom-up.

    ``cache`` memoizes per-subtree shape lists (the default ``None``
    recomputes everything); cached or not, the lists are identical
    objects' worth of identical values, so packing results do not
    depend on the cache state.
    """
    if cache is None:
        stack: list[SlicingNode] = []
        for token in expression.tokens:
            if token in OPERATORS:
                right = stack.pop()
                left = stack.pop()
                stack.append(
                    SlicingNode(
                        shapes=combine(token, left.shapes, right.shapes),
                        op=token,
                        left=left,
                        right=right,
                    )
                )
            else:
                try:
                    module = modules[token]
                except KeyError:
                    raise KeyError(
                        f"expression operand {token!r} has no module definition"
                    )
                stack.append(
                    SlicingNode(
                        shapes=leaf_shapes_for_module(module, allow_rotation),
                        module_name=token,
                    )
                )
        # PolishExpression validity guarantees exactly one tree remains.
        return stack[0]

    # Memoized pass: stack entries are (node, interned subtree id).
    mstack: list[tuple[SlicingNode, int]] = []
    for token in expression.tokens:
        if token in OPERATORS:
            right, right_id = mstack.pop()
            left, left_id = mstack.pop()
            key = (token, left_id, right_id)
            entry = cache.get(key)
            if entry is None:
                shapes = combine(token, left.shapes, right.shapes)
                entry = (next(_SUBTREE_IDS), shapes)
                cache.put(key, entry)
            node = SlicingNode(
                shapes=entry[1],
                op=token,
                left=left,
                right=right,
            )
            mstack.append((node, entry[0]))
        else:
            try:
                module = modules[token]
            except KeyError:
                raise KeyError(
                    f"expression operand {token!r} has no module definition"
                )
            key = (module, allow_rotation)
            entry = cache.get(key)
            if entry is None:
                entry = (
                    next(_SUBTREE_IDS),
                    leaf_shapes_for_module(module, allow_rotation),
                )
                cache.put(key, entry)
            mstack.append(
                (SlicingNode(shapes=entry[1], module_name=token), entry[0])
            )
    return mstack[0][0]


def _place(
    node: SlicingNode,
    shape_index: int,
    x: float,
    y: float,
    out: Dict[str, Rect],
) -> None:
    """Place every module of the chosen realization, iteratively.

    An explicit work stack instead of recursion: a pathological but
    perfectly legal expression (``m0 m1 * m2 * ...``, one long
    left-deep chain) nests as deep as the module count, and annealing
    near 1k modules used to blow CPython's recursion limit here.  The
    right child is pushed first so the left subtree is walked -- and
    ``out`` is filled -- in exactly the order the recursive version
    used, keeping placement insertion order (and therefore downstream
    dict-order-sensitive consumers) bit-identical.
    """
    stack = [(node, shape_index, x, y)]
    while stack:
        node, shape_index, x, y = stack.pop()
        shape = node.shapes[shape_index]
        if node.is_leaf:
            out[node.module_name] = Rect.from_origin(
                x, y, shape.width, shape.height
            )
            continue
        left_shape = node.left.shapes[shape.left_index]
        if node.op == OP_ABOVE:
            stack.append(
                (node.right, shape.right_index, x, y + left_shape.height)
            )
        else:
            stack.append(
                (node.right, shape.right_index, x + left_shape.width, y)
            )
        stack.append((node.left, shape.left_index, x, y))


def evaluate_polish(
    expression: PolishExpression,
    modules: Mapping[str, Module],
    allow_rotation: bool = True,
    cache: Optional[BoundedCache] = None,
) -> Floorplan:
    """Pack a Polish expression into the minimum-area floorplan.

    The chip outline is the chosen root shape (modules may leave
    whitespace inside it wherever a cut's two sides differ in extent).
    ``cache`` is the subtree shape memo (the default ``None`` disables
    it; the packing is identical either way).
    """
    root = build_slicing_tree(expression, modules, allow_rotation, cache=cache)
    best = root.shapes.min_area_index()
    placements: Dict[str, Rect] = {}
    _place(root, best, 0.0, 0.0, placements)
    chip_shape = root.shapes[best]
    chip = Rect.from_origin(0.0, 0.0, chip_shape.width, chip_shape.height)
    return Floorplan(placements, chip=chip)
