"""Sequence-pair floorplan representation (extension).

The paper's floorplanner is slicing-only; Section 4.6 claims the
congestion model "can be embedded into any general floorplanners".  To
exercise that claim we also provide the classic sequence-pair
representation [Murata et al., ICCAD'95], which reaches general
(non-slicing) packings.

A sequence pair is two permutations ``(gamma_plus, gamma_minus)`` of the
module names plus a per-module rotation flag.  Module ``a`` is left of
``b`` iff ``a`` precedes ``b`` in both sequences; ``a`` is below ``b``
iff ``a`` follows ``b`` in ``gamma_plus`` and precedes it in
``gamma_minus``.  Packing evaluates the induced horizontal and vertical
constraint graphs by longest path (O(m^2), fine at block counts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

from repro.floorplan.floorplan import Floorplan
from repro.geometry import Rect
from repro.netlist import Module

__all__ = ["SequencePair", "pack_sequence_pair"]


@dataclass(frozen=True)
class SequencePair:
    """An immutable sequence pair with rotation flags."""

    gamma_plus: Tuple[str, ...]
    gamma_minus: Tuple[str, ...]
    rotated: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if sorted(self.gamma_plus) != sorted(self.gamma_minus):
            raise ValueError("gamma_plus and gamma_minus permute different sets")
        if len(set(self.gamma_plus)) != len(self.gamma_plus):
            raise ValueError("sequence pair contains duplicate names")
        if not self.gamma_plus:
            raise ValueError("sequence pair cannot be empty")
        unknown = set(self.rotated) - set(self.gamma_plus)
        if unknown:
            raise ValueError(f"rotation flags for unknown modules {unknown}")

    @classmethod
    def initial(
        cls, names: Sequence[str], rng: "random.Random | None" = None
    ) -> "SequencePair":
        plus = list(names)
        minus = list(names)
        if rng is not None:
            rng.shuffle(plus)
            rng.shuffle(minus)
        return cls(tuple(plus), tuple(minus))

    # -- moves -------------------------------------------------------------

    def swap_in_plus(self, rng: random.Random) -> "SequencePair":
        """Swap two random names in ``gamma_plus`` only."""
        if len(self.gamma_plus) < 2:
            return self
        i, j = rng.sample(range(len(self.gamma_plus)), 2)
        plus = list(self.gamma_plus)
        plus[i], plus[j] = plus[j], plus[i]
        return SequencePair(tuple(plus), self.gamma_minus, self.rotated)

    def swap_in_both(self, rng: random.Random) -> "SequencePair":
        """Swap the same two names in both sequences."""
        if len(self.gamma_plus) < 2:
            return self
        a, b = rng.sample(self.gamma_plus, 2)
        return SequencePair(
            _swapped(self.gamma_plus, a, b),
            _swapped(self.gamma_minus, a, b),
            self.rotated,
        )

    def toggle_rotation(self, rng: random.Random) -> "SequencePair":
        """Flip one module's 90-degree rotation."""
        name = self.gamma_plus[rng.randrange(len(self.gamma_plus))]
        rotated = set(self.rotated)
        if name in rotated:
            rotated.remove(name)
        else:
            rotated.add(name)
        return SequencePair(self.gamma_plus, self.gamma_minus, frozenset(rotated))

    def random_neighbor(self, rng: random.Random) -> "SequencePair":
        """One uniformly-chosen perturbation (swap/swap-both/rotate)."""
        choice = rng.randrange(3)
        if choice == 0:
            return self.swap_in_plus(rng)
        if choice == 1:
            return self.swap_in_both(rng)
        return self.toggle_rotation(rng)


def _swapped(seq: Tuple[str, ...], a: str, b: str) -> Tuple[str, ...]:
    out = list(seq)
    ia, ib = out.index(a), out.index(b)
    out[ia], out[ib] = out[ib], out[ia]
    return tuple(out)


def pack_sequence_pair(
    pair: SequencePair, modules: Mapping[str, Module]
) -> Floorplan:
    """Pack a sequence pair into the lower-left-justified floorplan."""
    dims: Dict[str, Tuple[float, float]] = {}
    for name in pair.gamma_plus:
        try:
            m = modules[name]
        except KeyError:
            raise KeyError(f"sequence pair names unknown module {name!r}")
        if name in pair.rotated:
            dims[name] = (m.height, m.width)
        else:
            dims[name] = (m.width, m.height)

    pos_plus = {name: i for i, name in enumerate(pair.gamma_plus)}
    order = pair.gamma_minus  # both relations imply gamma_minus precedence
    x: Dict[str, float] = {}
    y: Dict[str, float] = {}
    for j, b in enumerate(order):
        bx = by = 0.0
        pb = pos_plus[b]
        for a in order[:j]:
            if pos_plus[a] < pb:  # a left of b
                bx = max(bx, x[a] + dims[a][0])
            else:  # a below b
                by = max(by, y[a] + dims[a][1])
        x[b], y[b] = bx, by

    placements = {
        name: Rect.from_origin(x[name], y[name], *dims[name])
        for name in pair.gamma_plus
    }
    return Floorplan(placements)
