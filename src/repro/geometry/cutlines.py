"""Cut-line bookkeeping for the Irregular-Grid.

Every routing range contributes two vertical and two horizontal cutting
lines (Section 4.2).  This module keeps a sorted, deduplicated set of
line coordinates and implements the Algorithm's step 2: *"Remove any two
lines whose interval is smaller than the double of the width/length of a
grid"* -- nearby lines are merged so the Irregular-Grid contains no
sliver cells narrower than the merge threshold.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["CutLines", "merge_close_lines"]

# Coordinates closer than this are considered the same physical line.
_COINCIDENT_EPS = 1e-9


def merge_close_lines(
    lines: Sequence[float],
    min_gap: float,
    keep: Sequence[float] = (),
) -> List[float]:
    """Merge nearby line coordinates (the Algorithm's step 2).

    The paper's rule -- *"remove any two lines whose interval is smaller
    than the double of the width/length of a grid"* -- as a single
    left-to-right pass: a line closer than ``min_gap`` to the *running
    representative* (the merged line produced so far) joins its
    cluster, moving the representative to the cluster mean; otherwise
    it starts a new cluster.  Because a new cluster only starts at
    least ``min_gap`` right of the previous representative, and means
    never move left of their first member, the output's pairwise gaps
    are all >= ``min_gap`` after the single pass.

    Coordinates listed in ``keep`` (chip boundaries) are pinned: a merge
    involving a kept line lands on that line instead of the mean, so
    the merged grid still spans exactly the chip.

    ``lines`` may be unsorted and contain duplicates; the result is
    sorted and duplicate-free.
    """
    if min_gap < 0:
        raise ValueError(f"min_gap must be non-negative, got {min_gap}")
    # ``np.unique`` sorts and collapses *exact* duplicates in C; the
    # eps-dedup would drop those duplicates anyway (their gap is 0), so
    # the surviving sequence is identical to ``_dedup(sorted(lines))``
    # and the Python pass only walks the distinct coordinates.
    uniq = _dedup(np.unique(np.asarray(lines, dtype=float)).tolist())
    if not uniq:
        return []
    keep_sorted = _dedup(sorted(keep))
    merged: List[float] = []
    # Running cluster accumulators: ``csum`` adds members in join order,
    # so ``csum / n`` reproduces ``sum(cluster) / len(cluster)`` bit for
    # bit without re-summing the cluster at every join.
    first = last = csum = uniq[0]
    n = 1
    rep = uniq[0]
    for x in uniq[1:]:
        if x - rep < min_gap:
            last = x
            csum += x
            n += 1
            rep = _collapse_running(first, last, csum, n, keep_sorted)
        else:
            merged.append(rep)
            first = last = csum = x
            n = 1
            rep = x
    merged.append(rep)
    return _dedup(merged)


def _dedup(sorted_lines: Sequence[float]) -> List[float]:
    out: List[float] = []
    for x in sorted_lines:
        if not out or x - out[-1] > _COINCIDENT_EPS:
            out.append(x)
    return out


def _collapse_running(
    first: float,
    last: float,
    csum: float,
    n: int,
    keep_sorted: Sequence[float],
) -> float:
    for pinned in keep_sorted:
        if first - _COINCIDENT_EPS <= pinned <= last + _COINCIDENT_EPS:
            return pinned
    return csum / n


class CutLines:
    """A sorted set of cut coordinates along one axis.

    Provides the two queries the IR-grid needs: *which cell index does a
    coordinate fall in* and *which line index is nearest to a
    coordinate* (for snapping routing-range boundaries onto the merged
    lines).
    """

    def __init__(self, lines: Iterable[float]):
        self._lines: List[float] = _dedup(sorted(lines))
        if len(self._lines) < 2:
            raise ValueError(
                "CutLines needs at least two distinct coordinates, got "
                f"{self._lines}"
            )

    @property
    def lines(self) -> Tuple[float, ...]:
        return tuple(self._lines)

    @property
    def n_cells(self) -> int:
        """Number of intervals between consecutive lines."""
        return len(self._lines) - 1

    @property
    def span(self) -> Tuple[float, float]:
        return self._lines[0], self._lines[-1]

    def cell_bounds(self, index: int) -> Tuple[float, float]:
        """``(lo, hi)`` of cell ``index``."""
        if not 0 <= index < self.n_cells:
            raise IndexError(f"cell index {index} out of range 0..{self.n_cells - 1}")
        return self._lines[index], self._lines[index + 1]

    def cell_of(self, x: float) -> int:
        """Index of the cell containing ``x``.

        Coordinates exactly on an interior line belong to the cell to
        their right (half-open convention), except the top line which
        belongs to the last cell, so every in-span coordinate maps to
        exactly one cell.
        """
        lo, hi = self.span
        if not lo <= x <= hi:
            raise ValueError(f"coordinate {x} outside cut-line span [{lo}, {hi}]")
        i = bisect.bisect_right(self._lines, x) - 1
        return min(i, self.n_cells - 1)

    def nearest_line_index(self, x: float) -> int:
        """Index of the cut line closest to ``x`` (ties go left)."""
        i = bisect.bisect_left(self._lines, x)
        if i == 0:
            return 0
        if i == len(self._lines):
            return len(self._lines) - 1
        before, after = self._lines[i - 1], self._lines[i]
        return i - 1 if x - before <= after - x else i

    def snap(self, x: float) -> float:
        """The cut-line coordinate closest to ``x``."""
        return self._lines[self.nearest_line_index(x)]

    def __len__(self) -> int:
        return len(self._lines)

    def __iter__(self):
        return iter(self._lines)

    def __repr__(self) -> str:
        lo, hi = self.span
        return f"CutLines({len(self._lines)} lines over [{lo}, {hi}])"
