"""Immutable 2-D point."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Point"]


@dataclass(frozen=True, order=True)
class Point:
    """A point in the chip plane (micrometres).

    Ordering is lexicographic ``(x, y)``, which gives pin pairs a
    deterministic "left pin" -- the paper's ``p1`` (Section 2, Figure 1).
    """

    x: float
    y: float

    def manhattan_distance(self, other: "Point") -> float:
        """L1 distance; the wirelength of a shortest Manhattan route."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __iter__(self):
        yield self.x
        yield self.y
