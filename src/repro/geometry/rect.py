"""Axis-aligned rectangles.

Modules, routing ranges, grid cells and IR-grids are all ``Rect``
instances; the congestion models only ever need containment, overlap and
area from them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.interval import Interval
from repro.geometry.point import Point

__all__ = ["Rect"]


@dataclass(frozen=True, order=True)
class Rect:
    """Closed axis-aligned rectangle ``[x_lo, x_hi] x [y_lo, y_hi]``.

    Degenerate rectangles (zero width and/or height) are legal: the
    routing range of a net with horizontally or vertically aligned pins
    is a segment, and two coincident pins give a single point
    (Section 2 of the paper).
    """

    x_lo: float
    y_lo: float
    x_hi: float
    y_hi: float

    def __post_init__(self) -> None:
        if self.x_lo > self.x_hi:
            raise ValueError(f"x_lo {self.x_lo} exceeds x_hi {self.x_hi}")
        if self.y_lo > self.y_hi:
            raise ValueError(f"y_lo {self.y_lo} exceeds y_hi {self.y_hi}")

    # -- constructors -------------------------------------------------

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Bounding box of two points -- a net's routing range."""
        return cls(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )

    @classmethod
    def from_origin(cls, x: float, y: float, width: float, height: float) -> "Rect":
        """Rectangle from lower-left corner plus size (module outlines)."""
        if width < 0 or height < 0:
            raise ValueError(
                f"width/height must be non-negative, got {width} x {height}"
            )
        return cls(x, y, x + width, y + height)

    @classmethod
    def from_intervals(cls, x: Interval, y: Interval) -> "Rect":
        return cls(x.lo, y.lo, x.hi, y.hi)

    # -- measures ------------------------------------------------------

    @property
    def width(self) -> float:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> float:
        return self.y_hi - self.y_lo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def half_perimeter(self) -> float:
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point(0.5 * (self.x_lo + self.x_hi), 0.5 * (self.y_lo + self.y_hi))

    @property
    def x_interval(self) -> Interval:
        return Interval(self.x_lo, self.x_hi)

    @property
    def y_interval(self) -> Interval:
        return Interval(self.y_lo, self.y_hi)

    @property
    def corners(self):
        """The four corners, counter-clockwise from the lower-left."""
        return (
            Point(self.x_lo, self.y_lo),
            Point(self.x_hi, self.y_lo),
            Point(self.x_hi, self.y_hi),
            Point(self.x_lo, self.y_hi),
        )

    @property
    def is_degenerate(self) -> bool:
        """Zero width or height (segment/point routing range)."""
        return self.width == 0.0 or self.height == 0.0

    # -- predicates ----------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Whether ``p`` lies in the closed rectangle."""
        return (
            self.x_lo <= p.x <= self.x_hi and self.y_lo <= p.y <= self.y_hi
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.x_lo <= other.x_lo
            and other.x_hi <= self.x_hi
            and self.y_lo <= other.y_lo
            and other.y_hi <= self.y_hi
        )

    def overlaps(self, other: "Rect") -> bool:
        """Closed overlap: touching edges count."""
        return self.x_interval.overlaps(other.x_interval) and self.y_interval.overlaps(
            other.y_interval
        )

    def overlaps_open(self, other: "Rect") -> bool:
        """Interior overlap: touching edges do *not* count.  This is the
        non-overlap criterion for packed modules and for grid tilings."""
        return self.x_interval.overlaps_open(
            other.x_interval
        ) and self.y_interval.overlaps_open(other.y_interval)

    # -- operations ----------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping sub-rectangle, or ``None`` if disjoint."""
        xi = self.x_interval.intersection(other.x_interval)
        yi = self.y_interval.intersection(other.y_interval)
        if xi is None or yi is None:
            return None
        return Rect.from_intervals(xi, yi)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of the union."""
        return Rect(
            min(self.x_lo, other.x_lo),
            min(self.y_lo, other.y_lo),
            max(self.x_hi, other.x_hi),
            max(self.y_hi, other.y_hi),
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy shifted by ``(dx, dy)``."""
        return Rect(self.x_lo + dx, self.y_lo + dy, self.x_hi + dx, self.y_hi + dy)
