"""Closed 1-D intervals.

Routing ranges and IR-grids are products of two intervals; keeping the
1-D arithmetic in one place keeps the 2-D code free of off-by-one and
empty-overlap bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Interval"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval lo {self.lo} exceeds hi {self.hi}")

    @property
    def length(self) -> float:
        return self.hi - self.lo

    @property
    def mid(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def contains(self, x: float) -> bool:
        """Whether ``x`` lies in the closed interval."""
        return self.lo <= x <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` lies entirely inside this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Whether the closed intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def overlaps_open(self, other: "Interval") -> bool:
        """Whether the *open* interiors intersect (shared endpoints do
        not count).  Grid cells that merely abut must not be reported as
        overlapping, so tiling checks use this variant."""
        return self.lo < other.hi and other.lo < self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping sub-interval, or ``None`` if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def clamped(self, x: float) -> float:
        """``x`` clamped into the interval."""
        return min(max(x, self.lo), self.hi)

    def expanded(self, amount: float) -> "Interval":
        """The interval grown by ``amount`` on each side."""
        return Interval(self.lo - amount, self.hi + amount)
