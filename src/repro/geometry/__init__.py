"""Planar geometry substrate: points, intervals, rectangles, cut lines.

Everything in the congestion pipeline is axis-aligned: module outlines,
routing ranges (net bounding boxes), fixed grids and IR-grids.  This
package provides the small set of exact primitives those layers share.

Coordinates are floats in chip micrometres unless a layer says otherwise
(the route-counting layer works in integer unit-grid indices).
"""

from repro.geometry.point import Point
from repro.geometry.interval import Interval
from repro.geometry.rect import Rect
from repro.geometry.cutlines import CutLines, merge_close_lines

__all__ = ["Point", "Interval", "Rect", "CutLines", "merge_close_lines"]
