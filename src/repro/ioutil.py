"""Atomic file output.

Benchmark results, run reports and annealing checkpoints are written by
long-running processes that may die (crash, OOM-kill, SIGKILL, a CI
timeout) at any instant.  A plain ``open(path, "w").write(...)``
truncates the destination *before* the new bytes land, so an
interrupted run can destroy the previous good file and leave a
half-written one behind.

Every writer here follows write-temp-then-rename: the payload goes to
a temporary file in the *same directory* (same filesystem, so the
rename cannot degrade to a copy), is flushed and fsynced, and only
then atomically renamed over the destination with :func:`os.replace`.
Readers therefore observe either the complete old file or the complete
new one -- never a truncation.  On any failure the temporary file is
removed and the destination is untouched.

Streaming logs (the JSONL run traces of :mod:`repro.obs`) cannot use
replace-the-whole-file semantics; :func:`atomic_append_text` covers
them: the payload is appended through one ``O_APPEND`` ``os.write``
and fsynced, so concurrent appenders never interleave within a payload
and a crash loses at most the final unflushed batch -- the file always
holds a readable prefix of complete lines.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_append_text",
]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: Union[str, Path], payload: Any, indent: int = 2
) -> Path:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    Serialization happens *before* any file is touched, so an
    unserializable payload leaves both the destination and the
    directory exactly as they were.
    """
    text = json.dumps(payload, indent=indent) + "\n"
    return atomic_write_text(path, text)


def atomic_append_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Append ``text`` to ``path`` in one ``O_APPEND`` write; returns
    the path.

    The file is created when missing.  The whole payload goes through
    a single ``os.write`` on an ``O_APPEND`` descriptor and is fsynced
    before the descriptor closes, so appends from concurrent processes
    never interleave *within* one payload and a crash can only lose
    payloads that were never written -- existing bytes are untouched
    (POSIX appends at end-of-file atomically for writes of this size).
    """
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    data = text.encode(encoding)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    return path
