"""Atomic file output.

Benchmark results, run reports and annealing checkpoints are written by
long-running processes that may die (crash, OOM-kill, SIGKILL, a CI
timeout) at any instant.  A plain ``open(path, "w").write(...)``
truncates the destination *before* the new bytes land, so an
interrupted run can destroy the previous good file and leave a
half-written one behind.

Every writer here follows write-temp-then-rename: the payload goes to
a temporary file in the *same directory* (same filesystem, so the
rename cannot degrade to a copy), is flushed and fsynced, and only
then atomically renamed over the destination with :func:`os.replace`.
Readers therefore observe either the complete old file or the complete
new one -- never a truncation.  On any failure the temporary file is
removed and the destination is untouched.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: Union[str, Path], payload: Any, indent: int = 2
) -> Path:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    Serialization happens *before* any file is touched, so an
    unserializable payload leaves both the destination and the
    directory exactly as they were.
    """
    text = json.dumps(payload, indent=indent) + "\n"
    return atomic_write_text(path, text)
