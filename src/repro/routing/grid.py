"""Capacitated routing grid.

The chip is tiled into square global-routing cells; horizontal edges
connect laterally adjacent cells and vertical edges connect vertically
adjacent ones.  Each edge has a track capacity; the router accumulates
usage and the overflow report compares usage against capacity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geometry import Rect

__all__ = ["RoutingGrid"]


class RoutingGrid:
    """A uniform routing grid over a chip.

    Parameters
    ----------
    chip:
        The chip outline.
    cell_size:
        Routing cell pitch in micrometres.
    capacity:
        Tracks per edge (same horizontally and vertically; block-level
        global routing rarely needs asymmetric capacities and the
        validation only cares about *relative* utilization).
    """

    def __init__(self, chip: Rect, cell_size: float, capacity: int = 10):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.chip = chip
        self.cell_size = float(cell_size)
        self.capacity = int(capacity)
        self.n_cols = max(1, int(np.ceil(chip.width / cell_size - 1e-9)))
        self.n_rows = max(1, int(np.ceil(chip.height / cell_size - 1e-9)))
        # usage_h[i, j]: edge from cell (i, j) to (i+1, j).
        # usage_v[i, j]: edge from cell (i, j) to (i, j+1).
        self.usage_h = np.zeros((max(self.n_cols - 1, 1), self.n_rows))
        self.usage_v = np.zeros((self.n_cols, max(self.n_rows - 1, 1)))

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        """Cell containing a chip coordinate (clamped to the grid)."""
        i = int((x - self.chip.x_lo) / self.cell_size)
        j = int((y - self.chip.y_lo) / self.cell_size)
        return (
            min(max(i, 0), self.n_cols - 1),
            min(max(j, 0), self.n_rows - 1),
        )

    def h_edge_usage(self, i: int, j: int) -> float:
        """Usage of the horizontal edge from cell ``(i, j)`` to ``(i+1, j)``."""
        return float(self.usage_h[i, j])

    def v_edge_usage(self, i: int, j: int) -> float:
        """Usage of the vertical edge from cell ``(i, j)`` to ``(i, j+1)``."""
        return float(self.usage_v[i, j])

    def add_h_edge(self, i: int, j: int, amount: float = 1.0) -> None:
        """Add ``amount`` of usage to a horizontal edge."""
        self.usage_h[i, j] += amount

    def add_v_edge(self, i: int, j: int, amount: float = 1.0) -> None:
        """Add ``amount`` of usage to a vertical edge."""
        self.usage_v[i, j] += amount

    def reset(self) -> None:
        """Zero all edge usage."""
        self.usage_h[:] = 0.0
        self.usage_v[:] = 0.0

    def cell_utilization(self) -> np.ndarray:
        """Per-cell congestion proxy: mean utilization of the edges
        incident to each cell, shape ``(n_cols, n_rows)``.

        This is the quantity correlated against the probabilistic
        models' per-cell densities.
        """
        util = np.zeros((self.n_cols, self.n_rows))
        count = np.zeros((self.n_cols, self.n_rows))
        if self.n_cols > 1:
            h = self.usage_h / self.capacity
            util[:-1, :] += h
            count[:-1, :] += 1
            util[1:, :] += h
            count[1:, :] += 1
        if self.n_rows > 1:
            v = self.usage_v / self.capacity
            util[:, :-1] += v
            count[:, :-1] += 1
            util[:, 1:] += v
            count[:, 1:] += 1
        count[count == 0] = 1
        return util / count

    def __repr__(self) -> str:
        return (
            f"RoutingGrid({self.n_cols} x {self.n_rows} cells, "
            f"capacity {self.capacity})"
        )
