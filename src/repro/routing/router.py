"""Congestion-aware global routing of 2-pin nets.

Nets route along monotone staircase paths inside their routing range --
the same route model the probabilistic estimators assume -- picking, per
net, the path that minimizes the maximum edge utilization seen along it
(ties broken by total utilization).  Two strategies:

* ``"monotone"`` (default): dynamic programming over the whole routing
  range; optimal among monotone paths for the (max, sum) objective;
* ``"lz"``: cheapest of the two L-shapes and all single-bend Z-shapes,
  the classic fast global-routing pattern set.

Routing order is shortest-net-first (short nets have no flexibility, so
they claim their tracks before long nets plan around them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.netlist import TwoPinNet
from repro.routing.grid import RoutingGrid

__all__ = ["RoutedNet", "GlobalRouter"]

Cell = Tuple[int, int]


@dataclass(frozen=True)
class RoutedNet:
    """One net's chosen path: the cells it visits, in pin order."""

    net: TwoPinNet
    cells: Tuple[Cell, ...]

    @property
    def n_bends(self) -> int:
        bends = 0
        for k in range(1, len(self.cells) - 1):
            dx0 = self.cells[k][0] - self.cells[k - 1][0]
            dx1 = self.cells[k + 1][0] - self.cells[k][0]
            if dx0 != dx1:
                bends += 1
        return bends


class GlobalRouter:
    """Route 2-pin nets on a :class:`RoutingGrid`."""

    def __init__(self, grid: RoutingGrid, strategy: str = "monotone"):
        if strategy not in ("monotone", "lz"):
            raise ValueError(f"unknown routing strategy {strategy!r}")
        self.grid = grid
        self.strategy = strategy

    def route(self, nets: Sequence[TwoPinNet]) -> List[RoutedNet]:
        """Route all nets (shortest first) and accumulate edge usage."""
        ordered = sorted(nets, key=lambda n: n.manhattan_length)
        out = []
        for net in ordered:
            out.append(self.route_net(net))
        return out

    def route_net(self, net: TwoPinNet) -> RoutedNet:
        """Route one net and commit its track usage to the grid."""
        a = self.grid.cell_of(net.p1.x, net.p1.y)
        b = self.grid.cell_of(net.p2.x, net.p2.y)
        if a == b:
            return RoutedNet(net, (a,))
        if self.strategy == "monotone":
            cells = self._route_monotone(a, b)
        else:
            cells = self._route_lz(a, b)
        self._commit(cells, net.weight)
        return RoutedNet(net, tuple(cells))

    # -- strategies -----------------------------------------------------

    def _route_monotone(self, a: Cell, b: Cell) -> List[Cell]:
        """(max, sum)-optimal monotone path by dynamic programming."""
        sx = 1 if b[0] >= a[0] else -1
        sy = 1 if b[1] >= a[1] else -1
        nx = abs(b[0] - a[0]) + 1
        ny = abs(b[1] - a[1]) + 1
        # dp[ix][iy] = (max_util, total_util) best reaching that cell.
        inf = float("inf")
        dp = [[(inf, inf)] * ny for _ in range(nx)]
        parent: List[List[int]] = [[0] * ny for _ in range(nx)]  # 0: from left, 1: from below
        dp[0][0] = (0.0, 0.0)
        for ix in range(nx):
            for iy in range(ny):
                if ix == 0 and iy == 0:
                    continue
                best = (inf, inf)
                best_from = 0
                if ix > 0:
                    u = self._h_util(a, sx, sy, ix - 1, iy)
                    prev = dp[ix - 1][iy]
                    cand = (max(prev[0], u), prev[1] + u)
                    if cand < best:
                        best, best_from = cand, 0
                if iy > 0:
                    u = self._v_util(a, sx, sy, ix, iy - 1)
                    prev = dp[ix][iy - 1]
                    cand = (max(prev[0], u), prev[1] + u)
                    if cand < best:
                        best, best_from = cand, 1
                dp[ix][iy] = best
                parent[ix][iy] = best_from
        # Walk back from the far corner.
        path_rev = []
        ix, iy = nx - 1, ny - 1
        while True:
            path_rev.append((a[0] + sx * ix, a[1] + sy * iy))
            if ix == 0 and iy == 0:
                break
            if parent[ix][iy] == 0 and ix > 0:
                ix -= 1
            else:
                iy -= 1
        return list(reversed(path_rev))

    def _route_lz(self, a: Cell, b: Cell) -> List[Cell]:
        """Best of the L-shapes and single-bend Z-shapes."""
        candidates = []
        sx = 1 if b[0] >= a[0] else -1
        sy = 1 if b[1] >= a[1] else -1
        xs = list(range(a[0], b[0] + sx, sx))
        ys = list(range(a[1], b[1] + sy, sy))
        # HVH Z-shapes (bend column mx); mx == a[0]/b[0] are the Ls.
        for mx in xs:
            candidates.append(_hvh_path(a, b, mx, sx, sy))
        # VHV Z-shapes.
        for my in ys:
            candidates.append(_vhv_path(a, b, my, sx, sy))
        best, best_key = None, (float("inf"), float("inf"))
        for cells in candidates:
            key = self._path_cost(cells)
            if key < best_key:
                best, best_key = cells, key
        return best

    # -- utilities -------------------------------------------------------

    def _h_util(self, a: Cell, sx: int, sy: int, ix: int, iy: int) -> float:
        x = a[0] + sx * ix
        y = a[1] + sy * iy
        edge_x = min(x, x + sx)
        return self.grid.usage_h[edge_x, y] / self.grid.capacity

    def _v_util(self, a: Cell, sx: int, sy: int, ix: int, iy: int) -> float:
        x = a[0] + sx * ix
        y = a[1] + sy * iy
        edge_y = min(y, y + sy)
        return self.grid.usage_v[x, edge_y] / self.grid.capacity

    def _path_cost(self, cells: Sequence[Cell]) -> Tuple[float, float]:
        worst = 0.0
        total = 0.0
        for k in range(len(cells) - 1):
            (x0, y0), (x1, y1) = cells[k], cells[k + 1]
            if y0 == y1:
                u = self.grid.usage_h[min(x0, x1), y0] / self.grid.capacity
            else:
                u = self.grid.usage_v[x0, min(y0, y1)] / self.grid.capacity
            worst = max(worst, u)
            total += u
        return (worst, total)

    def _commit(self, cells: Sequence[Cell], weight: float) -> None:
        for k in range(len(cells) - 1):
            (x0, y0), (x1, y1) = cells[k], cells[k + 1]
            if y0 == y1:
                self.grid.add_h_edge(min(x0, x1), y0, weight)
            else:
                self.grid.add_v_edge(x0, min(y0, y1), weight)


def _hvh_path(a: Cell, b: Cell, mx: int, sx: int, sy: int) -> List[Cell]:
    """Horizontal to column ``mx``, vertical to ``b``'s row, horizontal
    to ``b``."""
    cells = [a]
    x, y = a
    while x != mx:
        x += sx
        cells.append((x, y))
    while y != b[1]:
        y += sy
        cells.append((x, y))
    while x != b[0]:
        x += sx
        cells.append((x, y))
    return cells


def _vhv_path(a: Cell, b: Cell, my: int, sx: int, sy: int) -> List[Cell]:
    """Vertical to row ``my``, horizontal to ``b``'s column, vertical
    to ``b``."""
    cells = [a]
    x, y = a
    while y != my:
        y += sy
        cells.append((x, y))
    while x != b[0]:
        x += sx
        cells.append((x, y))
    while y != b[1]:
        y += sy
        cells.append((x, y))
    return cells
