"""Validation global router (extension; see DESIGN.md S16).

The paper judges congestion estimates with a very fine fixed grid.  We
additionally route the nets for real on a capacitated routing grid and
measure *actual* track overflow, giving an independent ground truth to
correlate the probabilistic estimates against
(``benchmarks/bench_router_validation.py``).
"""

from repro.routing.grid import RoutingGrid
from repro.routing.router import GlobalRouter, RoutedNet
from repro.routing.negotiated import NegotiatedRouter, NegotiationResult
from repro.routing.overflow import OverflowReport, overflow_report

__all__ = [
    "RoutingGrid",
    "GlobalRouter",
    "RoutedNet",
    "NegotiatedRouter",
    "NegotiationResult",
    "OverflowReport",
    "overflow_report",
]
