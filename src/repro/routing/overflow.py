"""Overflow metrics and estimate-vs-reality correlation.

After routing, track usage against capacity yields the *actual*
congestion picture.  :func:`overflow_report` condenses it, and
:func:`rank_correlation` (Spearman) quantifies how well a probabilistic
congestion map predicted it -- the validation the paper approximates
with its fine-grid judging model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.routing.grid import RoutingGrid

__all__ = ["OverflowReport", "overflow_report", "rank_correlation"]


@dataclass(frozen=True)
class OverflowReport:
    """Summary of routed congestion on a grid."""

    total_overflow: float
    n_overflowed_edges: int
    n_edges: int
    max_utilization: float
    mean_utilization: float
    top10_cell_utilization: float

    @property
    def overflow_fraction(self) -> float:
        return self.n_overflowed_edges / self.n_edges if self.n_edges else 0.0


def overflow_report(grid: RoutingGrid) -> OverflowReport:
    """Condense a routed grid's usage into the standard metrics."""
    usages = []
    if grid.n_cols > 1:
        usages.append(grid.usage_h.ravel())
    if grid.n_rows > 1:
        usages.append(grid.usage_v.ravel())
    if not usages:
        return OverflowReport(0.0, 0, 0, 0.0, 0.0, 0.0)
    usage = np.concatenate(usages)
    overflow = np.maximum(usage - grid.capacity, 0.0)
    util = usage / grid.capacity
    cell_util = np.sort(grid.cell_utilization().ravel())[::-1]
    k = max(1, int(round(0.1 * len(cell_util))))
    return OverflowReport(
        total_overflow=float(overflow.sum()),
        n_overflowed_edges=int((overflow > 0).sum()),
        n_edges=int(len(usage)),
        max_utilization=float(util.max()),
        mean_utilization=float(util.mean()),
        top10_cell_utilization=float(cell_util[:k].mean()),
    )


def rank_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation of two equal-length sequences.

    Average ranks for ties; returns 0 when either sequence is constant
    (no ordering information).  Used to compare estimated congestion
    maps/scores against routed utilization.
    """
    xa = np.asarray(a, dtype=float)
    xb = np.asarray(b, dtype=float)
    if xa.shape != xb.shape:
        raise ValueError(f"length mismatch: {xa.shape} vs {xb.shape}")
    if len(xa) < 2:
        raise ValueError("need at least two samples")
    ra = _average_ranks(xa)
    rb = _average_ranks(xb)
    sa = ra.std()
    sb = rb.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(((ra - ra.mean()) * (rb - rb.mean())).mean() / (sa * sb))


def _average_ranks(x: np.ndarray) -> np.ndarray:
    order = np.argsort(x, kind="mergesort")
    ranks = np.empty(len(x))
    sorted_x = x[order]
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks
