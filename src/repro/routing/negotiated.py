"""Negotiated-congestion rip-up-and-reroute (PathFinder-lite).

The one-pass router in :mod:`repro.routing.router` never revisits a
decision; under tight capacity it can leave resolvable overflow behind.
This router iterates the classic negotiation: nets whose paths use
over-capacity edges are ripped up and rerouted with edge costs that
combine *present* congestion (sharing now) and accumulated *history*
(chronic contention), until the grid is overflow-free or the iteration
budget runs out.

Paths stay monotone inside each net's bounding box (the same route
model the congestion estimators assume), so the router resolves
overflow by spreading staircases, not by detouring -- which keeps its
utilization picture directly comparable to the probabilistic maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.netlist import TwoPinNet
from repro.routing.grid import RoutingGrid
from repro.routing.router import Cell, RoutedNet

__all__ = ["NegotiationResult", "NegotiatedRouter"]


@dataclass(frozen=True)
class NegotiationResult:
    """Outcome of a negotiated routing run."""

    routed: Tuple[RoutedNet, ...]
    iterations: int
    converged: bool  # True iff no edge is over capacity
    total_overflow: float


class NegotiatedRouter:
    """Iterative congestion-negotiating router on a :class:`RoutingGrid`.

    Parameters
    ----------
    grid:
        The capacitated grid; usage is left reflecting the final paths.
    max_iterations:
        Rip-up rounds after the initial pass.
    present_weight:
        Cost per unit of projected over-capacity on an edge (grows each
        iteration, as in PathFinder, so sharing gets progressively
        expensive).
    history_weight:
        Cost per unit of accumulated historical overflow on an edge.
    """

    def __init__(
        self,
        grid: RoutingGrid,
        max_iterations: int = 8,
        present_weight: float = 2.0,
        history_weight: float = 1.0,
    ):
        if max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")
        if present_weight < 0 or history_weight < 0:
            raise ValueError("cost weights must be non-negative")
        self.grid = grid
        self.max_iterations = int(max_iterations)
        self.present_weight = float(present_weight)
        self.history_weight = float(history_weight)
        self._history_h = np.zeros_like(grid.usage_h)
        self._history_v = np.zeros_like(grid.usage_v)

    # -- public API ---------------------------------------------------

    def route(self, nets: Sequence[TwoPinNet]) -> NegotiationResult:
        """Route all nets with negotiation; shortest nets first."""
        ordered = sorted(nets, key=lambda n: n.manhattan_length)
        paths: Dict[int, List[Cell]] = {}
        endpoints: Dict[int, Tuple[Cell, Cell]] = {}
        for k, net in enumerate(ordered):
            a = self.grid.cell_of(net.p1.x, net.p1.y)
            b = self.grid.cell_of(net.p2.x, net.p2.y)
            endpoints[k] = (a, b)
            path = self._best_path(a, b, 1.0)
            self._commit(path, net.weight, +1)
            paths[k] = path

        # Negotiation can thrash when some overflow is structurally
        # unavoidable (e.g. pin funnels); keep the best configuration
        # seen and restore it at the end.
        best_paths = {k: list(p) for k, p in paths.items()}
        best_overflow = self._total_overflow()

        iterations = 0
        for iteration in range(self.max_iterations):
            offenders = [
                k
                for k, path in paths.items()
                if self._path_overflows(path)
            ]
            if not offenders:
                break
            iterations = iteration + 1
            pressure = 1.0 + iteration  # escalating present-cost factor
            self._accumulate_history()
            for k in offenders:
                net = ordered[k]
                self._commit(paths[k], net.weight, -1)
                a, b = endpoints[k]
                path = self._best_path(a, b, pressure)
                self._commit(path, net.weight, +1)
                paths[k] = path
            overflow = self._total_overflow()
            if overflow < best_overflow:
                best_overflow = overflow
                best_paths = {k: list(p) for k, p in paths.items()}
                if overflow == 0.0:
                    break

        if self._total_overflow() > best_overflow:
            # Restore the best configuration's usage.
            for k, path in paths.items():
                self._commit(path, ordered[k].weight, -1)
            for k, path in best_paths.items():
                self._commit(path, ordered[k].weight, +1)
            paths = best_paths

        overflow = self._total_overflow()
        routed = tuple(
            RoutedNet(ordered[k], tuple(paths[k])) for k in sorted(paths)
        )
        return NegotiationResult(
            routed=routed,
            iterations=iterations,
            converged=overflow == 0.0,
            total_overflow=overflow,
        )

    def _total_overflow(self) -> float:
        return float(
            np.maximum(self.grid.usage_h - self.grid.capacity, 0).sum()
            + np.maximum(self.grid.usage_v - self.grid.capacity, 0).sum()
        )

    # -- internals -----------------------------------------------------

    # Sub-capacity sharing cost: every monotone path between two cells
    # has the same length, so without a below-capacity term all paths
    # tie and nets pile onto one staircase; charging proportional
    # utilization spreads them preemptively (PathFinder's present-
    # sharing cost).
    _SPREAD_WEIGHT = 0.25

    def _edge_cost_h(self, i: int, j: int, pressure: float) -> float:
        usage = self.grid.usage_h[i, j]
        over = max(0.0, usage + 1.0 - self.grid.capacity)
        return (
            1.0
            + self._SPREAD_WEIGHT * usage / self.grid.capacity
            + pressure * self.present_weight * over
            + self.history_weight * self._history_h[i, j]
        )

    def _edge_cost_v(self, i: int, j: int, pressure: float) -> float:
        usage = self.grid.usage_v[i, j]
        over = max(0.0, usage + 1.0 - self.grid.capacity)
        return (
            1.0
            + self._SPREAD_WEIGHT * usage / self.grid.capacity
            + pressure * self.present_weight * over
            + self.history_weight * self._history_v[i, j]
        )

    def _best_path(self, a: Cell, b: Cell, pressure: float) -> List[Cell]:
        """Min-total-cost monotone path from ``a`` to ``b``."""
        if a == b:
            return [a]
        sx = 1 if b[0] >= a[0] else -1
        sy = 1 if b[1] >= a[1] else -1
        nx = abs(b[0] - a[0]) + 1
        ny = abs(b[1] - a[1]) + 1
        inf = float("inf")
        dp = [[inf] * ny for _ in range(nx)]
        parent = [[0] * ny for _ in range(nx)]
        dp[0][0] = 0.0
        for ix in range(nx):
            for iy in range(ny):
                if ix == 0 and iy == 0:
                    continue
                best = inf
                best_from = 0
                if ix > 0:
                    x = a[0] + sx * (ix - 1)
                    y = a[1] + sy * iy
                    cost = dp[ix - 1][iy] + self._edge_cost_h(
                        min(x, x + sx), y, pressure
                    )
                    if cost < best:
                        best, best_from = cost, 0
                if iy > 0:
                    x = a[0] + sx * ix
                    y = a[1] + sy * (iy - 1)
                    cost = dp[ix][iy - 1] + self._edge_cost_v(
                        x, min(y, y + sy), pressure
                    )
                    if cost < best:
                        best, best_from = cost, 1
                dp[ix][iy] = best
                parent[ix][iy] = best_from
        path_rev = []
        ix, iy = nx - 1, ny - 1
        while True:
            path_rev.append((a[0] + sx * ix, a[1] + sy * iy))
            if ix == 0 and iy == 0:
                break
            if parent[ix][iy] == 0 and ix > 0:
                ix -= 1
            else:
                iy -= 1
        return list(reversed(path_rev))

    def _commit(self, cells: Sequence[Cell], weight: float, sign: int) -> None:
        for k in range(len(cells) - 1):
            (x0, y0), (x1, y1) = cells[k], cells[k + 1]
            if y0 == y1:
                self.grid.add_h_edge(min(x0, x1), y0, sign * weight)
            else:
                self.grid.add_v_edge(x0, min(y0, y1), sign * weight)

    def _path_overflows(self, cells: Sequence[Cell]) -> bool:
        for k in range(len(cells) - 1):
            (x0, y0), (x1, y1) = cells[k], cells[k + 1]
            if y0 == y1:
                if self.grid.usage_h[min(x0, x1), y0] > self.grid.capacity:
                    return True
            else:
                if self.grid.usage_v[x0, min(y0, y1)] > self.grid.capacity:
                    return True
        return False

    def _accumulate_history(self) -> None:
        self._history_h += np.maximum(
            self.grid.usage_h - self.grid.capacity, 0.0
        ) / self.grid.capacity
        self._history_v += np.maximum(
            self.grid.usage_v - self.grid.capacity, 0.0
        ) / self.grid.capacity
