"""Binomial-coefficient primitives for monotone-route counting.

The number of monotone staircase routes between two grid cells is a
binomial coefficient (Formula 1 of the paper).  Routing ranges in real
floorplans can span hundreds of grid cells in each direction, where
``C(n, k)`` overflows ``float`` (``C(1000, 500) ~ 10**299``); every
probability in the congestion models is therefore a *ratio* of binomials,
which we evaluate in log space.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List

__all__ = [
    "binomial",
    "log_binomial",
    "binomial_ratio",
    "pascal_row",
    "hypergeometric_pmf",
]

# Exact integer binomials are cached up to this ``n``; above it callers
# should work in log space.  128 covers every unit-grid routing range the
# experiments produce after cut-line merging.
_EXACT_CACHE_LIMIT = 128


def binomial(n: int, k: int) -> int:
    """Exact integer binomial coefficient ``C(n, k)``.

    Out-of-range arguments (``k < 0`` or ``k > n`` or ``n < 0``) return 0,
    matching the paper's convention that route counts outside a routing
    range are zero (Definition 1).
    """
    if n < 0 or k < 0 or k > n:
        return 0
    return _binomial_cached(n, min(k, n - k))


# Bounded: (n, k) pairs with n <= _EXACT_CACHE_LIMIT number a few
# thousand, so 65536 entries never evict in practice while still
# capping worst-case memory for long-lived processes.
@lru_cache(maxsize=65536)
def _binomial_cached(n: int, k: int) -> int:
    return math.comb(n, k)


def log_binomial(n: int, k: int) -> float:
    """Natural log of ``C(n, k)``; ``-inf`` when the coefficient is 0."""
    if n < 0 or k < 0 or k > n:
        return float("-inf")
    if k == 0 or k == n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def binomial_ratio(numerators, denominators) -> float:
    """Evaluate ``prod(C(n,k) for numerators) / prod(C(n,k) for denominators)``.

    Both arguments are iterables of ``(n, k)`` pairs.  The computation is
    done in log space so that ratios of astronomically large route counts
    (the crossing probabilities of Formulas 2-3) come out as ordinary
    floats in ``[0, inf)``.

    A zero numerator short-circuits to 0.0.  A zero denominator raises
    :class:`ZeroDivisionError` because it indicates the caller asked for a
    probability over an empty route set.
    """
    log_num = 0.0
    for n, k in numerators:
        term = log_binomial(n, k)
        if term == float("-inf"):
            return 0.0
        log_num += term
    log_den = 0.0
    for n, k in denominators:
        term = log_binomial(n, k)
        if term == float("-inf"):
            raise ZeroDivisionError(
                f"binomial denominator C({n}, {k}) is zero"
            )
        log_den += term
    return math.exp(log_num - log_den)


def pascal_row(n: int) -> List[int]:
    """Row ``n`` of Pascal's triangle: ``[C(n,0), ..., C(n,n)]``.

    Used by the exact fixed-grid model to fill route-count tables (the
    ``Ta``/``Tb`` arrays of Figure 2) one anti-diagonal at a time.
    """
    if n < 0:
        raise ValueError(f"row index must be non-negative, got {n}")
    row = [1] * (n + 1)
    for k in range(1, n):
        row[k] = binomial(n, k) if n <= _EXACT_CACHE_LIMIT else math.comb(n, k)
    return row


def hypergeometric_pmf(x: int, r: int, big_r: int, q: int) -> float:
    """Hypergeometric probability ``C(Q,x) * C(R-Q, r-x) / C(R, r)``.

    This is the paper's ``h(x, r, R, Q)`` (Section 4.4) *when Q is held
    fixed*; the congestion approximation perturbs Q with x, making it only
    "hypergeometry-like", but the fixed-Q version is the reference the
    normal approximation is tested against.
    """
    return binomial_ratio(
        [(q, x), (big_r - q, r - x)],
        [(big_r, r)],
    )
