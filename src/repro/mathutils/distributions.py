"""Normal-distribution helpers for the hypergeometric approximation.

Section 4.4 approximates the hypergeometry-like route-count ratio with a
normal density whose mean/variance follow the classic
hypergeometric-to-normal moment matching.  These are the density and CDF
primitives that approximation is assembled from.
"""

from __future__ import annotations

import math

__all__ = ["normal_pdf", "normal_cdf", "normal_interval_mass"]

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def normal_pdf(x: float, mu: float = 0.0, sigma: float = 1.0) -> float:
    """Gaussian density ``N(x; mu, sigma)``.

    ``sigma`` must be positive; the congestion approximation guards its
    variance expressions before calling in here.
    """
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    z = (x - mu) / sigma
    # Exponent underflow far in the tails is fine -- it rounds to 0.0,
    # which is exactly the route-count ratio there.
    if abs(z) > 40.0:
        return 0.0
    return math.exp(-0.5 * z * z) / (sigma * _SQRT_2PI)


def normal_cdf(x: float, mu: float = 0.0, sigma: float = 1.0) -> float:
    """Gaussian CDF via the error function."""
    if sigma <= 0.0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return 0.5 * (1.0 + math.erf((x - mu) / (sigma * _SQRT2)))


def normal_interval_mass(
    a: float, b: float, mu: float = 0.0, sigma: float = 1.0
) -> float:
    """Probability mass of ``N(mu, sigma)`` on ``[a, b]``.

    Convenience used when a Theorem-1 integrand has *constant* mean and
    variance over the integration interval (the degenerate 1-cell-wide
    IR-grids), where the integral has this closed form and Simpson's rule
    is unnecessary.
    """
    if b < a:
        a, b = b, a
    return normal_cdf(b, mu, sigma) - normal_cdf(a, mu, sigma)
