"""Numeric substrates shared by the congestion models.

The probability formulas in the paper (Formulas 1-3, Theorem 1) are built
from three primitives, all provided here:

* binomial coefficients, including a log-space variant that stays finite
  for routing ranges spanning hundreds of grid cells
  (:mod:`repro.mathutils.combinatorics`);
* Simpson's rule for the definite integrals of Theorem 1
  (:mod:`repro.mathutils.integrate`);
* the normal density/CDF used by the hypergeometric-to-normal
  approximation (:mod:`repro.mathutils.distributions`).
"""

from repro.mathutils.combinatorics import (
    binomial,
    log_binomial,
    binomial_ratio,
    pascal_row,
    hypergeometric_pmf,
)
from repro.mathutils.integrate import simpson, adaptive_simpson
from repro.mathutils.distributions import (
    normal_pdf,
    normal_cdf,
    normal_interval_mass,
)

__all__ = [
    "binomial",
    "log_binomial",
    "binomial_ratio",
    "pascal_row",
    "hypergeometric_pmf",
    "simpson",
    "adaptive_simpson",
    "normal_pdf",
    "normal_cdf",
    "normal_interval_mass",
]
