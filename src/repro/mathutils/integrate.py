"""Numerical integration for the Theorem-1 approximating formulas.

The paper evaluates the definite integrals of Theorem 1 with "Simpson's
rule of integration in constant time".  We provide a fixed-panel
composite Simpson (the constant-time evaluator the model uses) and an
adaptive variant used by tests to establish ground truth.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["simpson", "adaptive_simpson"]


def simpson(
    f: Callable[[float], float],
    a: float,
    b: float,
    panels: int = 8,
) -> float:
    """Composite Simpson's rule with a fixed, even number of panels.

    ``panels`` is the number of sub-intervals; it must be a positive even
    integer.  With the default of 8 the evaluation cost is 9 integrand
    calls regardless of the integration range, which is what gives the
    approximate IR-grid probability its constant-time guarantee
    (Section 4.4).
    """
    if panels <= 0 or panels % 2:
        raise ValueError(f"panels must be a positive even integer, got {panels}")
    if a == b:
        return 0.0
    sign = 1.0
    if b < a:
        a, b = b, a
        sign = -1.0
    h = (b - a) / panels
    total = f(a) + f(b)
    for i in range(1, panels):
        weight = 4.0 if i % 2 else 2.0
        total += weight * f(a + i * h)
    return sign * total * h / 3.0


def adaptive_simpson(
    f: Callable[[float], float],
    a: float,
    b: float,
    tol: float = 1e-9,
    max_depth: int = 30,
) -> float:
    """Adaptive Simpson quadrature (Lyness criterion).

    Used by the test suite as an oracle for :func:`simpson`; not on the
    congestion model's hot path.
    """
    if a == b:
        return 0.0
    sign = 1.0
    if b < a:
        a, b = b, a
        sign = -1.0
    fa, fb = f(a), f(b)
    m = 0.5 * (a + b)
    fm = f(m)
    whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb)
    return sign * _adaptive(f, a, b, fa, fb, fm, whole, tol, max_depth)


def _adaptive(f, a, b, fa, fb, fm, whole, tol, depth):
    m = 0.5 * (a + b)
    lm = 0.5 * (a + m)
    rm = 0.5 * (m + b)
    flm, frm = f(lm), f(rm)
    left = (m - a) / 6.0 * (fa + 4.0 * flm + fm)
    right = (b - m) / 6.0 * (fm + 4.0 * frm + fb)
    if depth <= 0 or abs(left + right - whole) <= 15.0 * tol:
        return left + right + (left + right - whole) / 15.0
    half_tol = tol / 2.0
    return _adaptive(
        f, a, m, fa, fm, flm, left, half_tol, depth - 1
    ) + _adaptive(f, m, b, fm, fb, frm, right, half_tol, depth - 1)
