"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness behind ``tests/robustness/`` and the CI robustness smoke job.
It lives in the package (not under ``tests/``) so the multistart
supervisor can ship fault specs into pool workers and the smoke
scripts can inject crashes from the command line.
"""

from repro.testing.faults import (
    FaultSpec,
    FaultyObjective,
    InjectedFault,
    poison_approx_mass,
)

__all__ = [
    "FaultSpec",
    "FaultyObjective",
    "InjectedFault",
    "poison_approx_mass",
]
