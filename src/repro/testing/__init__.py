"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness behind ``tests/robustness/`` and the CI robustness smoke job.
It lives in the package (not under ``tests/``) so the multistart
supervisor can ship fault specs into pool workers and the smoke
scripts can inject crashes from the command line.  PR 10 adds the
service-level injectors (:class:`JobFault`, :func:`journal_write_crash`,
:func:`slow_client_request`) used by ``tests/service/`` and the
service smoke job.
"""

from repro.testing.faults import (
    FaultSpec,
    FaultyObjective,
    InjectedFault,
    JobFault,
    journal_write_crash,
    poison_approx_mass,
    slow_client_request,
)

__all__ = [
    "FaultSpec",
    "FaultyObjective",
    "InjectedFault",
    "JobFault",
    "journal_write_crash",
    "poison_approx_mass",
    "slow_client_request",
]
