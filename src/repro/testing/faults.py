"""Deterministic fault injection for the robustness test suite.

Faults that only fire "sometimes" make for unreproducible tests, so
every injector here is *targeted*: it names the exact (seed, attempt,
execution mode) -- or the exact evaluation ordinal, or the exact kernel
call -- at which it fires, and is inert everywhere else.  An injected
worker crash on attempt 0 therefore deterministically succeeds on the
supervised retry, and a poisoned congestion kernel poisons exactly one
evaluation.

Three injection points cover the failure classes the engine defends
against:

* :class:`FaultSpec` -- process-level faults inside a multistart
  restart (``os._exit`` crash, hang, raised exception), shipped
  picklable into pool workers via
  :class:`~repro.engine.multistart.MultiStartEngine`'s
  ``inject_fault`` hook;
* :class:`FaultyObjective` -- an objective wrapper that raises
  :class:`InjectedFault` at evaluation N, simulating a mid-anneal
  crash between two checkpoints;
* :func:`poison_approx_mass` -- patches the congestion model's batched
  kernel reference to emit one NaN/inf cell at call N, proving the
  NaN guards detect it and fall back to the exact Formula 3 path.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultyObjective",
    "poison_approx_mass",
    "JobFault",
    "journal_write_crash",
    "slow_client_request",
]


class InjectedFault(RuntimeError):
    """Raised (or simulated) by an injector that was asked to fire."""


_KINDS = ("crash", "hang", "raise")


@dataclass(frozen=True)
class FaultSpec:
    """A picklable, targeted process-level fault.

    Fires inside :func:`~repro.engine.multistart._run_restart` only
    when the restart's ``(seed, attempt, mode)`` matches; ``mode`` of
    ``None`` matches both pool and sequential execution.  ``"crash"``
    hard-kills the process with ``os._exit`` (no cleanup, like a
    segfault -- never target it at sequential mode, that is the test
    process); ``"hang"`` sleeps ``hang_seconds`` to trip the
    supervisor's watchdog; ``"raise"`` raises :class:`InjectedFault`.
    """

    kind: str
    seed: int
    attempt: int = 0
    mode: Optional[str] = None
    hang_seconds: float = 3600.0
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")

    def matches(self, seed: int, attempt: int, mode: str) -> bool:
        """Whether this fault targets the given restart attempt."""
        return (
            seed == self.seed
            and attempt == self.attempt
            and (self.mode is None or mode == self.mode)
        )

    def maybe_fire(self, seed: int, attempt: int, mode: str) -> None:
        """Fire if targeted at this restart; otherwise do nothing."""
        if not self.matches(seed, attempt, mode):
            return
        if self.kind == "crash":
            os._exit(self.exit_code)
        if self.kind == "hang":
            time.sleep(self.hang_seconds)
            return
        raise InjectedFault(
            f"injected fault: seed={seed} attempt={attempt} mode={mode}"
        )


class FaultyObjective:
    """An objective that dies at evaluation ``fail_at_evaluation``.

    Wraps a real :class:`~repro.anneal.cost.FloorplanObjective` and
    counts :meth:`evaluate_floorplan` calls; the fatal call raises
    :class:`InjectedFault` *before* touching the inner objective, so
    the wrapped pipeline is left exactly as the last committed state --
    the same situation a process crash leaves a checkpoint file in.
    Everything else (calibration, norms, commit/reject, perf wiring)
    delegates to the inner objective.
    """

    def __init__(self, inner, fail_at_evaluation: int):
        if fail_at_evaluation < 1:
            raise ValueError(
                f"fail_at_evaluation must be >= 1, got {fail_at_evaluation}"
            )
        self.inner = inner
        self.fail_at_evaluation = int(fail_at_evaluation)
        self.evaluations = 0

    def evaluate_floorplan(self, floorplan):
        """Count the call and either inject the fault or delegate."""
        self.evaluations += 1
        if self.evaluations >= self.fail_at_evaluation:
            raise InjectedFault(
                f"injected objective fault at evaluation {self.evaluations}"
            )
        return self.inner.evaluate_floorplan(floorplan)

    def disarm(self) -> None:
        """Stop injecting (lets a resumed run finish with this wrapper)."""
        self.fail_at_evaluation = 2**63

    @property
    def perf(self):
        return self.inner.perf

    @perf.setter
    def perf(self, recorder) -> None:
        self.inner.perf = recorder

    def __getattr__(self, name):
        return getattr(self.inner, name)


@dataclass(frozen=True)
class JobFault:
    """A picklable, targeted fault inside one service worker run.

    The service-level sibling of :class:`FaultSpec`: instead of firing
    at job entry, it fires at a chosen *temperature transition* of the
    annealing walk (``at_step`` counts the per-step snapshots the
    engine emits), which is what lets the fault suite kill a worker
    strictly **after** its first checkpoint landed and then prove the
    supervised retry resumes bit-identically.  Targeting is by
    (attempt, mode) exactly like :class:`FaultSpec`: the retry of an
    injected kill is untargeted and deterministically succeeds.

    ``"crash"`` hard-kills the worker process with ``os._exit`` (never
    target it at sequential mode -- that is the test process);
    ``"hang"`` sleeps past the supervisor's heartbeat window;
    ``"raise"`` raises :class:`InjectedFault` through the engine.
    """

    kind: str
    attempt: int = 0
    mode: Optional[str] = None
    at_step: int = 2
    hang_seconds: float = 3600.0
    exit_code: int = 21

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.at_step < 1:
            raise ValueError(f"at_step must be >= 1, got {self.at_step}")

    def snapshot_hook(self, attempt: int, mode: str):
        """An ``on_snapshot`` callback armed for this attempt/mode, or
        ``None`` when the attempt is not targeted (the common case)."""
        if attempt != self.attempt:
            return None
        if self.mode is not None and mode != self.mode:
            return None
        seen = {"steps": 0}

        def hook(snapshot) -> None:
            seen["steps"] += 1
            if seen["steps"] != self.at_step:
                return
            if self.kind == "crash":
                os._exit(self.exit_code)
            if self.kind == "hang":
                time.sleep(self.hang_seconds)
                return
            raise InjectedFault(
                f"injected job fault at temperature step {self.at_step} "
                f"(attempt={attempt} mode={mode})"
            )

        return hook


@contextmanager
def journal_write_crash(at_append: int = 1, partial_bytes: int = 12):
    """Crash the service journal mid-append, leaving a torn tail.

    Patches ``atomic_append_text`` *inside*
    :mod:`repro.service.journal` so append number ``at_append`` writes
    only the first ``partial_bytes`` bytes of its record (no newline,
    no checksum validity) and then raises :class:`InjectedFault` --
    the on-disk shape a power cut mid-``write(2)`` leaves behind.
    Yields a dict with ``"calls"`` (appends attempted) and ``"fired"``;
    always unpatches on exit.

    The queue under test must (a) leave its in-memory state untouched
    by the failed append and (b) discard the torn line on replay --
    both asserted by the service fault suite.
    """
    import repro.service.journal as journal_mod

    real_append = journal_mod.atomic_append_text
    state = {"calls": 0, "fired": False}

    def crashing_append(path, text):
        state["calls"] += 1
        if state["calls"] == at_append:
            state["fired"] = True
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(text[: max(1, partial_bytes)])
                handle.flush()
                os.fsync(handle.fileno())
            raise InjectedFault(
                f"injected journal crash at append {state['calls']}"
            )
        return real_append(path, text)

    journal_mod.atomic_append_text = crashing_append
    try:
        yield state
    finally:
        journal_mod.atomic_append_text = real_append


def slow_client_request(
    host: str,
    port: int,
    data: bytes = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 1000\r\n\r\n",
    hold_seconds: float = 30.0,
) -> bytes:
    """Open a socket, send an *incomplete* HTTP request, and stall.

    Simulates the classic slowloris-shaped client: headers promise a
    body that never fully arrives.  Returns whatever the server sends
    back (expected: a ``408 Request Timeout`` well before
    ``hold_seconds`` elapses, proving one stalled client cannot pin a
    server task forever).
    """
    import socket

    with socket.create_connection((host, port), timeout=hold_seconds) as sock:
        sock.sendall(data)
        sock.settimeout(hold_seconds)
        chunks = []
        try:
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


@contextmanager
def poison_approx_mass(at_call: int = 1, value: float = float("nan")):
    """Poison one cell of the batched congestion kernel's output.

    Patches the ``batched_approx_mass_arrays`` reference *inside*
    :mod:`repro.congestion.model` (plus the net-object entry point) so
    call number ``at_call`` returns a mass array with one cell set to
    ``value`` -- the shape of damage a broken Theorem-1 approximation
    would do.  Yields a dict whose ``"calls"`` entry counts kernel
    invocations and ``"poisoned"`` whether the poison fired; always
    unpatches on exit.
    """
    import repro.congestion.model as model_mod

    real_arrays = model_mod.batched_approx_mass_arrays
    real_nets = model_mod.batched_approx_mass
    state = {"calls": 0, "poisoned": False}

    def _poison(result):
        state["calls"] += 1
        # ``want_contributions=True`` returns ``(mass, contributions)``.
        mass = result[0] if isinstance(result, tuple) else result
        if state["calls"] == at_call and mass.size:
            mass = mass.copy()
            mass.ravel()[mass.size // 2] = value
            state["poisoned"] = True
        if isinstance(result, tuple):
            return (mass,) + result[1:]
        return mass

    def poisoned_arrays(*args, **kwargs):
        return _poison(real_arrays(*args, **kwargs))

    def poisoned_nets(*args, **kwargs):
        return _poison(real_nets(*args, **kwargs))

    model_mod.batched_approx_mass_arrays = poisoned_arrays
    model_mod.batched_approx_mass = poisoned_nets
    try:
        yield state
    finally:
        model_mod.batched_approx_mass_arrays = real_arrays
        model_mod.batched_approx_mass = real_nets
