"""Benchmark circuits and circuit file I/O.

* :mod:`repro.data.mcnc` -- deterministic synthetic stand-ins for the
  five MCNC building-block benchmarks the paper evaluates on (apte,
  xerox, hp, ami33, ami49).  See DESIGN.md section 3 for the
  substitution rationale.
* :mod:`repro.data.yal` -- a minimal YAL-flavoured text format so
  circuits can be saved, diffed and reloaded;
* :mod:`repro.data.placement` -- a placement text format so annealed
  floorplans can be saved and re-analyzed without re-annealing.
"""

from repro.data.mcnc import MCNC_CIRCUITS, load_mcnc, mcnc_stats
from repro.data.placement import (
    dumps_placement,
    loads_placement,
    read_placement,
    write_placement,
)
from repro.data.yal import dumps_yal, loads_yal, read_yal, write_yal

__all__ = [
    "MCNC_CIRCUITS",
    "load_mcnc",
    "mcnc_stats",
    "dumps_yal",
    "loads_yal",
    "read_yal",
    "write_yal",
    "dumps_placement",
    "loads_placement",
    "read_placement",
    "write_placement",
]
