"""Synthetic stand-ins for the MCNC building-block benchmarks.

The paper evaluates on the five classic MCNC block benchmarks.  The
original YAL files are not redistributable here, so this module
generates *deterministic* synthetic circuits matching the published
aggregate statistics of each benchmark:

=========  ========  ======  ===================
circuit    modules   nets    total module area
=========  ========  ======  ===================
apte       9         97      46.56 mm^2
xerox      10        203     19.35 mm^2
hp         11        83       8.83 mm^2
ami33      33        123      1.16 mm^2
ami49      49        408     35.45 mm^2
=========  ========  ======  ===================

Module areas follow a log-normal-ish spread normalized to the published
total; net connectivity is cluster-biased (real block netlists are
strongly local).  Every circuit is a pure function of its name, so all
experiments are reproducible bit-for-bit.

Why this substitution preserves the paper's comparisons: the congestion
models consume only module rectangles and net terminal sets.  Every
experiment compares two *models* (or two *floorplanner objectives*) on
the *same* circuit, so the who-wins conclusions depend on the workload's
scale and locality statistics -- matched here -- not on the exact MCNC
geometry.  See DESIGN.md section 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netlist import Module, Net, Netlist

__all__ = ["MCNC_CIRCUITS", "BenchmarkSpec", "load_mcnc", "mcnc_stats"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published aggregate statistics of one MCNC benchmark."""

    name: str
    n_modules: int
    n_nets: int
    total_area_um2: float
    # Size heterogeneity: ratio between the largest and smallest module
    # areas.  apte/xerox/hp are few large heterogeneous blocks; ami33/49
    # are many moderate macro cells.
    area_ratio: float
    max_aspect: float
    n_clusters: int
    seed: int


MCNC_CIRCUITS: Dict[str, BenchmarkSpec] = {
    "apte": BenchmarkSpec("apte", 9, 97, 46.5616e6, 8.0, 2.2, 3, 0xA97E),
    "xerox": BenchmarkSpec("xerox", 10, 203, 19.3503e6, 10.0, 2.5, 3, 0x0E0C),
    "hp": BenchmarkSpec("hp", 11, 83, 8.8306e6, 12.0, 2.5, 3, 0x5107),
    "ami33": BenchmarkSpec("ami33", 33, 123, 1.1564e6, 15.0, 2.8, 5, 0x3333),
    "ami49": BenchmarkSpec("ami49", 49, 408, 35.4450e6, 25.0, 2.8, 7, 0x4949),
}


def load_mcnc(name: str) -> Netlist:
    """Build the synthetic MCNC-like circuit ``name``.

    Accepted names: ``apte``, ``xerox``, ``hp``, ``ami33``, ``ami49``
    (case-insensitive).
    """
    try:
        spec = MCNC_CIRCUITS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown MCNC circuit {name!r}; choose from "
            f"{sorted(MCNC_CIRCUITS)}"
        )
    return _build(spec)


def mcnc_stats(name: str) -> BenchmarkSpec:
    """The published statistics the synthetic circuit is matched to."""
    return MCNC_CIRCUITS[name.lower()]


def _build(spec: BenchmarkSpec) -> Netlist:
    rng = random.Random(spec.seed)
    modules = _modules(spec, rng)
    nets = _nets(spec, [m.name for m in modules], rng)
    return Netlist(spec.name, modules, nets)


def _modules(spec: BenchmarkSpec, rng: random.Random) -> List[Module]:
    # Draw raw areas log-uniformly over [1, area_ratio], then scale the
    # batch so the total matches the published figure exactly (up to
    # rounding of individual dimensions).
    raw = [
        spec.area_ratio ** rng.random() for _ in range(spec.n_modules)
    ]
    scale = spec.total_area_um2 / sum(raw)
    modules = []
    for i, r in enumerate(raw):
        area = r * scale
        aspect = rng.uniform(1.0, spec.max_aspect)
        if rng.random() < 0.5:
            aspect = 1.0 / aspect
        width = (area / aspect) ** 0.5
        height = area / width
        modules.append(
            Module(f"{spec.name}_m{i}", round(width, 2), round(height, 2))
        )
    return modules


def _nets(
    spec: BenchmarkSpec, names: List[str], rng: random.Random
) -> List[Net]:
    clusters: List[List[str]] = [[] for _ in range(spec.n_clusters)]
    for i, nm in enumerate(names):
        clusters[i % spec.n_clusters].append(nm)
    nets = []
    for j in range(spec.n_nets):
        u = rng.random()
        if u < 0.62:
            degree = 2
        elif u < 0.87:
            degree = 3
        else:
            degree = rng.randint(4, 6)
        degree = min(degree, len(names))
        cluster = clusters[rng.randrange(spec.n_clusters)]
        if rng.random() < 0.75 and len(cluster) >= degree:
            terminals = rng.sample(cluster, degree)
        else:
            terminals = rng.sample(names, degree)
        nets.append(Net(f"{spec.name}_n{j}", terminals))
    return nets


def chip_scale(name: str) -> Tuple[float, float]:
    """Rough chip edge lengths (um) implied by the circuit's total area.

    Handy for choosing judging-grid pitches: the paper's 10x10 um^2
    judging grid on ami33 (~1 mm^2) means a ~110 x 110 judging lattice.
    """
    spec = mcnc_stats(name)
    edge = spec.total_area_um2 ** 0.5
    return edge, edge
