"""A minimal YAL-flavoured circuit text format.

The MCNC building-block benchmarks shipped in YAL; this module speaks a
small, line-oriented dialect sufficient for hard-block floorplanning:

.. code-block:: text

    CIRCUIT ami33
    MODULE m0 120.5 88.0
    MODULE m1 60.0 60.0
    NET n0 1.0 m0 m1
    NET n1 2.5 m0 m1 ...
    END

* ``MODULE <name> <width> <height>`` -- one hard block;
* ``NET <name> <weight> <terminal>...`` -- a net over module names;
* ``#`` starts a comment; blank lines are ignored; ``END`` is optional.

Parsing is strict: unknown directives, malformed numbers, duplicate
names and dangling terminals raise :class:`YalError` with a line number.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

from repro.netlist import Module, Net, Netlist

__all__ = ["YalError", "dumps_yal", "loads_yal", "read_yal", "write_yal"]


class YalError(ValueError):
    """Raised on malformed circuit files, with the offending line number."""


def dumps_yal(netlist: Netlist) -> str:
    """Serialize a netlist to the YAL-flavoured text format."""
    out = io.StringIO()
    out.write(f"CIRCUIT {netlist.name}\n")
    out.write(f"# {netlist.n_modules} modules, {netlist.n_nets} nets\n")
    for m in netlist.modules:
        out.write(f"MODULE {m.name} {m.width:g} {m.height:g}\n")
    for n in netlist.nets:
        terms = " ".join(n.terminals)
        out.write(f"NET {n.name} {n.weight:g} {terms}\n")
    out.write("END\n")
    return out.getvalue()


def loads_yal(text: str) -> Netlist:
    """Parse the YAL-flavoured text format into a :class:`Netlist`."""
    name = ""
    modules: List[Module] = []
    nets: List[Net] = []
    saw_end = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if saw_end:
            raise YalError(f"line {lineno}: content after END")
        fields = line.split()
        directive = fields[0].upper()
        if directive == "CIRCUIT":
            if name:
                raise YalError(f"line {lineno}: second CIRCUIT directive")
            if len(fields) != 2:
                raise YalError(f"line {lineno}: CIRCUIT takes exactly one name")
            name = fields[1]
        elif directive == "MODULE":
            if len(fields) != 4:
                raise YalError(
                    f"line {lineno}: MODULE takes name width height"
                )
            try:
                modules.append(
                    Module(fields[1], float(fields[2]), float(fields[3]))
                )
            except ValueError as exc:
                raise YalError(f"line {lineno}: {exc}") from exc
        elif directive == "NET":
            if len(fields) < 5:
                raise YalError(
                    f"line {lineno}: NET takes name weight and >= 2 terminals"
                )
            try:
                nets.append(Net(fields[1], fields[3:], float(fields[2])))
            except ValueError as exc:
                raise YalError(f"line {lineno}: {exc}") from exc
        elif directive == "END":
            saw_end = True
        else:
            raise YalError(f"line {lineno}: unknown directive {fields[0]!r}")
    if not name:
        raise YalError("missing CIRCUIT directive")
    try:
        return Netlist(name, modules, nets)
    except ValueError as exc:
        raise YalError(str(exc)) from exc


def write_yal(netlist: Netlist, path: Union[str, Path]) -> None:
    """Write a netlist to ``path``."""
    Path(path).write_text(dumps_yal(netlist))


def read_yal(path: Union[str, Path]) -> Netlist:
    """Read a netlist from ``path``."""
    return loads_yal(Path(path).read_text())
