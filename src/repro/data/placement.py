"""Floorplan (placement) file I/O.

A placement records where a floorplanner put every module -- the
natural exchange artifact between a floorplanning run and later
analysis (congestion estimation, routing validation, rendering).  The
format is line-oriented and diffable, like the circuit format:

.. code-block:: text

    PLACEMENT ami33
    CHIP 0 0 1224.5 968.2
    MODULE m0 0 0 120.5 88.0
    MODULE m1 120.5 0 60.0 60.0
    END

``MODULE name x y width height`` gives the placed lower-left corner and
the *placed* (possibly rotated) dimensions.  Parsing is strict and
reports line numbers, mirroring :mod:`repro.data.yal`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

from repro.floorplan import Floorplan
from repro.geometry import Rect

__all__ = [
    "PlacementError",
    "dumps_placement",
    "loads_placement",
    "read_placement",
    "write_placement",
]


class PlacementError(ValueError):
    """Raised on malformed placement files, with the line number."""


def dumps_placement(floorplan: Floorplan, name: str = "floorplan") -> str:
    """Serialize a floorplan to the placement text format."""
    out = io.StringIO()
    out.write(f"PLACEMENT {name}\n")
    chip = floorplan.chip
    out.write(
        f"CHIP {chip.x_lo!r} {chip.y_lo!r} {chip.x_hi!r} {chip.y_hi!r}\n"
    )
    for module_name, rect in floorplan.placements.items():
        out.write(
            f"MODULE {module_name} {rect.x_lo!r} {rect.y_lo!r} "
            f"{rect.width!r} {rect.height!r}\n"
        )
    out.write("END\n")
    return out.getvalue()


def loads_placement(text: str) -> Floorplan:
    """Parse the placement text format into a validated floorplan."""
    name = ""
    chip = None
    placements = {}
    saw_end = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if saw_end:
            raise PlacementError(f"line {lineno}: content after END")
        fields = line.split()
        directive = fields[0].upper()
        if directive == "PLACEMENT":
            if name:
                raise PlacementError(
                    f"line {lineno}: second PLACEMENT directive"
                )
            if len(fields) != 2:
                raise PlacementError(
                    f"line {lineno}: PLACEMENT takes exactly one name"
                )
            name = fields[1]
        elif directive == "CHIP":
            if chip is not None:
                raise PlacementError(f"line {lineno}: second CHIP directive")
            if len(fields) != 5:
                raise PlacementError(
                    f"line {lineno}: CHIP takes x_lo y_lo x_hi y_hi"
                )
            try:
                chip = Rect(*(float(v) for v in fields[1:]))
            except ValueError as exc:
                raise PlacementError(f"line {lineno}: {exc}") from exc
        elif directive == "MODULE":
            if len(fields) != 6:
                raise PlacementError(
                    f"line {lineno}: MODULE takes name x y width height"
                )
            module_name = fields[1]
            if module_name in placements:
                raise PlacementError(
                    f"line {lineno}: module {module_name!r} placed twice"
                )
            try:
                x, y, w, h = (float(v) for v in fields[2:])
                placements[module_name] = Rect.from_origin(x, y, w, h)
            except ValueError as exc:
                raise PlacementError(f"line {lineno}: {exc}") from exc
        elif directive == "END":
            saw_end = True
        else:
            raise PlacementError(
                f"line {lineno}: unknown directive {fields[0]!r}"
            )
    if not name:
        raise PlacementError("missing PLACEMENT directive")
    if not placements:
        raise PlacementError("placement lists no modules")
    try:
        floorplan = Floorplan(placements, chip=chip)
        floorplan.validate()
    except ValueError as exc:
        raise PlacementError(str(exc)) from exc
    return floorplan


def write_placement(
    floorplan: Floorplan, path: Union[str, Path], name: str = "floorplan"
) -> None:
    """Write a floorplan to ``path``."""
    Path(path).write_text(dumps_placement(floorplan, name))


def read_placement(path: Union[str, Path]) -> Floorplan:
    """Read a floorplan from ``path``."""
    return loads_placement(Path(path).read_text())
