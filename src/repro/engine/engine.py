"""The unified annealing engine: one loop, any representation.

:class:`AnnealEngine` replaces the three per-representation annealer
wrappers with a single engine parameterized by a representation name
(or a ready :class:`~repro.engine.representation.Representation`).  It
owns the run's :class:`~repro.perf.context.CacheContext`, builds (or
adopts) the objective against it, and returns an
:class:`EngineResult` carrying -- besides the usual annealing outputs
-- the representation name, the seed, and a picklable snapshot of
per-cache hit/miss/eviction statistics.

Fault tolerance: :meth:`AnnealEngine.run` accepts a
:class:`~repro.engine.control.RunControl`; the engine binds the
control's checkpoint writer to its own
:class:`~repro.engine.checkpoint.Checkpoint` envelope (netlist,
representation, seed, schedule, objective recipe, cache statistics),
so the annealing loop can persist its position without knowing the
format.  :meth:`AnnealEngine.resume` rebuilds the whole engine from a
checkpoint file alone and continues the run bit-identically (see
:mod:`repro.engine.checkpoint` for why).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.anneal.cost import CostBreakdown, FloorplanObjective
from repro.anneal.generic import Snapshot, anneal
from repro.anneal.schedule import GeometricSchedule
from repro.engine.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.engine.control import RunControl
from repro.errors import CheckpointError
from repro.engine.representation import Representation, make_representation
from repro.floorplan import Floorplan
from repro.netlist import Netlist
from repro.perf import CacheStats, PerfRecorder
from repro.perf.context import CacheContext, merge_cache_stats

__all__ = ["EngineResult", "ObjectiveFactory", "AnnealEngine"]


ObjectiveFactory = Callable[[Netlist, CacheContext], FloorplanObjective]
"""Builds one run's objective against the engine's cache context."""


@dataclass
class EngineResult:
    """A finished engine run.

    Mirrors the generic annealing result, labelled with the
    representation and seed that produced it, plus ``cache_stats``: a
    plain ``name -> CacheStats`` snapshot of the run's cache context
    (picklable, unlike the live context with its locks, so process-pool
    restarts can ship results home intact).  For a resumed run the
    snapshot covers the whole logical run (pre-crash segment's stats
    merged in).

    ``completed`` is False when the run stopped early on a cooperative
    stop (signal, deadline, supervisor); ``stop_reason`` then names the
    cause, and the result still carries the best solution found so far.

    ``progress`` and ``metrics`` carry the run's observability payload
    when the engine ran with an observer: periodic
    :class:`~repro.obs.ProgressSnapshot` samples and the worker-side
    metrics-registry snapshot.  Both are plain picklable data, so they
    ride the supervision seam home from pool workers like everything
    else here.
    """

    representation: str
    seed: int
    floorplan: Floorplan
    state: object
    breakdown: CostBreakdown
    snapshots: List[Snapshot] = field(default_factory=list)
    n_moves: int = 0
    n_accepted: int = 0
    runtime_seconds: float = 0.0
    perf: Optional[PerfRecorder] = None
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)
    completed: bool = True
    stop_reason: Optional[str] = None
    checkpoints_written: int = 0
    rng_state: Optional[object] = None
    progress: List[Any] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def cost(self) -> float:
        """The best floorplan's combined objective cost."""
        return self.breakdown.cost

    @property
    def acceptance_ratio(self) -> float:
        """Accepted moves over attempted moves."""
        return self.n_accepted / self.n_moves if self.n_moves else 0.0

    @property
    def moves_per_second(self) -> float:
        """Attempted moves per wall-clock second."""
        return self.n_moves / self.runtime_seconds if self.runtime_seconds else 0.0


class AnnealEngine:
    """Anneal a circuit under any registered representation.

    Parameters
    ----------
    netlist:
        The circuit.
    representation:
        A registered name (``"polish"`` / ``"sp"`` / ``"btree"``) or a
        prebuilt :class:`~repro.engine.representation.Representation`.
    objective:
        A ready :class:`FloorplanObjective`; the engine adopts its
        cache context so representation-level and congestion caches
        report in one place.  Mutually exclusive with
        ``objective_factory`` and ``cache_context``.
    objective_factory:
        ``(netlist, cache_context) -> FloorplanObjective``; called with
        the engine's context.  Defaults to an area+wirelength
        objective.
    objective_spec:
        A picklable objective recipe with a
        ``build(netlist, cache_context)`` method (duck-typed; normally
        an :class:`~repro.engine.multistart.ObjectiveSpec`).  When
        neither ``objective`` nor ``objective_factory`` is given, the
        engine builds its objective from the spec -- and, crucially,
        embeds the spec in every checkpoint, making checkpoint files
        self-contained (:meth:`resume` needs no other arguments).
    seed:
        Seed for every stochastic choice; identical seeds give
        identical runs.
    moves_per_temperature:
        Move attempts per temperature step; defaults to ``10 * m``
        (Wong-Liu's recommendation).
    schedule:
        Cooling schedule.
    calibrate:
        Run objective normalization before annealing (skip when the
        caller already calibrated a shared objective).
    cache_context:
        The cache fleet for this engine; a private one is created when
        omitted.  Every engine owns exactly one context -- two engines
        never share cache state unless explicitly given one context.
    backend:
        Compute-backend name (``"numpy"`` / ``"numba"`` / ``"python"``)
        for the engine-built default objective.  Callers supplying their
        own ``objective`` / ``objective_factory`` / ``objective_spec``
        set the backend there instead (the spec has a ``backend``
        field); combining them raises ``ValueError`` so a requested
        backend can never be silently ignored.
    initial_state:
        Start annealing from this representation state instead of a
        seeded random initial.  Search drivers use it to continue from
        (or migrate) an elite solution; the state must belong to this
        engine's representation.
    t0_scale:
        Multiplier on the sampled initial temperature (see
        :func:`repro.anneal.generic.anneal`); values below 1 make a
        run starting from ``initial_state`` polish rather than
        re-scramble.
    """

    def __init__(
        self,
        netlist: Netlist,
        representation: Union[str, Representation] = "polish",
        objective: Optional[FloorplanObjective] = None,
        objective_factory: Optional[ObjectiveFactory] = None,
        objective_spec: Optional[object] = None,
        seed: int = 0,
        moves_per_temperature: Optional[int] = None,
        schedule: Optional[GeometricSchedule] = None,
        calibrate: bool = True,
        cache_context: Optional[CacheContext] = None,
        backend: Optional[str] = None,
        initial_state: Optional[object] = None,
        t0_scale: float = 1.0,
    ):
        if objective is not None and objective_factory is not None:
            raise ValueError(
                "pass either objective or objective_factory, not both"
            )
        if backend is not None and (
            objective is not None
            or objective_factory is not None
            or objective_spec is not None
        ):
            raise ValueError(
                "backend= configures the engine-built default objective; "
                "set the backend on your objective / factory / spec instead"
            )
        self.netlist = netlist
        self.objective_spec = objective_spec
        if objective is not None:
            if cache_context is not None:
                raise ValueError(
                    "a ready objective brings its own cache context; "
                    "pass cache_context to the objective instead"
                )
            self.cache_context = objective.cache_context
        else:
            self.cache_context = (
                cache_context if cache_context is not None else CacheContext()
            )
            if objective_factory is not None:
                objective = objective_factory(netlist, self.cache_context)
            elif objective_spec is not None:
                objective = objective_spec.build(netlist, self.cache_context)
            else:
                objective = FloorplanObjective(
                    netlist,
                    cache_context=self.cache_context,
                    backend=backend,
                )
        self.objective = objective
        if isinstance(representation, Representation):
            self.representation = representation
        else:
            self.representation = make_representation(
                representation,
                netlist,
                allow_rotation=objective.allow_rotation,
                cache_context=self.cache_context,
            )
        self.seed = int(seed)
        m = netlist.n_modules
        self.moves_per_temperature = (
            moves_per_temperature if moves_per_temperature is not None else 10 * m
        )
        if self.moves_per_temperature < 1:
            raise ValueError("moves_per_temperature must be >= 1")
        self.schedule = schedule or GeometricSchedule()
        self._calibrate = bool(calibrate)
        self.initial_state = initial_state
        self.t0_scale = float(t0_scale)
        if self.t0_scale <= 0:
            raise ValueError(f"t0_scale must be positive, got {t0_scale}")
        self._resume_state = None
        self._resume_version: Optional[int] = None
        self._prior_cache_stats: Dict[str, CacheStats] = {}

    @classmethod
    def resume(
        cls,
        path: Union[str, Path],
        objective_factory: Optional[ObjectiveFactory] = None,
        cache_context: Optional[CacheContext] = None,
    ) -> "AnnealEngine":
        """Rebuild an engine from a checkpoint file and arm it to
        continue where the file left off.

        A checkpoint written by an engine built from an objective
        *spec* is self-contained: ``AnnealEngine.resume(path).run()``
        continues the interrupted run bit-identically.  When the
        original engine used a non-picklable objective (a live
        ``objective`` or ``objective_factory``), pass an equivalent
        ``objective_factory`` here -- the resumed run sanity-checks the
        checkpointed cost against a re-evaluation and raises
        :class:`~repro.errors.CheckpointError` on mismatch, so a wrong
        objective cannot silently continue with different physics.
        """
        checkpoint = load_checkpoint(path)
        engine = cls(
            checkpoint.netlist,
            representation=checkpoint.representation,
            objective_factory=objective_factory,
            objective_spec=checkpoint.objective_spec,
            seed=checkpoint.seed,
            moves_per_temperature=checkpoint.moves_per_temperature,
            schedule=checkpoint.schedule,
            calibrate=False,  # checkpointed norms are restored instead
            cache_context=cache_context,
        )
        engine._resume_state = checkpoint.loop
        engine._prior_cache_stats = dict(checkpoint.cache_stats)
        engine._resume_version = checkpoint.version
        return engine

    @property
    def resuming(self) -> bool:
        """Whether the next :meth:`run` continues a checkpoint."""
        return self._resume_state is not None

    def run(
        self,
        on_snapshot: Optional[Callable[[Snapshot], None]] = None,
        control: Optional[RunControl] = None,
        observer=None,
    ) -> EngineResult:
        """Run one full annealing schedule and return the best solution.

        With a ``control``, the run polls for cooperative stops
        (signals, deadline, supervisor) and writes atomic checkpoints
        per the control's policy; an early stop still returns the
        best-so-far result, with ``completed=False`` and
        ``stop_reason`` set.

        With an ``observer`` (a :class:`repro.obs.RunObserver`), the
        run records per-step telemetry under a ``restart`` span, uses
        the observer's perf recorder (so timers and counters land in
        one registry), and ships the observer's progress snapshots and
        metrics back on the result.  Observation never touches the RNG
        stream -- observed and unobserved runs are bit-identical.
        """
        rep = self.representation
        if control is not None:
            if control.checkpoint_path is not None:
                control.bind_writer(self._make_checkpoint_writer(control))
            control.begin()
        if self.initial_state is not None:
            fixed = self.initial_state
            initial = lambda rng: fixed  # noqa: E731 -- closure over state
        else:
            initial = rep.initial
        if observer is not None:
            span = observer.span(
                "restart", representation=rep.name, seed=self.seed
            )
        else:
            from contextlib import nullcontext

            span = nullcontext()
        resuming = self._resume_state is not None
        with span:
            try:
                result = anneal(
                    objective=self.objective,
                    initial=initial,
                    neighbor=rep.neighbor,
                    realize=rep.realize,
                    seed=self.seed,
                    moves_per_temperature=self.moves_per_temperature,
                    schedule=self.schedule,
                    calibrate=self._calibrate,
                    on_snapshot=on_snapshot,
                    perf=observer.metrics.perf if observer is not None else None,
                    control=control,
                    resume=self._resume_state,
                    t0_scale=self.t0_scale,
                    observer=observer,
                )
            except CheckpointError as exc:
                if resuming:
                    # The loop's sanity check knows only the two costs;
                    # add what the operator needs to find the wrong
                    # file/engine pairing.
                    raise CheckpointError(
                        f"{exc} [checkpoint format "
                        f"v{self._resume_version}, engine "
                        f"{type(self).__name__}, representation "
                        f"{rep.name}, seed {self.seed}]"
                    ) from exc
                raise
        self._resume_state = None  # a second run() starts fresh
        cache_stats = merge_cache_stats(
            self._prior_cache_stats, self.cache_context.stats()
        )
        progress: List[Any] = []
        metrics: Dict[str, Any] = {}
        if observer is not None:
            observer.metrics.set_cache_gauges(cache_stats)
            progress = list(observer.progress)
            metrics = observer.metrics.snapshot()
        return EngineResult(
            representation=rep.name,
            seed=self.seed,
            floorplan=result.floorplan,
            state=result.state,
            breakdown=result.breakdown,
            snapshots=list(result.snapshots),
            n_moves=result.n_moves,
            n_accepted=result.n_accepted,
            runtime_seconds=result.runtime_seconds,
            perf=result.perf,
            cache_stats=cache_stats,
            completed=result.completed,
            stop_reason=result.stop_reason,
            checkpoints_written=(
                control.checkpoints_written if control is not None else 0
            ),
            rng_state=result.rng_state,
            progress=progress,
            metrics=metrics,
        )

    def _make_checkpoint_writer(self, control: RunControl):
        """The closure the annealing loop calls with a bare loop state;
        wraps it in the engine's full checkpoint envelope."""

        def write(loop_state) -> None:
            save_checkpoint(
                control.checkpoint_path,
                Checkpoint(
                    representation=self.representation.name,
                    seed=self.seed,
                    netlist=self.netlist,
                    moves_per_temperature=self.moves_per_temperature,
                    schedule=self.schedule,
                    loop=loop_state,
                    objective_spec=self.objective_spec,
                    cache_stats=merge_cache_stats(
                        self._prior_cache_stats, self.cache_context.stats()
                    ),
                ),
            )

        return write
