"""Generic supervised job execution: pools, retries, rebuild, degrade.

PR 3 built worker supervision *inside* :class:`MultiStartEngine`:
wall-clock watchdogs per job, bounded retries with exponential backoff,
pool teardown-and-rebuild on a crash or hang, and degradation to
sequential execution when the pool keeps dying.  Every search driver
needs exactly that machinery -- multistart supervises restarts,
replica-exchange tempering supervises per-round replica sweeps, the
portfolio driver supervises per-round representation legs -- so this
module hosts it once, generalized over *jobs* instead of restarts.

A job is addressed by an integer ``key`` (a seed, a replica id, a leg
seed); the runner calls a **module-level picklable function** ``fn``
with ``make_args(key, attempt, mode)`` positional arguments, exactly as
:func:`~repro.engine.multistart._run_restart` was called before the
extraction.  Results land in a ``key -> result`` dict and every
attempt, failure, and recovery is recorded in the per-key
:class:`~repro.engine.multistart.RunReport` ledger -- the same
supervision semantics, bit for bit, that the multistart robustness
suite locked in:

* a worker that raises keeps the pool alive and charges one attempt to
  that job alone;
* a worker that crashes takes the pool with it
  (:class:`~concurrent.futures.process.BrokenProcessPool` cannot name
  the culprit), so finished futures are harvested and every in-flight
  job is charged one attempt before the pool is rebuilt;
* a worker that hangs past ``timeout`` costs the pool too -- wedged
  processes are terminated, never waited on;
* after ``max_pool_rebuilds`` teardowns the runner reports
  ``degraded`` and the caller finishes the remaining jobs sequentially
  through the very same ``fn``.

Determinism: the runner itself makes no random choices and jobs are
harvested in key order, so a sequential pass and a pool pass over the
same jobs produce identical results whenever ``fn`` is a pure function
of its arguments -- the property every driver's parity test asserts.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["SupervisedRunner"]


class _HeartbeatStalled(RuntimeError):
    """A pooled worker stopped touching its heartbeat file (internal:
    harvested like a timeout -- the pool is killed and rebuilt)."""


class SupervisedRunner:
    """Run keyed jobs under supervision, sequentially or on a pool.

    Parameters
    ----------
    fn:
        The module-level picklable callable every job runs.
    make_args:
        ``(key, attempt, mode) -> tuple`` of positional arguments for
        ``fn``; ``mode`` is ``"pool"`` or ``"sequential"`` so targeted
        fault injection can address one execution path.
    timeout:
        Wall-clock seconds a pooled job may take before it is deemed
        hung and the pool is killed.  ``None`` disables the watchdog.
    max_retries:
        Extra attempts a failed job gets before its report goes
        ``"failed"``.
    retry_backoff:
        Base of the exponential backoff slept before retry ``k``
        (``retry_backoff * 2**(k-1)`` seconds); 0 disables sleeping.
    retry_jitter:
        Fractional jitter on each backoff sleep: the delay is
        multiplied by ``1 + retry_jitter * u`` with ``u`` drawn from a
        runner-owned seeded RNG (``jitter_seed``), so a fleet of
        runners retrying the same incident fans out instead of
        thundering back in lockstep -- while any single runner remains
        fully deterministic.  0 (the default) keeps the historical
        exact-exponential behavior.
    jitter_seed:
        Seed of the jitter RNG (only consulted when
        ``retry_jitter > 0``).
    heartbeat_path:
        ``key -> path`` of the job's heartbeat file (or ``None`` for
        keys without one).  When set together with
        ``heartbeat_timeout``, the pool harvest polls instead of
        blocking: a *running* job whose heartbeat mtime goes stale past
        the limit is declared hung immediately -- minutes before a
        wall-clock ``timeout`` would fire, and without misfiring on a
        slow-but-alive job that keeps beating.  Jobs that beat forever
        but never finish are still bounded by ``timeout``.
    heartbeat_timeout:
        Seconds of heartbeat staleness that count as a hang.
    max_pool_rebuilds:
        Pool teardowns tolerated before :meth:`run_pool` reports
        ``degraded``.
    observer:
        Optional :class:`repro.obs.RunObserver`; every failure, pool
        rebuild and degradation is mirrored into it as a trace event
        and a metrics counter (``supervision_retries`` /
        ``pool_rebuilds`` / ``degraded``), so a crashed run's
        supervision history survives on disk.
    """

    def __init__(
        self,
        fn: Callable,
        make_args: Callable[[int, int, str], tuple],
        timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        retry_jitter: float = 0.0,
        jitter_seed: int = 0,
        heartbeat_path: Optional[Callable[[int], object]] = None,
        heartbeat_timeout: Optional[float] = None,
        heartbeat_poll: float = 0.05,
        max_pool_rebuilds: int = 2,
        observer=None,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if retry_jitter < 0:
            raise ValueError(
                f"retry_jitter must be >= 0, got {retry_jitter}"
            )
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        if heartbeat_poll <= 0:
            raise ValueError(
                f"heartbeat_poll must be positive, got {heartbeat_poll}"
            )
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.fn = fn
        self.make_args = make_args
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_jitter = float(retry_jitter)
        self._jitter_rng = random.Random(jitter_seed)
        self.heartbeat_path = heartbeat_path
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_poll = float(heartbeat_poll)
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.observer = observer

    def _max_attempts(self) -> int:
        return 1 + self.max_retries

    def _note_failure(self, key: int, attempt: int, kind: str) -> None:
        """Mirror one failed attempt into the observer (if any)."""
        if self.observer is not None:
            self.observer.event(
                "supervision_retry", key=key, attempt=attempt, kind=kind
            )
            self.observer.metrics.count("supervision_retries")

    def _note_incident(self, name: str, counter: str, **attrs) -> None:
        """Mirror a pool rebuild / degradation into the observer."""
        if self.observer is not None:
            self.observer.event(name, **attrs)
            self.observer.metrics.count(counter)

    def _backoff(self, failed_attempts: int) -> None:
        if self.retry_backoff > 0 and failed_attempts > 0:
            delay = self.retry_backoff * (2.0 ** (failed_attempts - 1))
            if self.retry_jitter > 0:
                delay *= 1.0 + self.retry_jitter * self._jitter_rng.random()
            time.sleep(delay)

    def _wait_result(self, key: int, fut):
        """Harvest one future, heartbeat-aware when configured.

        Without heartbeats this is the historical blocking
        ``fut.result(timeout)``.  With them, it polls: the wall-clock
        ``timeout`` still bounds the whole wait (raises the standard
        futures ``TimeoutError``), but a future that is *running* while
        its job's heartbeat file goes stale past ``heartbeat_timeout``
        raises :class:`_HeartbeatStalled` right away.  A queued-not-yet
        -running future is never blamed (its heartbeat cannot exist
        yet); staleness for a running job with no file yet is measured
        from when we first saw it running.  The file's mtime is only
        trusted up to that running-since age: a heartbeat file left
        behind by a previous killed attempt is already stale when the
        retry starts, and must not condemn it before the new worker
        writes its first beat.
        """
        if self.heartbeat_timeout is None or self.heartbeat_path is None:
            return fut.result(timeout=self.timeout)
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        running_since: Optional[float] = None
        while True:
            try:
                return fut.result(timeout=self.heartbeat_poll)
            except _FuturesTimeout:
                pass
            if deadline is not None and time.monotonic() >= deadline:
                raise _FuturesTimeout()
            if not fut.running():
                running_since = None
                continue
            if running_since is None:
                running_since = time.monotonic()
            path = self.heartbeat_path(key)
            beat_age = time.monotonic() - running_since
            if path is not None:
                try:
                    mtime_age = time.time() - os.path.getmtime(path)
                except OSError:
                    pass
                else:
                    # min(): a beat written by *this* attempt refreshes
                    # the lease, but a stale file predating the attempt
                    # cannot age it past the attempt's own runtime.
                    beat_age = min(beat_age, mtime_age)
            if beat_age >= self.heartbeat_timeout:
                raise _HeartbeatStalled(
                    f"no heartbeat for {beat_age:.1f}s (limit "
                    f"{self.heartbeat_timeout}s); pool killed"
                )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on wedged workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)

    def run_pool(
        self,
        keys: Sequence[int],
        workers: int,
        reports: Dict[int, "RunReport"],
        results: Dict[int, object],
        control=None,
    ) -> Tuple[int, bool]:
        """Supervised pool execution.  Returns ``(rebuilds, degraded)``.

        ``degraded`` means the pool died more than ``max_pool_rebuilds``
        times; the caller should finish the remaining keys with
        :meth:`run_sequential`.
        """
        rebuilds = 0
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while True:
                if control is not None and control.should_stop():
                    break
                todo = [
                    k
                    for k in keys
                    if k not in results
                    and reports[k].attempts < self._max_attempts()
                ]
                if not todo:
                    break
                if rebuilds > self.max_pool_rebuilds:
                    return rebuilds, True  # degrade to sequential
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=workers)
                futures = {
                    k: pool.submit(
                        self.fn,
                        *self.make_args(k, reports[k].attempts, "pool"),
                    )
                    for k in todo
                }
                pool_died = False
                for k in todo:
                    if k in results:
                        continue
                    try:
                        result = self._wait_result(k, futures[k])
                    except _FuturesTimeout:
                        reports[k].record_failure(
                            "timeout",
                            f"no result within {self.timeout}s; "
                            f"pool killed",
                        )
                        self._note_failure(k, reports[k].attempts, "timeout")
                        pool_died = True
                        break
                    except _HeartbeatStalled as exc:
                        # Hung, by liveness evidence rather than budget
                        # exhaustion; same remedy as a timeout (wedged
                        # workers are terminated, never waited on).
                        reports[k].record_failure("timeout", str(exc))
                        self._note_failure(k, reports[k].attempts, "timeout")
                        pool_died = True
                        break
                    except BrokenProcessPool as exc:
                        # The dying worker takes the whole pool down and
                        # the executor cannot say which worker it was:
                        # harvest whatever did finish, then charge one
                        # attempt to every in-flight key.  The culprit
                        # among them advances past its faulting attempt;
                        # the innocents just retry.
                        for t in todo:
                            if t in results:
                                continue
                            fut = futures[t]
                            harvested = False
                            if fut.done() and not fut.cancelled():
                                try:
                                    results[t] = fut.result(timeout=0)
                                except Exception:
                                    pass
                                else:
                                    reports[t].status = "ok"
                                    reports[t].mode = "pool"
                                    reports[t].attempts += 1
                                    harvested = True
                            if not harvested:
                                reports[t].record_failure(
                                    "crash",
                                    f"worker process died with the pool: "
                                    f"{exc}",
                                )
                                self._note_failure(
                                    t, reports[t].attempts, "crash"
                                )
                        pool_died = True
                        break
                    except Exception as exc:
                        # The worker survived and reported a real
                        # exception; the pool is still healthy.
                        reports[k].record_failure(
                            "error", f"{type(exc).__name__}: {exc}"
                        )
                        self._note_failure(k, reports[k].attempts, "error")
                        continue
                    else:
                        results[k] = result
                        reports[k].status = "ok"
                        reports[k].mode = "pool"
                        reports[k].attempts += 1
                if pool_died:
                    self._kill_pool(pool)
                    pool = None
                    rebuilds += 1
                    self._note_incident(
                        "pool_rebuild", "pool_rebuilds", rebuilds=rebuilds
                    )
                failed = max(
                    (r.attempts for r in reports.values() if r.failures),
                    default=0,
                )
                if any(
                    k not in results
                    and reports[k].attempts < self._max_attempts()
                    for k in todo
                ):
                    self._backoff(failed)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return rebuilds, False

    def run_sequential(
        self,
        keys: Sequence[int],
        reports: Dict[int, "RunReport"],
        results: Dict[int, object],
        control=None,
    ) -> None:
        """In-process execution with the same retry accounting.

        ``control`` rides along as a keyword argument to ``fn`` (it
        holds a lock and cannot cross a process boundary); a stop
        request skips the keys that have not started yet.
        """
        for k in keys:
            if k in results:
                continue
            while (
                k not in results
                and reports[k].attempts < self._max_attempts()
            ):
                if control is not None and control.should_stop():
                    if reports[k].status == "pending":
                        reports[k].status = "skipped"
                    return
                self._backoff(len(reports[k].failures))
                try:
                    results[k] = self.fn(
                        *self.make_args(k, reports[k].attempts, "sequential"),
                        control=control,
                    )
                except Exception as exc:
                    reports[k].record_failure(
                        "error", f"{type(exc).__name__}: {exc}"
                    )
                    self._note_failure(k, reports[k].attempts, "error")
                else:
                    reports[k].status = "ok"
                    reports[k].mode = "sequential"
                    reports[k].attempts += 1

    def run(
        self,
        keys: Sequence[int],
        workers: int,
        reports: Dict[int, "RunReport"],
        results: Dict[int, object],
        control=None,
    ) -> Tuple[int, bool]:
        """Run every key to completion: pool first (when ``workers > 1``),
        sequential for the remainder or when degraded.

        Returns ``(pool_rebuilds, degraded)``.
        """
        rebuilds = 0
        degraded = False
        if workers > 1:
            rebuilds, degraded = self.run_pool(
                keys, workers, reports, results, control
            )
            if degraded:
                self._note_incident(
                    "supervision_degraded", "degraded", rebuilds=rebuilds
                )
        if workers <= 1 or degraded:
            self.run_sequential(keys, reports, results, control)
        return rebuilds, degraded
