"""Floorplan representations behind one string-keyed registry.

The three representations the repo anneals over -- normalized Polish
expressions (Wong-Liu slicing), sequence pairs, and B*-trees -- differ
only in three functions:

* ``initial(rng) -> state``
* ``neighbor(state, rng) -> state``
* ``realize(state) -> Floorplan``

:class:`Representation` packages that triple, bound to one circuit;
the registry maps short names (``"polish"`` / ``"sp"`` / ``"btree"``)
to factories so the engine and the CLI select representations by
string.  Factories receive the engine's
:class:`~repro.perf.context.CacheContext` and thread the relevant
cache into ``realize`` (only Polish packing memoizes today), keeping
all memoization engine-scoped.

Representations may additionally expose the *inverse* of ``realize``:
``from_floorplan(floorplan) -> state`` reconstructs a state whose
packing resembles a given placement (see
:mod:`repro.floorplan.convert`).  The portfolio search driver uses it
to migrate elite solutions across representations; it is optional --
a representation without it simply cannot receive migrants.

The registry itself is write-once configuration (names -> factories
registered at import or by extensions), not a result cache; it holds
no per-run mutable state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.floorplan import (
    BStarTree,
    Floorplan,
    SequencePair,
    evaluate_polish,
    initial_expression,
    pack_btree,
    pack_sequence_pair,
)
from repro.floorplan.convert import (
    btree_from_floorplan,
    polish_from_floorplan,
    sequence_pair_from_floorplan,
)
from repro.netlist import Netlist
from repro.perf.context import CacheContext

__all__ = [
    "Representation",
    "RepresentationFactory",
    "register_representation",
    "make_representation",
    "available_representations",
    "representation_descriptions",
]


@dataclass(frozen=True)
class Representation:
    """One floorplan representation bound to one circuit.

    The generic annealing loop consumes exactly the
    ``initial``/``neighbor``/``realize`` triple; the ``name`` rides
    along for result labelling.  ``from_floorplan`` (optional) is the
    conversion hook the portfolio driver migrates elites through --
    the approximate inverse of ``realize``.
    """

    name: str
    initial: Callable[[random.Random], Any]
    neighbor: Callable[[Any, random.Random], Any]
    realize: Callable[[Any], Floorplan]
    from_floorplan: Optional[Callable[[Floorplan], Any]] = None


RepresentationFactory = Callable[
    [Netlist, bool, Optional[CacheContext]], Representation
]
"""Signature of a registry entry:
``factory(netlist, allow_rotation, cache_context) -> Representation``."""

_FACTORIES: Dict[str, RepresentationFactory] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_representation(
    name: str, factory: RepresentationFactory, description: str = ""
) -> None:
    """Register a representation factory under ``name``.

    ``description`` is the one-line summary ``--list-reprs`` prints.
    Raises :class:`ValueError` on a duplicate name -- silently
    replacing a representation would change what every engine built
    from that name means.
    """
    if name in _FACTORIES:
        raise ValueError(f"representation {name!r} is already registered")
    _FACTORIES[name] = factory
    _DESCRIPTIONS[name] = description


def available_representations() -> Tuple[str, ...]:
    """The registered representation names, sorted."""
    return tuple(sorted(_FACTORIES))


def representation_descriptions() -> Dict[str, str]:
    """``name -> one-line description`` for every registered
    representation, in sorted name order."""
    return {name: _DESCRIPTIONS.get(name, "") for name in sorted(_FACTORIES)}


def make_representation(
    name: str,
    netlist: Netlist,
    allow_rotation: bool = True,
    cache_context: Optional[CacheContext] = None,
) -> Representation:
    """Build the named representation for ``netlist``.

    ``cache_context`` is the owning engine's cache fleet; factories
    thread the caches they need into their closures (``None`` disables
    representation-level memoization).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_representations())
        raise ValueError(
            f"unknown representation {name!r}; available: {known}"
        ) from None
    return factory(netlist, allow_rotation, cache_context)


def _polish_factory(
    netlist: Netlist,
    allow_rotation: bool,
    cache_context: Optional[CacheContext],
) -> Representation:
    names = [m.name for m in netlist.modules]
    modules = {m.name: m for m in netlist.modules}
    cache = cache_context.subtree_shapes if cache_context is not None else None
    return Representation(
        name="polish",
        initial=lambda rng: initial_expression(names, rng),
        neighbor=lambda expr, rng: expr.random_neighbor(rng),
        realize=lambda expr: evaluate_polish(
            expr, modules, allow_rotation, cache=cache
        ),
        from_floorplan=lambda fp: polish_from_floorplan(fp, modules),
    )


def _sp_factory(
    netlist: Netlist,
    allow_rotation: bool,
    cache_context: Optional[CacheContext],
) -> Representation:
    # Sequence-pair packing places modules at their given dimensions;
    # rotation is a representation-level move it does not take, so
    # ``allow_rotation`` and the cache context are unused.
    modules = {m.name: m for m in netlist.modules}
    return Representation(
        name="sp",
        initial=lambda rng: SequencePair.initial(list(modules), rng),
        neighbor=lambda pair, rng: pair.random_neighbor(rng),
        realize=lambda pair: pack_sequence_pair(pair, modules),
        from_floorplan=lambda fp: sequence_pair_from_floorplan(fp, modules),
    )


def _btree_factory(
    netlist: Netlist,
    allow_rotation: bool,
    cache_context: Optional[CacheContext],
) -> Representation:
    # B*-tree contour packing; rotation happens through the tree's own
    # rotate move, so ``allow_rotation`` and the cache context are
    # unused here too.
    modules = {m.name: m for m in netlist.modules}
    return Representation(
        name="btree",
        initial=lambda rng: BStarTree.initial(list(modules), rng),
        neighbor=lambda tree, rng: tree.random_neighbor(rng),
        realize=lambda tree: pack_btree(tree, modules),
        from_floorplan=lambda fp: btree_from_floorplan(fp, modules),
    )


register_representation(
    "polish",
    _polish_factory,
    "normalized Polish expressions (Wong-Liu slicing trees)",
)
register_representation(
    "sp",
    _sp_factory,
    "sequence pairs (Murata et al. longest-path packing)",
)
register_representation(
    "btree",
    _btree_factory,
    "B*-trees (Chang et al. contour packing)",
)
