"""The unified floorplan engine.

One engine, four layers:

1. **Representation** (:mod:`repro.engine.representation`) -- Polish
   expressions, sequence pairs and B*-trees behind one string-keyed
   registry of ``initial`` / ``neighbor`` / ``realize`` triples;
2. **Evaluation pipeline** (:mod:`repro.anneal.pipeline`) -- pin
   assignment -> MST decomposition -> congestion -> cost aggregation
   over one columnar state, with the dirty-net delta path;
3. **Engine-scoped caches** (:class:`~repro.perf.context.CacheContext`,
   re-exported here) -- every memo a run touches belongs to the
   engine's context; no module-global mutable cache anywhere, so
   concurrent engines never cross-pollute;
4. **Search drivers** (:mod:`repro.engine.drivers`) -- strategies
   that schedule many supervised annealing runs behind one registry:
   ``multistart`` (best-of-N restarts, the default), ``tempering``
   (replica exchange over a temperature ladder), and ``portfolio``
   (representation race with slot reallocation and elite migration),
   all sequential-vs-pool bit-identical and resumable from
   round-granularity driver checkpoints.

The historical per-representation annealer classes in
:mod:`repro.anneal` remain as deprecated shims over
:class:`AnnealEngine`.

Fault tolerance rides on top of all four layers:
:class:`~repro.engine.control.RunControl` (cooperative stop, deadline,
checkpoint policy) with :func:`~repro.engine.control.install_signal_handlers`
for SIGINT/SIGTERM, atomic checkpoints and bit-identical
:meth:`AnnealEngine.resume` (:mod:`repro.engine.checkpoint`), and the
multistart supervisor's per-restart :class:`RunReport` ledger.
"""

from repro.backend import (
    KernelBackend,
    available_backends,
    backend_descriptions,
    make_backend,
    register_backend,
)
from repro.engine.checkpoint import (
    Checkpoint,
    CheckpointInfo,
    DriverCheckpoint,
    LoopState,
    load_checkpoint,
    load_driver_checkpoint,
    peek_checkpoint,
    save_checkpoint,
    save_driver_checkpoint,
)
from repro.engine.control import RunControl, install_signal_handlers
from repro.engine.drivers import (
    DriverConfig,
    MultiStartDriver,
    SearchDriver,
    SearchResult,
    available_drivers,
    driver_descriptions,
    make_driver,
    register_driver,
    resume_driver,
)
from repro.engine.engine import AnnealEngine, EngineResult, ObjectiveFactory
from repro.engine.multistart import (
    MultiStartEngine,
    MultiStartResult,
    ObjectiveSpec,
    RestartFailure,
    RunReport,
)
from repro.engine.portfolio import PortfolioDriver
from repro.engine.representation import (
    Representation,
    RepresentationFactory,
    available_representations,
    make_representation,
    register_representation,
    representation_descriptions,
)
from repro.engine.supervise import SupervisedRunner
from repro.engine.tempering import TemperingDriver
from repro.perf.context import CacheContext

__all__ = [
    "AnnealEngine",
    "EngineResult",
    "ObjectiveFactory",
    "MultiStartEngine",
    "MultiStartResult",
    "ObjectiveSpec",
    "RestartFailure",
    "RunReport",
    "SupervisedRunner",
    "DriverConfig",
    "SearchDriver",
    "SearchResult",
    "MultiStartDriver",
    "TemperingDriver",
    "PortfolioDriver",
    "available_drivers",
    "driver_descriptions",
    "make_driver",
    "register_driver",
    "resume_driver",
    "Representation",
    "RepresentationFactory",
    "available_representations",
    "make_representation",
    "register_representation",
    "representation_descriptions",
    "KernelBackend",
    "available_backends",
    "backend_descriptions",
    "make_backend",
    "register_backend",
    "CacheContext",
    "RunControl",
    "install_signal_handlers",
    "Checkpoint",
    "DriverCheckpoint",
    "LoopState",
    "save_checkpoint",
    "load_checkpoint",
    "peek_checkpoint",
    "CheckpointInfo",
    "save_driver_checkpoint",
    "load_driver_checkpoint",
]
