"""The unified floorplan engine.

One engine, four layers:

1. **Representation** (:mod:`repro.engine.representation`) -- Polish
   expressions, sequence pairs and B*-trees behind one string-keyed
   registry of ``initial`` / ``neighbor`` / ``realize`` triples;
2. **Evaluation pipeline** (:mod:`repro.anneal.pipeline`) -- pin
   assignment -> MST decomposition -> congestion -> cost aggregation
   over one columnar state, with the dirty-net delta path;
3. **Engine-scoped caches** (:class:`~repro.perf.context.CacheContext`,
   re-exported here) -- every memo a run touches belongs to the
   engine's context; no module-global mutable cache anywhere, so
   concurrent engines never cross-pollute;
4. **Multi-start** (:mod:`repro.engine.multistart`) -- best-of-N
   seeded restarts, sequential or process-pool, bit-identical either
   way.

The historical per-representation annealer classes in
:mod:`repro.anneal` remain as deprecated shims over
:class:`AnnealEngine`.

Fault tolerance rides on top of all four layers:
:class:`~repro.engine.control.RunControl` (cooperative stop, deadline,
checkpoint policy) with :func:`~repro.engine.control.install_signal_handlers`
for SIGINT/SIGTERM, atomic checkpoints and bit-identical
:meth:`AnnealEngine.resume` (:mod:`repro.engine.checkpoint`), and the
multistart supervisor's per-restart :class:`RunReport` ledger.
"""

from repro.backend import (
    KernelBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.engine.checkpoint import (
    Checkpoint,
    LoopState,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.control import RunControl, install_signal_handlers
from repro.engine.engine import AnnealEngine, EngineResult, ObjectiveFactory
from repro.engine.multistart import (
    MultiStartEngine,
    MultiStartResult,
    ObjectiveSpec,
    RestartFailure,
    RunReport,
)
from repro.engine.representation import (
    Representation,
    RepresentationFactory,
    available_representations,
    make_representation,
    register_representation,
)
from repro.perf.context import CacheContext

__all__ = [
    "AnnealEngine",
    "EngineResult",
    "ObjectiveFactory",
    "MultiStartEngine",
    "MultiStartResult",
    "ObjectiveSpec",
    "RestartFailure",
    "RunReport",
    "Representation",
    "RepresentationFactory",
    "available_representations",
    "make_representation",
    "register_representation",
    "KernelBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "CacheContext",
    "RunControl",
    "install_signal_handlers",
    "Checkpoint",
    "LoopState",
    "save_checkpoint",
    "load_checkpoint",
]
