"""The representation-portfolio search driver.

No single floorplan representation dominates: slicing trees pack and
mutate fastest, sequence pairs reach non-slicing packings, B*-trees
compact hard toward the origin.  The portfolio driver treats the
registered representations as *arms* of a portfolio and races them in
rounds:

* **round 0** deals the ``restarts`` leg budget round-robin across the
  arms -- every representation gets a fair fresh start;
* **between rounds** each arm's best-so-far cost ranks the arms, and
  the next round's slots are reallocated: every arm keeps one slot
  (no arm is starved -- a late bloomer can still win), the surplus
  goes to the current leaders;
* **within an arm's slots**: the first continues the arm's own best
  state at a reduced initial temperature (``t0_decay ** round`` -- an
  iterated-local-search polish instead of a fresh scramble), the
  second *migrates* the global best solution into this representation
  through its ``from_floorplan`` conversion hook
  (:mod:`repro.floorplan.convert`), and any further slots start fresh
  from new seeds.

Every leg is a full supervised annealing run
(:func:`~repro.engine.portfolio._run_leg` builds a fresh
:class:`~repro.engine.engine.AnnealEngine` per leg), executed through
:class:`~repro.engine.supervise.SupervisedRunner` -- watchdog,
retries, pool rebuild, degrade-to-sequential all behave exactly as in
multistart.  Allocation and migration decisions are pure functions of
the accumulated results, the coordinator harvests results in key
order, and leg seeds are derived arithmetically
(``seed + round * 1000 + leg``), so sequential and pooled runs make
identical decisions and produce identical results.

Checkpoints have round granularity: the driver freezes its accumulated
results, reports, per-arm bests, and the allocation ledger into a
:class:`~repro.engine.checkpoint.DriverCheckpoint` after each round;
a stop mid-round discards the partial round, so a resumed run's
remaining allocation decisions match the uninterrupted run's exactly.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.drivers import (
    DriverConfig,
    SearchDriver,
    SearchResult,
    register_driver,
)
from repro.engine.engine import AnnealEngine, EngineResult
from repro.engine.multistart import ObjectiveSpec, RunReport
from repro.engine.representation import make_representation
from repro.engine.supervise import SupervisedRunner
from repro.errors import WorkerFailure
from repro.netlist import Netlist
from repro.perf.context import CacheContext

__all__ = ["LegPlan", "PortfolioDriver"]

_ROUND_STRIDE = 1000


@dataclass(frozen=True)
class LegPlan:
    """One planned leg of one round: what to run and from where.

    ``kind`` is ``"fresh"`` (seeded random start), ``"continue"`` (the
    arm's own best state), or ``"migrate"`` (the global best converted
    into this arm's representation).  ``initial_state`` is the
    representation state to start from (``None`` for fresh) and
    ``t0_scale`` the initial-temperature multiplier the leg anneals
    with.
    """

    key: int
    arm: str
    kind: str
    seed: int
    initial_state: Any = None
    t0_scale: float = 1.0


def _run_leg(
    netlist: Netlist,
    representation: str,
    spec: ObjectiveSpec,
    seed: int,
    moves_per_temperature: Optional[int],
    schedule,
    calibrate: bool,
    initial_state: Any,
    t0_scale: float,
    key: int,
    obs_plan=None,
    attempt: int = 0,
    mode: str = "sequential",
    fault=None,
    control=None,
) -> EngineResult:
    """One portfolio leg: a full annealing run, self-contained.

    The portfolio's analogue of
    :func:`~repro.engine.multistart._run_restart`, extended with the
    elite-continuation knobs (``initial_state`` / ``t0_scale``).
    Module-level and pure, so pool and sequential execution agree;
    ``fault`` targets the supervision ``key``.  ``obs_plan`` (a
    picklable :class:`repro.obs.ObsPlan`) makes the leg collect
    progress snapshots and metrics that ride home on its result; the
    in-worker observer never touches the RNG stream.
    """
    if fault is not None:
        fault.maybe_fire(seed=key, attempt=attempt, mode=mode)
    context = CacheContext()
    engine = AnnealEngine(
        netlist,
        representation=representation,
        objective=spec.build(netlist, context),
        objective_spec=spec,
        seed=seed,
        moves_per_temperature=moves_per_temperature,
        schedule=schedule,
        calibrate=calibrate,
        initial_state=initial_state,
        t0_scale=t0_scale,
    )
    observer = obs_plan.build_observer() if obs_plan is not None else None
    return engine.run(control=control, observer=observer)


def _allocate_slots(
    arms: Tuple[str, ...],
    budget: int,
    arm_best_cost: Dict[str, float],
) -> Dict[str, int]:
    """Deal ``budget`` slots across arms by best-cost rank.

    Round 0 (no costs yet): round-robin.  Later rounds: one slot per
    arm (no starvation), surplus slots cycle through the arms ranked
    by best cost (ties break on arm name -- fully deterministic).
    Arms that have produced nothing rank last.  With ``budget`` below
    the arm count, only the ``budget`` best-ranked arms get a slot.
    """
    if not arm_best_cost:
        counts = {arm: 0 for arm in arms}
        for i in range(budget):
            counts[arms[i % len(arms)]] += 1
        return {a: n for a, n in counts.items() if n}
    ranked = sorted(
        arms,
        key=lambda a: (arm_best_cost.get(a, float("inf")), a),
    )
    counts = {arm: 0 for arm in ranked}
    for arm in ranked[: min(budget, len(ranked))]:
        counts[arm] += 1
    surplus = budget - min(budget, len(ranked))
    for i in range(surplus):
        counts[ranked[i % len(ranked)]] += 1
    return {a: n for a, n in counts.items() if n}


class PortfolioDriver(SearchDriver):
    """Race the representation arms, reallocate slots, migrate elites.

    ``config.representations`` names the arms, ``config.restarts`` the
    per-round leg budget, ``config.rounds`` the number of rounds.  The
    result's ``ledger["rounds"]`` records every allocation and
    migration decision.
    """

    name = "portfolio"

    def run(self, control=None, resume_state=None, observer=None) -> SearchResult:
        """Run ``rounds`` racing rounds over the representation arms;
        ``resume_state`` continues a driver checkpoint with the same
        allocation and migration decisions the uninterrupted run would
        have made.

        ``observer`` mirrors every allocation and migration decision
        into the trace as it is made, counts per-arm slot grants and
        champion migrations, and folds each delivered leg's progress
        and metrics into the coordinator's registry.
        """
        cfg = self.config
        spec = cfg.spec()
        obs_plan = cfg.obs_plan()
        arms = tuple(cfg.representations)
        if control is not None:
            control.begin()

        if resume_state is not None:
            all_results: List[EngineResult] = list(resume_state["results"])
            all_reports = [
                RunReport.from_json(r) for r in resume_state["reports"]
            ]
            arm_best: Dict[str, EngineResult] = dict(
                resume_state["arm_best"]
            )
            round_ledger: List[Dict[str, Any]] = list(
                resume_state["rounds"]
            )
            start_round = resume_state["round"]
            rebuilds_total = resume_state["pool_rebuilds"]
            degraded = resume_state["degraded"]
        else:
            all_results = []
            all_reports = []
            arm_best = {}
            round_ledger = []
            start_round = 0
            rebuilds_total = 0
            degraded = False

        checkpoints_written = 0
        stop_reason: Optional[str] = None

        def snapshot(next_round: int) -> Dict[str, Any]:
            return {
                "round": next_round,
                "results": list(all_results),
                "reports": [r.to_json() for r in all_reports],
                "arm_best": dict(arm_best),
                "rounds": list(round_ledger),
                "pool_rebuilds": rebuilds_total,
                "degraded": degraded,
            }

        def global_best() -> Optional[EngineResult]:
            if not arm_best:
                return None
            return min(arm_best.values(), key=lambda r: (r.cost, r.seed))

        def plan_round(round_i: int) -> List[LegPlan]:
            """Pure planning: allocation + leg kinds for one round.

            Depends only on committed state (``arm_best``), so pool and
            sequential runs plan identically, and so does a resumed run.
            """
            costs = {a: r.cost for a, r in arm_best.items()}
            slots = _allocate_slots(
                arms, cfg.restarts, costs if round_i > 0 else {}
            )
            champion = global_best()
            plans: List[LegPlan] = []
            leg = 0
            for arm in arms:
                for slot in range(slots.get(arm, 0)):
                    key = round_i * _ROUND_STRIDE + leg
                    seed = cfg.seed + round_i * _ROUND_STRIDE + leg
                    scale = cfg.t0_decay**round_i
                    if round_i > 0 and slot == 0 and arm in arm_best:
                        plans.append(
                            LegPlan(
                                key=key,
                                arm=arm,
                                kind="continue",
                                seed=seed,
                                initial_state=arm_best[arm].state,
                                t0_scale=scale,
                            )
                        )
                    elif (
                        round_i > 0
                        and slot == 1
                        and champion is not None
                    ):
                        rep = make_representation(
                            arm,
                            cfg.netlist,
                            allow_rotation=spec.allow_rotation,
                        )
                        if rep.from_floorplan is None:
                            plans.append(
                                LegPlan(
                                    key=key, arm=arm, kind="fresh", seed=seed
                                )
                            )
                        else:
                            plans.append(
                                LegPlan(
                                    key=key,
                                    arm=arm,
                                    kind="migrate",
                                    seed=seed,
                                    initial_state=rep.from_floorplan(
                                        champion.floorplan
                                    ),
                                    t0_scale=scale,
                                )
                            )
                    else:
                        plans.append(
                            LegPlan(key=key, arm=arm, kind="fresh", seed=seed)
                        )
                    leg += 1
            return plans

        for round_i in range(start_round, cfg.rounds):
            if control is not None:
                stop_reason = control.should_stop()
                if stop_reason is not None:
                    checkpoints_written += self._write_checkpoint(
                        snapshot(round_i), control, observer
                    )
                    break
            round_span = (
                observer.span("round", index=round_i, driver=self.name)
                if observer is not None
                else nullcontext()
            )
            with round_span:
                plans = plan_round(round_i)
                if observer is not None:
                    # The planning decisions, on disk before any leg
                    # runs: a crashed round still shows what was dealt.
                    for p in plans:
                        observer.event(
                            "leg_planned",
                            round=round_i,
                            key=p.key,
                            arm=p.arm,
                            kind=p.kind,
                            seed=p.seed,
                            t0_scale=p.t0_scale,
                        )
                        observer.metrics.count(f"slots[{p.arm}]")
                        if p.kind == "migrate":
                            observer.event(
                                "migration",
                                round=round_i,
                                arm=p.arm,
                                seed=p.seed,
                            )
                            observer.metrics.count("champion_migrations")
                by_key = {p.key: p for p in plans}
                keys = [p.key for p in plans]
                reports = {
                    p.key: RunReport(
                        seed=p.seed,
                        label=f"round {round_i} / {p.arm} / {p.kind}",
                    )
                    for p in plans
                }
                results: Dict[int, EngineResult] = {}
                runner = SupervisedRunner(
                    _run_leg,
                    lambda key, attempt, mode: (
                        cfg.netlist,
                        by_key[key].arm,
                        spec,
                        by_key[key].seed,
                        cfg.moves_per_temperature,
                        cfg.schedule,
                        cfg.calibrate,
                        by_key[key].initial_state,
                        by_key[key].t0_scale,
                        key,
                        obs_plan,
                        attempt,
                        mode,
                        cfg.inject_fault,
                    ),
                    timeout=cfg.restart_timeout,
                    max_retries=cfg.max_retries,
                    retry_backoff=cfg.retry_backoff,
                    max_pool_rebuilds=cfg.max_pool_rebuilds,
                    observer=observer,
                )
                workers = 1 if degraded else min(cfg.workers, len(keys))
                rebuilds, deg = runner.run(
                    keys, workers, reports, results, control
                )
                rebuilds_total += rebuilds
                degraded = degraded or deg
                stopped = control is not None and control.stop_requested
                if stopped and len(results) + sum(
                    1 for k in keys if reports[k].status == "failed"
                ) < len(keys):
                    # Partial round: discard it so resume replays the
                    # whole round and allocation decisions stay
                    # bit-identical.
                    for k in keys:
                        if (
                            k not in results
                            and reports[k].status == "pending"
                        ):
                            reports[k].status = "skipped"
                    all_reports.extend(reports[k] for k in keys)
                    stop_reason = control.should_stop() or "stop"
                    checkpoints_written += self._write_checkpoint(
                        snapshot(round_i), control, observer
                    )
                    break
                # Commit the round.
                for k in keys:
                    if k not in results and reports[k].status == "pending":
                        reports[k].status = "failed"
                for k in keys:
                    if k in results:
                        reports[k].attach_result(results[k])
                        if observer is not None:
                            observer.merge_result(
                                results[k],
                                key=k,
                                arm=by_key[k].arm,
                                kind=by_key[k].kind,
                            )
                all_reports.extend(reports[k] for k in keys)
                round_results = [results[k] for k in keys if k in results]
                all_results.extend(round_results)
                for k in keys:
                    if k not in results:
                        continue
                    arm = by_key[k].arm
                    r = results[k]
                    cur = arm_best.get(arm)
                    if cur is None or (r.cost, r.seed) < (
                        cur.cost,
                        cur.seed,
                    ):
                        arm_best[arm] = r
                if not arm_best:
                    raise WorkerFailure(
                        "every portfolio leg failed in round 0: "
                        + "; ".join(reports[k].summary() for k in keys)
                    )
                entry = {
                    "round": round_i,
                    "legs": [
                        {
                            "key": p.key,
                            "arm": p.arm,
                            "kind": p.kind,
                            "seed": p.seed,
                            "t0_scale": p.t0_scale,
                            "delivered": p.key in results,
                            "cost": (
                                results[p.key].cost
                                if p.key in results
                                else None
                            ),
                        }
                        for p in plans
                    ],
                    "arm_best": {
                        a: arm_best[a].cost for a in sorted(arm_best)
                    },
                }
                round_ledger.append(entry)
                if observer is not None:
                    # On-disk twin of ledger["rounds"]: the allocation
                    # outcome survives even if the run dies later.
                    observer.event("allocation", **entry)
                next_round = round_i + 1
                if next_round % cfg.checkpoint_every == 0 or (
                    next_round == cfg.rounds
                ):
                    checkpoints_written += self._write_checkpoint(
                        snapshot(next_round), control, observer
                    )

        if not all_results:
            raise WorkerFailure("portfolio produced no leg results")
        best = global_best()
        assert best is not None
        return SearchResult(
            driver=self.name,
            best=best,
            results=all_results,
            workers=min(cfg.workers, cfg.restarts),
            reports=all_reports,
            degraded=degraded,
            pool_rebuilds=rebuilds_total,
            completed=stop_reason is None,
            stop_reason=stop_reason,
            checkpoints_written=checkpoints_written,
            ledger={"arms": list(arms), "rounds": round_ledger},
        )


register_driver(
    "portfolio",
    PortfolioDriver,
    "representation race with slot reallocation and elite migration",
)
