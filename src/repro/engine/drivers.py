"""Search drivers: strategies that schedule many annealing runs.

PR 3 gave the repo *one* way to spend N annealing runs: independent
best-of-N restarts (:class:`~repro.engine.multistart.MultiStartEngine`).
This module generalizes that into a **search-driver layer**: a driver
is a strategy for scheduling supervised annealing jobs -- which jobs to
run, with what state, and what to do between rounds -- behind one
protocol and one string-keyed registry, mirroring the representation
and backend registries.

Built-in drivers:

``multistart``
    Independent best-of-N restarts over consecutive seeds.  The
    default; byte-for-byte the PR 3 behavior (it delegates to
    :class:`MultiStartEngine`).
``tempering``
    Replica-exchange (parallel tempering): K replicas anneal at fixed
    rungs of a geometric temperature ladder and deterministically
    propose configuration swaps between adjacent rungs each round.
    See :mod:`repro.engine.tempering`.
``portfolio``
    A representation portfolio: Polish / sequence-pair / B*-tree
    annealers race in rounds; worker slots are reallocated to the
    winning representations and elite solutions migrate across
    representations through their ``from_floorplan`` conversion hooks.
    See :mod:`repro.engine.portfolio`.

Every driver runs its jobs through the same
:class:`~repro.engine.supervise.SupervisedRunner` (watchdog, retries,
pool rebuild, degrade-to-sequential), keeps a per-job
:class:`~repro.engine.multistart.RunReport` ledger, produces identical
results sequentially and on a process pool, and -- for the round-based
drivers -- freezes its scheduling state (round index, ladders, swap
RNG, allocation decisions) into a
:class:`~repro.engine.checkpoint.DriverCheckpoint` at round boundaries
so an interrupted run resumes bit-identically.

The registry is lazily populated: ``tempering`` and ``portfolio`` live
in their own modules (which import the engine machinery), so
:func:`make_driver` imports them on first use rather than at import
time -- the registry module stays import-light and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.anneal.schedule import GeometricSchedule
from repro.engine.checkpoint import (
    DriverCheckpoint,
    load_driver_checkpoint,
    save_driver_checkpoint,
)
from repro.engine.engine import EngineResult
from repro.engine.multistart import (
    MultiStartEngine,
    ObjectiveSpec,
    RunReport,
)
from repro.netlist import Netlist

__all__ = [
    "DriverConfig",
    "SearchResult",
    "SearchDriver",
    "MultiStartDriver",
    "register_driver",
    "available_drivers",
    "driver_descriptions",
    "make_driver",
    "resume_driver",
]


@dataclass(frozen=True)
class DriverConfig:
    """Picklable configuration shared by every search driver.

    Not every driver reads every field -- ``representations`` and
    ``rounds`` only matter to the portfolio, ``ladder_ratio`` only to
    tempering -- but one value object keeps the CLI, the checkpoint
    envelope, and the drivers speaking the same language.  The whole
    config is embedded in every :class:`DriverCheckpoint`, so a resumed
    run needs nothing but the file.

    ``restarts`` is the per-round job budget: restart count for
    multistart, replica count for tempering, legs per round for the
    portfolio.  ``rounds`` is how many scheduling rounds the round
    based drivers run (multistart has exactly one).
    """

    netlist: Netlist
    representation: str = "polish"
    representations: Tuple[str, ...] = ("polish", "sp", "btree")
    restarts: int = 4
    rounds: int = 3
    seed: int = 0
    objective_spec: Optional[ObjectiveSpec] = None
    moves_per_temperature: Optional[int] = None
    schedule: Optional[GeometricSchedule] = None
    calibrate: bool = True
    workers: int = 1
    # Tempering: the coldest rung's temperature as a fraction of the
    # hottest (the sampled T0).
    ladder_ratio: float = 0.05
    # Portfolio: per-round decay of the continuation t0_scale -- round
    # r's elite-continuation legs re-anneal at decay**r of T0.
    t0_decay: float = 0.5
    # Supervision knobs, forwarded to SupervisedRunner.
    restart_timeout: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 0.5
    max_pool_rebuilds: int = 2
    # Driver-level checkpoint policy: path to (atomically) rewrite and
    # how many *rounds* between writes.
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    # Test-only fault injection (repro.testing.faults.FaultSpec).
    inject_fault: Any = None
    # Observability: snapshot cadence in temperature steps (0 = off)
    # and how many top congestion densities each snapshot carries.
    progress_every: int = 0
    progress_top_k: int = 3

    def __post_init__(self) -> None:
        if self.restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {self.restarts}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not self.representations:
            raise ValueError("representations must be non-empty")
        if not 0.0 < self.ladder_ratio < 1.0:
            raise ValueError(
                f"ladder_ratio must be in (0, 1), got {self.ladder_ratio}"
            )
        if not 0.0 < self.t0_decay <= 1.0:
            raise ValueError(
                f"t0_decay must be in (0, 1], got {self.t0_decay}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.progress_every < 0:
            raise ValueError(
                f"progress_every must be >= 0, got {self.progress_every}"
            )
        if self.progress_top_k < 0:
            raise ValueError(
                f"progress_top_k must be >= 0, got {self.progress_top_k}"
            )

    def spec(self) -> ObjectiveSpec:
        """The objective spec, defaulting to area+wirelength."""
        return self.objective_spec or ObjectiveSpec()

    def obs_plan(self):
        """The picklable :class:`repro.obs.ObsPlan` shipped to workers
        (``None`` when progress collection is off)."""
        if self.progress_every <= 0:
            return None
        from repro.obs import ObsPlan

        return ObsPlan(
            progress_every=self.progress_every, top_k=self.progress_top_k
        )


@dataclass
class SearchResult:
    """What any search driver returns: winner, field, and ledgers.

    A superset of :class:`~repro.engine.multistart.MultiStartResult`
    labelled with the driver that produced it.  ``ledger`` carries the
    driver's scheduling decisions in JSON-friendly form -- swap
    proposals and outcomes for tempering, per-round slot allocations
    and migrations for the portfolio, empty for multistart -- so runs
    are auditable after the fact.
    """

    driver: str
    best: EngineResult
    results: List[EngineResult] = field(default_factory=list)
    workers: int = 1
    reports: List[RunReport] = field(default_factory=list)
    degraded: bool = False
    pool_rebuilds: int = 0
    completed: bool = True
    stop_reason: Optional[str] = None
    checkpoints_written: int = 0
    ledger: Dict[str, Any] = field(default_factory=dict)

    @property
    def best_cost(self) -> float:
        """The winning run's combined objective cost."""
        return self.best.cost

    @property
    def costs(self) -> List[float]:
        """Every delivered result's best cost, in result order."""
        return [r.cost for r in self.results]

    @property
    def n_failed(self) -> int:
        """Jobs that exhausted their retries without a result."""
        return sum(1 for r in self.reports if r.status == "failed")

    def merged_perf(self):
        """One :class:`~repro.perf.PerfRecorder` folding every
        delivered job's timers and counters, worker-side measurements
        included."""
        from repro.perf import PerfRecorder

        merged = PerfRecorder()
        for r in self.results:
            if r.perf is not None:
                merged.merge(r.perf)
        return merged

    def merged_cache_stats(self) -> Dict[str, Any]:
        """Every delivered job's cache statistics folded per cache name
        (see :func:`~repro.perf.context.merge_cache_stats`)."""
        from repro.perf.context import merge_cache_stats

        merged: Dict[str, Any] = {}
        for r in self.results:
            merged = merge_cache_stats(merged, r.cache_stats)
        return merged


class SearchDriver:
    """Protocol every registered driver implements.

    A driver is constructed from a :class:`DriverConfig` and run once:

    * ``run(control=None, resume_state=None) -> SearchResult`` -- with
      a :class:`~repro.engine.control.RunControl` the driver polls for
      cooperative stops between jobs/rounds and writes
      :class:`~repro.engine.checkpoint.DriverCheckpoint` files per the
      config's policy; ``resume_state`` is the ``state`` payload of a
      loaded checkpoint and makes the run continue bit-identically.

    Registered through :func:`register_driver` as
    ``factory(config) -> driver``; this base class exists for
    documentation and ``isinstance`` convenience, not mechanism --
    drivers only need the ``run`` signature.
    """

    name: str = ""

    def __init__(self, config: DriverConfig):
        self.config = config

    def run(self, control=None, resume_state=None, observer=None) -> SearchResult:
        """Execute the driver's whole schedule; see the class docs.

        ``observer`` (a coordinator-side :class:`repro.obs.RunObserver`)
        receives the driver's scheduling decisions -- swaps,
        allocations, migrations, supervision incidents -- as trace
        events, plus every delivered job's progress and metrics.
        """
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------

    def _write_checkpoint(self, state: Any, control=None, observer=None) -> int:
        """Write one driver checkpoint (no-op without a configured
        path).  Returns how many files this call wrote (0 or 1)."""
        if self.config.checkpoint_path is None:
            return 0
        save_driver_checkpoint(
            self.config.checkpoint_path,
            DriverCheckpoint(
                driver=self.name, config=self.config, state=state
            ),
        )
        if observer is not None:
            observer.event(
                "checkpoint_written", path=str(self.config.checkpoint_path)
            )
            observer.metrics.count("driver_checkpoints")
        return 1


_FACTORIES: Dict[str, Callable[[DriverConfig], SearchDriver]] = {}
_DESCRIPTIONS: Dict[str, str] = {}
_BUILTINS_LOADED = False


def register_driver(
    name: str,
    factory: Callable[[DriverConfig], SearchDriver],
    description: str = "",
) -> None:
    """Register a driver factory under ``name``.

    ``description`` is the one-line summary ``--list-drivers`` prints.
    Raises :class:`ValueError` on a duplicate name.
    """
    if name in _FACTORIES:
        raise ValueError(f"driver {name!r} is already registered")
    _FACTORIES[name] = factory
    _DESCRIPTIONS[name] = description


def _ensure_builtin_drivers() -> None:
    """Import the built-in driver modules exactly once.

    ``tempering`` and ``portfolio`` register themselves on import;
    deferring that import to first registry use keeps this module free
    of cycles (those modules import the engine stack, which imports
    nothing from here).
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.engine.portfolio  # noqa: F401  (self-registers)
    import repro.engine.tempering  # noqa: F401  (self-registers)

    _BUILTINS_LOADED = True


def available_drivers() -> Tuple[str, ...]:
    """The registered driver names, sorted."""
    _ensure_builtin_drivers()
    return tuple(sorted(_FACTORIES))


def driver_descriptions() -> Dict[str, str]:
    """``name -> one-line description`` for every registered driver,
    in sorted name order."""
    _ensure_builtin_drivers()
    return {name: _DESCRIPTIONS.get(name, "") for name in sorted(_FACTORIES)}


def make_driver(name: str, config: DriverConfig) -> SearchDriver:
    """Build the named driver for ``config``."""
    _ensure_builtin_drivers()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_drivers())
        raise ValueError(
            f"unknown driver {name!r}; available: {known}"
        ) from None
    return factory(config)


def resume_driver(
    path: Union[str, "Any"],
    workers: Optional[int] = None,
    rounds: Optional[int] = None,
) -> Tuple[SearchDriver, Any]:
    """Rebuild a driver from a :class:`DriverCheckpoint` file.

    Returns ``(driver, resume_state)``; pass the state to
    ``driver.run(control, resume_state=state)`` to continue the
    interrupted run bit-identically.  ``workers`` optionally overrides
    the checkpointed worker count (parallelism is an execution detail,
    not part of the schedule -- results are identical either way);
    ``rounds`` optionally extends or shortens the remaining schedule
    (the rounds already behind the checkpoint are never replayed).
    """
    checkpoint = load_driver_checkpoint(path)
    config = checkpoint.config
    if workers is not None and workers != config.workers:
        config = replace(config, workers=workers)
    if rounds is not None and rounds != config.rounds:
        config = replace(config, rounds=rounds)
    return make_driver(checkpoint.driver, config), checkpoint.state


class MultiStartDriver(SearchDriver):
    """Independent best-of-N restarts -- the PR 3 default, unchanged.

    Delegates wholesale to :class:`MultiStartEngine`; results are
    bit-identical to calling the engine directly, so existing callers
    and the CLI default keep their exact behavior.  Multistart has no
    cross-job scheduling state, so it takes no driver checkpoints
    (engine-level checkpointing of single runs is unaffected) and
    refuses ``resume_state``.
    """

    name = "multistart"

    def run(self, control=None, resume_state=None, observer=None) -> SearchResult:
        """Run best-of-N restarts and wrap the result as a
        :class:`SearchResult`; bit-identical to the engine."""
        if resume_state is not None:
            raise ValueError(
                "multistart has no driver-level schedule to resume; "
                "use engine checkpoints for single runs"
            )
        cfg = self.config
        engine = MultiStartEngine(
            cfg.netlist,
            representation=cfg.representation,
            restarts=cfg.restarts,
            seed=cfg.seed,
            objective_spec=cfg.objective_spec,
            moves_per_temperature=cfg.moves_per_temperature,
            schedule=cfg.schedule,
            calibrate=cfg.calibrate,
            workers=cfg.workers,
            restart_timeout=cfg.restart_timeout,
            max_retries=cfg.max_retries,
            retry_backoff=cfg.retry_backoff,
            max_pool_rebuilds=cfg.max_pool_rebuilds,
            inject_fault=cfg.inject_fault,
            obs_plan=cfg.obs_plan(),
        )
        result = engine.run(control=control, observer=observer)
        stopped = control is not None and control.stop_requested
        return SearchResult(
            driver=self.name,
            best=result.best,
            results=result.results,
            workers=result.workers,
            reports=result.reports,
            degraded=result.degraded,
            pool_rebuilds=result.pool_rebuilds,
            completed=not stopped,
            stop_reason=control.should_stop() if stopped else None,
            ledger={},
        )


register_driver(
    "multistart",
    MultiStartDriver,
    "independent best-of-N restarts over consecutive seeds (default)",
)
