"""Multi-start annealing: N supervised restarts, sequential or parallel.

Annealing is stochastic; the standard variance-reduction move is
best-of-N over distinct seeds.  :class:`MultiStartEngine` runs N
:class:`~repro.engine.engine.AnnealEngine` restarts -- sequentially or
on a process pool -- and returns the best result plus every restart's
:class:`~repro.engine.engine.EngineResult`.

Determinism: every restart builds a *fresh* objective and a *fresh*
:class:`~repro.perf.context.CacheContext` from a picklable
:class:`ObjectiveSpec`, and caches are value-transparent (memo hits
return exactly what recomputation would), so restart ``i`` computes
bit-identical results whether it runs in-process, on a pool, or alone.
Parallel best-of-N therefore equals sequential best-of-N for the same
seeds, and the winner is the lowest cost with ties broken by lowest
seed.

Supervision: pool workers are not trusted to come home.  Each restart
gets a wall-clock budget (``restart_timeout``) and a bounded retry
allowance (``max_retries``) with exponential backoff; a crashed worker
(:class:`~concurrent.futures.process.BrokenProcessPool`) or a hung one
(timeout) costs the pool, which is torn down -- hung processes are
terminated, not waited on -- and rebuilt at most ``max_pool_rebuilds``
times before the engine *degrades to sequential execution* for the
remaining seeds.  The machinery itself lives in
:class:`~repro.engine.supervise.SupervisedRunner` (every search driver
reuses it); this module supplies the restart job function and the
per-seed :class:`RunReport` ledger.
:class:`~repro.errors.WorkerFailure` is raised only when not a single
restart succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.anneal.cost import FloorplanObjective
from repro.anneal.schedule import GeometricSchedule
from repro.congestion.model import IrregularGridModel
from repro.engine.engine import AnnealEngine, EngineResult
from repro.engine.supervise import SupervisedRunner
from repro.errors import WorkerFailure
from repro.netlist import Netlist
from repro.perf.context import CacheContext

__all__ = [
    "ObjectiveSpec",
    "RestartFailure",
    "RunReport",
    "MultiStartResult",
    "MultiStartEngine",
]


@dataclass(frozen=True)
class ObjectiveSpec:
    """Picklable recipe for one restart's objective.

    Process-pool restarts cannot ship a live objective (its cache
    context holds locks) or a closure; they ship this value object and
    :meth:`build` it inside the worker against the restart's own
    context.  ``gamma > 0`` builds an
    :class:`~repro.congestion.model.IrregularGridModel` at
    ``congestion_grid_size``.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 0.0
    congestion_grid_size: float = 30.0
    pin_grid_size: Optional[float] = None
    allow_rotation: bool = True
    incremental: bool = True
    strict_incremental: bool = False
    # Compute-backend *name* (kept a string so the spec stays
    # picklable); each worker resolves it -- and pays JIT warm-up --
    # in its own process.  None means numpy.
    backend: Optional[str] = None

    def build(
        self, netlist: Netlist, cache_context: CacheContext
    ) -> FloorplanObjective:
        """Construct the objective (and congestion model, if any)
        against ``cache_context``."""
        model = None
        if self.gamma > 0:
            model = IrregularGridModel(
                self.congestion_grid_size,
                use_cache=self.incremental,
                cache_context=cache_context if self.incremental else None,
            )
        return FloorplanObjective(
            netlist,
            alpha=self.alpha,
            beta=self.beta,
            gamma=self.gamma,
            congestion_model=model,
            pin_grid_size=self.pin_grid_size,
            allow_rotation=self.allow_rotation,
            incremental=self.incremental,
            strict_incremental=self.strict_incremental,
            cache_context=cache_context,
            backend=self.backend,
        )


def _run_restart(
    netlist: Netlist,
    representation: str,
    spec: ObjectiveSpec,
    seed: int,
    moves_per_temperature: Optional[int],
    schedule: Optional[GeometricSchedule],
    calibrate: bool,
    obs_plan=None,
    attempt: int = 0,
    mode: str = "sequential",
    fault=None,
    control=None,
) -> EngineResult:
    """One restart, self-contained: fresh context, fresh objective.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; also
    the sequential path, so both execution modes run literally the same
    code.  ``fault`` is the test-only injection hook
    (:class:`~repro.testing.faults.FaultSpec`); it fires only when its
    (seed, attempt, mode) target matches, so a supervised retry of an
    injected failure deterministically succeeds.  ``control`` rides
    along only in sequential mode (it holds a lock and cannot cross a
    process boundary) and never touches the RNG stream.

    ``obs_plan`` (a picklable :class:`repro.obs.ObsPlan`) makes the
    restart collect progress snapshots and a metrics registry that come
    home on the result; the in-worker observer carries no tracer and
    never touches the RNG stream, so the walk is bit-identical either
    way.
    """
    if fault is not None:
        fault.maybe_fire(seed=seed, attempt=attempt, mode=mode)
    context = CacheContext()
    engine = AnnealEngine(
        netlist,
        representation=representation,
        objective=spec.build(netlist, context),
        objective_spec=spec,
        seed=seed,
        moves_per_temperature=moves_per_temperature,
        schedule=schedule,
        calibrate=calibrate,
    )
    observer = obs_plan.build_observer() if obs_plan is not None else None
    return engine.run(control=control, observer=observer)


@dataclass
class RestartFailure:
    """One failed attempt of one restart."""

    attempt: int
    kind: str  # "crash" / "timeout" / "error"
    message: str

    def to_json(self) -> Dict[str, Any]:
        """A lossless JSON-serializable image of this failure.

        Every field is already a JSON scalar; exception messages pass
        through verbatim (they are strings by construction -- the
        supervisor formats ``type(exc).__name__: exc`` at record time).
        """
        return {
            "attempt": self.attempt,
            "kind": self.kind,
            "message": self.message,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RestartFailure":
        """Rebuild a failure from :meth:`to_json` output."""
        return cls(
            attempt=int(data["attempt"]),
            kind=str(data["kind"]),
            message=str(data["message"]),
        )


@dataclass
class RunReport:
    """Supervision ledger of one seeded restart (or driver job).

    ``status`` ends as ``"ok"`` (result delivered -- possibly stopped
    early by a cooperative stop, see the result's own ``completed``),
    ``"failed"`` (retries exhausted), or ``"skipped"`` (a stop request
    arrived before the restart ran).  ``attempts`` counts every try,
    including the successful one; ``failures`` names each failed try.
    ``label`` is free-form context a search driver attaches to a job
    (e.g. ``"round 2 / btree / slot 1"``); plain multistart restarts
    leave it ``None``.

    ``cache_stats`` and ``jit_compile_seconds`` are the delivered
    result's worker-side accounting (per-cache hit/miss snapshots as
    plain dicts, and the one-off JIT warm-up time), attached by
    :meth:`attach_result` -- before PR 8 these were measured inside
    worker processes and silently dropped at the pickle boundary.
    """

    seed: int
    status: str = "pending"
    attempts: int = 0
    mode: Optional[str] = None
    failures: List[RestartFailure] = field(default_factory=list)
    label: Optional[str] = None
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    jit_compile_seconds: float = 0.0

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def attach_result(self, result: Any) -> None:
        """Record a delivered result's worker-side accounting.

        Pulls the per-cache statistics (as JSON-ready dicts) and the
        JIT warm-up seconds off an :class:`EngineResult`; safe on any
        result-shaped object -- missing pieces leave the defaults.
        """
        stats = getattr(result, "cache_stats", None) or {}
        self.cache_stats = {
            name: s.to_json() if hasattr(s, "to_json") else dict(s)
            for name, s in stats.items()
        }
        perf = getattr(result, "perf", None)
        if perf is not None:
            jit = perf.timers.get("jit_compile_seconds")
            if jit is not None:
                self.jit_compile_seconds = jit.seconds

    def record_failure(self, kind: str, message: str) -> None:
        """Log one failed attempt and advance the attempt counter."""
        self.failures.append(
            RestartFailure(attempt=self.attempts, kind=kind, message=message)
        )
        self.attempts += 1

    def summary(self) -> str:
        """One-line human-readable account of this restart's attempts."""
        parts = [f"seed {self.seed}: {self.status}"]
        if self.label:
            parts.append(f"({self.label})")
        if self.mode:
            parts.append(self.mode)
        parts.append(f"{self.attempts} attempt(s)")
        for f in self.failures:
            parts.append(f"[attempt {f.attempt}: {f.kind}: {f.message}]")
        return " ".join(parts)

    def to_json(self) -> Dict[str, Any]:
        """A lossless JSON-serializable image of this report.

        ``RunReport.from_json(report.to_json()) == report`` for every
        reachable report, and the payload survives
        :func:`~repro.ioutil.atomic_write_json` unchanged -- no field
        is stringified lossily (failures stay structured records, never
        the flattened :meth:`summary` line).
        """
        return {
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "mode": self.mode,
            "label": self.label,
            "failures": [f.to_json() for f in self.failures],
            "cache_stats": {
                name: dict(s) for name, s in self.cache_stats.items()
            },
            "jit_compile_seconds": self.jit_compile_seconds,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_json` output."""
        mode = data.get("mode")
        label = data.get("label")
        return cls(
            seed=int(data["seed"]),
            status=str(data["status"]),
            attempts=int(data["attempts"]),
            mode=None if mode is None else str(mode),
            failures=[
                RestartFailure.from_json(f) for f in data.get("failures", ())
            ],
            label=None if label is None else str(label),
            cache_stats={
                name: dict(s)
                for name, s in data.get("cache_stats", {}).items()
            },
            jit_compile_seconds=float(data.get("jit_compile_seconds", 0.0)),
        )


@dataclass
class MultiStartResult:
    """Every restart's result plus the chosen winner."""

    best: EngineResult
    results: List[EngineResult] = field(default_factory=list)
    workers: int = 1
    reports: List[RunReport] = field(default_factory=list)
    degraded: bool = False
    pool_rebuilds: int = 0

    @property
    def best_cost(self) -> float:
        """The winning restart's combined objective cost."""
        return self.best.cost

    @property
    def costs(self) -> List[float]:
        """Every completed restart's best cost, in seed order."""
        return [r.cost for r in self.results]

    @property
    def n_failed(self) -> int:
        """Restarts that exhausted their retries without a result."""
        return sum(1 for r in self.reports if r.status == "failed")

    def merged_perf(self):
        """One :class:`~repro.perf.PerfRecorder` folding every
        restart's timers and counters -- including those measured
        inside pool workers, which used to be dropped at the pickle
        boundary."""
        from repro.perf import PerfRecorder

        merged = PerfRecorder()
        for r in self.results:
            if r.perf is not None:
                merged.merge(r.perf)
        return merged

    def merged_cache_stats(self) -> Dict[str, Any]:
        """Every restart's cache statistics folded per cache name (see
        :func:`~repro.perf.context.merge_cache_stats`)."""
        from repro.perf.context import merge_cache_stats

        merged: Dict[str, Any] = {}
        for r in self.results:
            merged = merge_cache_stats(merged, r.cache_stats)
        return merged


class MultiStartEngine:
    """Best-of-N annealing over seeds ``seed .. seed + restarts - 1``.

    Parameters
    ----------
    netlist:
        The circuit.
    representation:
        Registered representation name (process-pool restarts rebuild
        the representation in the worker, so a prebuilt
        :class:`Representation` is not accepted here).
    restarts:
        Number of independent seeded runs.
    seed:
        First seed; restart ``i`` uses ``seed + i``.
    objective_spec:
        The :class:`ObjectiveSpec` every restart builds its objective
        from; defaults to area+wirelength.
    moves_per_temperature, schedule, calibrate:
        Forwarded to every restart's engine.
    workers:
        1 runs restarts sequentially in-process; ``> 1`` uses a
        :class:`~concurrent.futures.ProcessPoolExecutor` with that many
        workers.  Results are bit-identical either way.
    restart_timeout:
        Wall-clock seconds a pool restart may take before it is deemed
        hung; the pool is killed (hung workers terminated) and the
        restart retried.  ``None`` disables the watchdog.  Sequential
        restarts cannot be preempted and ignore it.
    max_retries:
        Extra attempts a failed restart gets (crash, timeout, or
        exception) before its report goes ``"failed"``.
    retry_backoff:
        Base of the exponential backoff slept before retry ``k``
        (``retry_backoff * 2**(k-1)`` seconds); 0 disables sleeping.
    max_pool_rebuilds:
        Pool teardowns tolerated before degrading to sequential
        execution for the remaining seeds.
    inject_fault:
        Test-only :class:`~repro.testing.faults.FaultSpec` shipped to
        every restart; fires only on its (seed, attempt, mode) target.
    obs_plan:
        Picklable :class:`repro.obs.ObsPlan` shipped to every restart;
        workers collect progress snapshots and metrics that ride home
        on their results (``None`` / a disabled plan collects nothing).
    """

    def __init__(
        self,
        netlist: Netlist,
        representation: str = "polish",
        restarts: int = 4,
        seed: int = 0,
        objective_spec: Optional[ObjectiveSpec] = None,
        moves_per_temperature: Optional[int] = None,
        schedule: Optional[GeometricSchedule] = None,
        calibrate: bool = True,
        workers: int = 1,
        restart_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        max_pool_rebuilds: int = 2,
        inject_fault=None,
        obs_plan=None,
    ):
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if restart_timeout is not None and restart_timeout <= 0:
            raise ValueError(
                f"restart_timeout must be positive, got {restart_timeout}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.netlist = netlist
        self.representation = representation
        self.restarts = int(restarts)
        self.seed = int(seed)
        self.objective_spec = objective_spec or ObjectiveSpec()
        self.moves_per_temperature = moves_per_temperature
        self.schedule = schedule
        self.calibrate = bool(calibrate)
        self.workers = int(workers)
        self.restart_timeout = restart_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.inject_fault = inject_fault
        self.obs_plan = obs_plan

    @property
    def seeds(self) -> List[int]:
        """The restart seeds, in run order."""
        return [self.seed + i for i in range(self.restarts)]

    def _job(self, seed: int, attempt: int, mode: str) -> tuple:
        return (
            self.netlist,
            self.representation,
            self.objective_spec,
            seed,
            self.moves_per_temperature,
            self.schedule,
            self.calibrate,
            self.obs_plan,
            attempt,
            mode,
            self.inject_fault,
        )

    def _runner(self, observer=None) -> SupervisedRunner:
        """The supervision machinery, parameterized for restarts."""
        return SupervisedRunner(
            _run_restart,
            self._job,
            timeout=self.restart_timeout,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            max_pool_rebuilds=self.max_pool_rebuilds,
            observer=observer,
        )

    def run(self, control=None, observer=None) -> MultiStartResult:
        """Run every restart under supervision and return best-of-N.

        ``control`` (a :class:`~repro.engine.control.RunControl`)
        enables cooperative stop: pending restarts are skipped, the
        in-flight sequential restart winds down with best-so-far, and
        whatever finished is still ranked and returned.

        ``observer`` (a coordinator-side :class:`repro.obs.RunObserver`)
        receives supervision incidents as they happen and, per delivered
        restart, a ``restart_complete`` event plus the worker's progress
        snapshots and metrics (folded via ``merge_result``).

        Raises :class:`~repro.errors.WorkerFailure` only when *no*
        restart delivers a result.
        """
        reports = {s: RunReport(seed=s) for s in self.seeds}
        results: Dict[int, EngineResult] = {}
        workers = min(self.workers, self.restarts)
        rebuilds, degraded = self._runner(observer).run(
            self.seeds, workers, reports, results, control
        )
        for s in self.seeds:
            if s not in results and reports[s].status == "pending":
                stopped = control is not None and control.stop_requested
                reports[s].status = "skipped" if stopped else "failed"
        for s in self.seeds:
            if s in results:
                reports[s].attach_result(results[s])
                if observer is not None:
                    observer.merge_result(results[s], seed=s)
                    observer.event(
                        "restart_complete",
                        seed=s,
                        cost=results[s].cost,
                        n_moves=results[s].n_moves,
                        representation=results[s].representation,
                    )
        if not results:
            raise WorkerFailure(
                "every restart failed: "
                + "; ".join(reports[s].summary() for s in self.seeds)
            )
        ordered = [results[s] for s in self.seeds if s in results]
        best = min(ordered, key=lambda r: (r.cost, r.seed))
        return MultiStartResult(
            best=best,
            results=ordered,
            workers=workers,
            reports=[reports[s] for s in self.seeds],
            degraded=degraded,
            pool_rebuilds=rebuilds,
        )
