"""Multi-start annealing: N seeded restarts, sequential or parallel.

Annealing is stochastic; the standard variance-reduction move is
best-of-N over distinct seeds.  :class:`MultiStartEngine` runs N
:class:`~repro.engine.engine.AnnealEngine` restarts -- sequentially or
on a process pool -- and returns the best result plus every restart's
:class:`~repro.engine.engine.EngineResult`.

Determinism: every restart builds a *fresh* objective and a *fresh*
:class:`~repro.perf.context.CacheContext` from a picklable
:class:`ObjectiveSpec`, and caches are value-transparent (memo hits
return exactly what recomputation would), so restart ``i`` computes
bit-identical results whether it runs in-process, on a pool, or alone.
Parallel best-of-N therefore equals sequential best-of-N for the same
seeds, and the winner is the lowest cost with ties broken by lowest
seed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional

from repro.anneal.cost import FloorplanObjective
from repro.anneal.schedule import GeometricSchedule
from repro.congestion.model import IrregularGridModel
from repro.engine.engine import AnnealEngine, EngineResult
from repro.netlist import Netlist
from repro.perf.context import CacheContext

__all__ = ["ObjectiveSpec", "MultiStartResult", "MultiStartEngine"]


@dataclass(frozen=True)
class ObjectiveSpec:
    """Picklable recipe for one restart's objective.

    Process-pool restarts cannot ship a live objective (its cache
    context holds locks) or a closure; they ship this value object and
    :meth:`build` it inside the worker against the restart's own
    context.  ``gamma > 0`` builds an
    :class:`~repro.congestion.model.IrregularGridModel` at
    ``congestion_grid_size``.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 0.0
    congestion_grid_size: float = 30.0
    pin_grid_size: Optional[float] = None
    allow_rotation: bool = True
    incremental: bool = True
    strict_incremental: bool = False

    def build(
        self, netlist: Netlist, cache_context: CacheContext
    ) -> FloorplanObjective:
        """Construct the objective (and congestion model, if any)
        against ``cache_context``."""
        model = None
        if self.gamma > 0:
            model = IrregularGridModel(
                self.congestion_grid_size,
                use_cache=self.incremental,
                cache_context=cache_context if self.incremental else None,
            )
        return FloorplanObjective(
            netlist,
            alpha=self.alpha,
            beta=self.beta,
            gamma=self.gamma,
            congestion_model=model,
            pin_grid_size=self.pin_grid_size,
            allow_rotation=self.allow_rotation,
            incremental=self.incremental,
            strict_incremental=self.strict_incremental,
            cache_context=cache_context,
        )


def _run_restart(
    netlist: Netlist,
    representation: str,
    spec: ObjectiveSpec,
    seed: int,
    moves_per_temperature: Optional[int],
    schedule: Optional[GeometricSchedule],
    calibrate: bool,
) -> EngineResult:
    """One restart, self-contained: fresh context, fresh objective.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; also
    the sequential path, so both execution modes run literally the same
    code.
    """
    context = CacheContext()
    engine = AnnealEngine(
        netlist,
        representation=representation,
        objective=spec.build(netlist, context),
        seed=seed,
        moves_per_temperature=moves_per_temperature,
        schedule=schedule,
        calibrate=calibrate,
    )
    return engine.run()


@dataclass
class MultiStartResult:
    """Every restart's result plus the chosen winner."""

    best: EngineResult
    results: List[EngineResult] = field(default_factory=list)
    workers: int = 1

    @property
    def best_cost(self) -> float:
        """The winning restart's combined objective cost."""
        return self.best.cost

    @property
    def costs(self) -> List[float]:
        """Every restart's best cost, in seed order."""
        return [r.cost for r in self.results]


class MultiStartEngine:
    """Best-of-N annealing over seeds ``seed .. seed + restarts - 1``.

    Parameters
    ----------
    netlist:
        The circuit.
    representation:
        Registered representation name (process-pool restarts rebuild
        the representation in the worker, so a prebuilt
        :class:`Representation` is not accepted here).
    restarts:
        Number of independent seeded runs.
    seed:
        First seed; restart ``i`` uses ``seed + i``.
    objective_spec:
        The :class:`ObjectiveSpec` every restart builds its objective
        from; defaults to area+wirelength.
    moves_per_temperature, schedule, calibrate:
        Forwarded to every restart's engine.
    workers:
        1 runs restarts sequentially in-process; ``> 1`` uses a
        :class:`~concurrent.futures.ProcessPoolExecutor` with that many
        workers.  Results are bit-identical either way.
    """

    def __init__(
        self,
        netlist: Netlist,
        representation: str = "polish",
        restarts: int = 4,
        seed: int = 0,
        objective_spec: Optional[ObjectiveSpec] = None,
        moves_per_temperature: Optional[int] = None,
        schedule: Optional[GeometricSchedule] = None,
        calibrate: bool = True,
        workers: int = 1,
    ):
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.netlist = netlist
        self.representation = representation
        self.restarts = int(restarts)
        self.seed = int(seed)
        self.objective_spec = objective_spec or ObjectiveSpec()
        self.moves_per_temperature = moves_per_temperature
        self.schedule = schedule
        self.calibrate = bool(calibrate)
        self.workers = int(workers)

    @property
    def seeds(self) -> List[int]:
        """The restart seeds, in run order."""
        return [self.seed + i for i in range(self.restarts)]

    def run(self) -> MultiStartResult:
        """Run every restart and return best-of-N."""
        jobs = [
            (
                self.netlist,
                self.representation,
                self.objective_spec,
                s,
                self.moves_per_temperature,
                self.schedule,
                self.calibrate,
            )
            for s in self.seeds
        ]
        workers = min(self.workers, self.restarts)
        if workers <= 1:
            results = [_run_restart(*job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_run_restart, *job) for job in jobs]
                results = [f.result() for f in futures]
        best = min(results, key=lambda r: (r.cost, r.seed))
        return MultiStartResult(best=best, results=results, workers=workers)
