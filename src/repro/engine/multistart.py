"""Multi-start annealing: N supervised restarts, sequential or parallel.

Annealing is stochastic; the standard variance-reduction move is
best-of-N over distinct seeds.  :class:`MultiStartEngine` runs N
:class:`~repro.engine.engine.AnnealEngine` restarts -- sequentially or
on a process pool -- and returns the best result plus every restart's
:class:`~repro.engine.engine.EngineResult`.

Determinism: every restart builds a *fresh* objective and a *fresh*
:class:`~repro.perf.context.CacheContext` from a picklable
:class:`ObjectiveSpec`, and caches are value-transparent (memo hits
return exactly what recomputation would), so restart ``i`` computes
bit-identical results whether it runs in-process, on a pool, or alone.
Parallel best-of-N therefore equals sequential best-of-N for the same
seeds, and the winner is the lowest cost with ties broken by lowest
seed.

Supervision: pool workers are not trusted to come home.  Each restart
gets a wall-clock budget (``restart_timeout``) and a bounded retry
allowance (``max_retries``) with exponential backoff; a crashed worker
(:class:`~concurrent.futures.process.BrokenProcessPool`) or a hung one
(timeout) costs the pool, which is torn down -- hung processes are
terminated, not waited on -- and rebuilt at most ``max_pool_rebuilds``
times before the engine *degrades to sequential execution* for the
remaining seeds.  Every attempt, failure, and recovery is recorded in
a per-seed :class:`RunReport`; :class:`~repro.errors.WorkerFailure` is
raised only when not a single restart succeeds.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.anneal.cost import FloorplanObjective
from repro.anneal.schedule import GeometricSchedule
from repro.congestion.model import IrregularGridModel
from repro.engine.engine import AnnealEngine, EngineResult
from repro.errors import WorkerFailure
from repro.netlist import Netlist
from repro.perf.context import CacheContext

__all__ = [
    "ObjectiveSpec",
    "RestartFailure",
    "RunReport",
    "MultiStartResult",
    "MultiStartEngine",
]


@dataclass(frozen=True)
class ObjectiveSpec:
    """Picklable recipe for one restart's objective.

    Process-pool restarts cannot ship a live objective (its cache
    context holds locks) or a closure; they ship this value object and
    :meth:`build` it inside the worker against the restart's own
    context.  ``gamma > 0`` builds an
    :class:`~repro.congestion.model.IrregularGridModel` at
    ``congestion_grid_size``.
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 0.0
    congestion_grid_size: float = 30.0
    pin_grid_size: Optional[float] = None
    allow_rotation: bool = True
    incremental: bool = True
    strict_incremental: bool = False
    # Compute-backend *name* (kept a string so the spec stays
    # picklable); each worker resolves it -- and pays JIT warm-up --
    # in its own process.  None means numpy.
    backend: Optional[str] = None

    def build(
        self, netlist: Netlist, cache_context: CacheContext
    ) -> FloorplanObjective:
        """Construct the objective (and congestion model, if any)
        against ``cache_context``."""
        model = None
        if self.gamma > 0:
            model = IrregularGridModel(
                self.congestion_grid_size,
                use_cache=self.incremental,
                cache_context=cache_context if self.incremental else None,
            )
        return FloorplanObjective(
            netlist,
            alpha=self.alpha,
            beta=self.beta,
            gamma=self.gamma,
            congestion_model=model,
            pin_grid_size=self.pin_grid_size,
            allow_rotation=self.allow_rotation,
            incremental=self.incremental,
            strict_incremental=self.strict_incremental,
            cache_context=cache_context,
            backend=self.backend,
        )


def _run_restart(
    netlist: Netlist,
    representation: str,
    spec: ObjectiveSpec,
    seed: int,
    moves_per_temperature: Optional[int],
    schedule: Optional[GeometricSchedule],
    calibrate: bool,
    attempt: int = 0,
    mode: str = "sequential",
    fault=None,
    control=None,
) -> EngineResult:
    """One restart, self-contained: fresh context, fresh objective.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; also
    the sequential path, so both execution modes run literally the same
    code.  ``fault`` is the test-only injection hook
    (:class:`~repro.testing.faults.FaultSpec`); it fires only when its
    (seed, attempt, mode) target matches, so a supervised retry of an
    injected failure deterministically succeeds.  ``control`` rides
    along only in sequential mode (it holds a lock and cannot cross a
    process boundary) and never touches the RNG stream.
    """
    if fault is not None:
        fault.maybe_fire(seed=seed, attempt=attempt, mode=mode)
    context = CacheContext()
    engine = AnnealEngine(
        netlist,
        representation=representation,
        objective=spec.build(netlist, context),
        objective_spec=spec,
        seed=seed,
        moves_per_temperature=moves_per_temperature,
        schedule=schedule,
        calibrate=calibrate,
    )
    return engine.run(control=control)


@dataclass
class RestartFailure:
    """One failed attempt of one restart."""

    attempt: int
    kind: str  # "crash" / "timeout" / "error"
    message: str


@dataclass
class RunReport:
    """Supervision ledger of one seeded restart.

    ``status`` ends as ``"ok"`` (result delivered -- possibly stopped
    early by a cooperative stop, see the result's own ``completed``),
    ``"failed"`` (retries exhausted), or ``"skipped"`` (a stop request
    arrived before the restart ran).  ``attempts`` counts every try,
    including the successful one; ``failures`` names each failed try.
    """

    seed: int
    status: str = "pending"
    attempts: int = 0
    mode: Optional[str] = None
    failures: List[RestartFailure] = field(default_factory=list)

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def record_failure(self, kind: str, message: str) -> None:
        """Log one failed attempt and advance the attempt counter."""
        self.failures.append(
            RestartFailure(attempt=self.attempts, kind=kind, message=message)
        )
        self.attempts += 1

    def summary(self) -> str:
        """One-line human-readable account of this restart's attempts."""
        parts = [f"seed {self.seed}: {self.status}"]
        if self.mode:
            parts.append(self.mode)
        parts.append(f"{self.attempts} attempt(s)")
        for f in self.failures:
            parts.append(f"[attempt {f.attempt}: {f.kind}: {f.message}]")
        return " ".join(parts)


@dataclass
class MultiStartResult:
    """Every restart's result plus the chosen winner."""

    best: EngineResult
    results: List[EngineResult] = field(default_factory=list)
    workers: int = 1
    reports: List[RunReport] = field(default_factory=list)
    degraded: bool = False
    pool_rebuilds: int = 0

    @property
    def best_cost(self) -> float:
        """The winning restart's combined objective cost."""
        return self.best.cost

    @property
    def costs(self) -> List[float]:
        """Every completed restart's best cost, in seed order."""
        return [r.cost for r in self.results]

    @property
    def n_failed(self) -> int:
        """Restarts that exhausted their retries without a result."""
        return sum(1 for r in self.reports if r.status == "failed")


class MultiStartEngine:
    """Best-of-N annealing over seeds ``seed .. seed + restarts - 1``.

    Parameters
    ----------
    netlist:
        The circuit.
    representation:
        Registered representation name (process-pool restarts rebuild
        the representation in the worker, so a prebuilt
        :class:`Representation` is not accepted here).
    restarts:
        Number of independent seeded runs.
    seed:
        First seed; restart ``i`` uses ``seed + i``.
    objective_spec:
        The :class:`ObjectiveSpec` every restart builds its objective
        from; defaults to area+wirelength.
    moves_per_temperature, schedule, calibrate:
        Forwarded to every restart's engine.
    workers:
        1 runs restarts sequentially in-process; ``> 1`` uses a
        :class:`~concurrent.futures.ProcessPoolExecutor` with that many
        workers.  Results are bit-identical either way.
    restart_timeout:
        Wall-clock seconds a pool restart may take before it is deemed
        hung; the pool is killed (hung workers terminated) and the
        restart retried.  ``None`` disables the watchdog.  Sequential
        restarts cannot be preempted and ignore it.
    max_retries:
        Extra attempts a failed restart gets (crash, timeout, or
        exception) before its report goes ``"failed"``.
    retry_backoff:
        Base of the exponential backoff slept before retry ``k``
        (``retry_backoff * 2**(k-1)`` seconds); 0 disables sleeping.
    max_pool_rebuilds:
        Pool teardowns tolerated before degrading to sequential
        execution for the remaining seeds.
    inject_fault:
        Test-only :class:`~repro.testing.faults.FaultSpec` shipped to
        every restart; fires only on its (seed, attempt, mode) target.
    """

    def __init__(
        self,
        netlist: Netlist,
        representation: str = "polish",
        restarts: int = 4,
        seed: int = 0,
        objective_spec: Optional[ObjectiveSpec] = None,
        moves_per_temperature: Optional[int] = None,
        schedule: Optional[GeometricSchedule] = None,
        calibrate: bool = True,
        workers: int = 1,
        restart_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        max_pool_rebuilds: int = 2,
        inject_fault=None,
    ):
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if restart_timeout is not None and restart_timeout <= 0:
            raise ValueError(
                f"restart_timeout must be positive, got {restart_timeout}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.netlist = netlist
        self.representation = representation
        self.restarts = int(restarts)
        self.seed = int(seed)
        self.objective_spec = objective_spec or ObjectiveSpec()
        self.moves_per_temperature = moves_per_temperature
        self.schedule = schedule
        self.calibrate = bool(calibrate)
        self.workers = int(workers)
        self.restart_timeout = restart_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        self.inject_fault = inject_fault

    @property
    def seeds(self) -> List[int]:
        """The restart seeds, in run order."""
        return [self.seed + i for i in range(self.restarts)]

    def _job(self, seed: int, attempt: int, mode: str) -> tuple:
        return (
            self.netlist,
            self.representation,
            self.objective_spec,
            seed,
            self.moves_per_temperature,
            self.schedule,
            self.calibrate,
            attempt,
            mode,
            self.inject_fault,
        )

    def _max_attempts(self) -> int:
        return 1 + self.max_retries

    def _backoff(self, failed_attempts: int) -> None:
        if self.retry_backoff > 0 and failed_attempts > 0:
            time.sleep(self.retry_backoff * (2.0 ** (failed_attempts - 1)))

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on wedged workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)

    def _run_pool(
        self,
        workers: int,
        reports: Dict[int, RunReport],
        results: Dict[int, EngineResult],
        control,
    ) -> tuple:
        """Supervised pool execution.  Returns (rebuilds, degraded)."""
        rebuilds = 0
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while True:
                if control is not None and control.should_stop():
                    break
                todo = [
                    s
                    for s in self.seeds
                    if s not in results
                    and reports[s].attempts < self._max_attempts()
                ]
                if not todo:
                    break
                if rebuilds > self.max_pool_rebuilds:
                    return rebuilds, True  # degrade to sequential
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=workers)
                futures = {
                    s: pool.submit(
                        _run_restart, *self._job(s, reports[s].attempts, "pool")
                    )
                    for s in todo
                }
                pool_died = False
                for s in todo:
                    if s in results:
                        continue
                    try:
                        result = futures[s].result(timeout=self.restart_timeout)
                    except _FuturesTimeout:
                        reports[s].record_failure(
                            "timeout",
                            f"no result within {self.restart_timeout}s; "
                            f"pool killed",
                        )
                        pool_died = True
                        break
                    except BrokenProcessPool as exc:
                        # The dying worker takes the whole pool down and
                        # the executor cannot say which worker it was:
                        # harvest whatever did finish, then charge one
                        # attempt to every in-flight seed.  The culprit
                        # among them advances past its faulting attempt;
                        # the innocents just retry.
                        for t in todo:
                            if t in results:
                                continue
                            fut = futures[t]
                            harvested = False
                            if fut.done() and not fut.cancelled():
                                try:
                                    results[t] = fut.result(timeout=0)
                                except Exception:
                                    pass
                                else:
                                    reports[t].status = "ok"
                                    reports[t].mode = "pool"
                                    reports[t].attempts += 1
                                    harvested = True
                            if not harvested:
                                reports[t].record_failure(
                                    "crash",
                                    f"worker process died with the pool: "
                                    f"{exc}",
                                )
                        pool_died = True
                        break
                    except Exception as exc:
                        # The worker survived and reported a real
                        # exception; the pool is still healthy.
                        reports[s].record_failure(
                            "error", f"{type(exc).__name__}: {exc}"
                        )
                        continue
                    else:
                        results[s] = result
                        reports[s].status = "ok"
                        reports[s].mode = "pool"
                        reports[s].attempts += 1
                if pool_died:
                    self._kill_pool(pool)
                    pool = None
                    rebuilds += 1
                failed = max(
                    (r.attempts for r in reports.values() if r.failures),
                    default=0,
                )
                if any(
                    s not in results
                    and reports[s].attempts < self._max_attempts()
                    for s in todo
                ):
                    self._backoff(failed)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return rebuilds, False

    def _run_sequential(
        self,
        reports: Dict[int, RunReport],
        results: Dict[int, EngineResult],
        control,
    ) -> None:
        """In-process execution with the same retry accounting."""
        for s in self.seeds:
            if s in results:
                continue
            while (
                s not in results
                and reports[s].attempts < self._max_attempts()
            ):
                if control is not None and control.should_stop():
                    if reports[s].status == "pending":
                        reports[s].status = "skipped"
                    return
                self._backoff(len(reports[s].failures))
                try:
                    results[s] = _run_restart(
                        *self._job(s, reports[s].attempts, "sequential"),
                        control=control,
                    )
                except Exception as exc:
                    reports[s].record_failure(
                        "error", f"{type(exc).__name__}: {exc}"
                    )
                else:
                    reports[s].status = "ok"
                    reports[s].mode = "sequential"
                    reports[s].attempts += 1

    def run(self, control=None) -> MultiStartResult:
        """Run every restart under supervision and return best-of-N.

        ``control`` (a :class:`~repro.engine.control.RunControl`)
        enables cooperative stop: pending restarts are skipped, the
        in-flight sequential restart winds down with best-so-far, and
        whatever finished is still ranked and returned.

        Raises :class:`~repro.errors.WorkerFailure` only when *no*
        restart delivers a result.
        """
        reports = {s: RunReport(seed=s) for s in self.seeds}
        results: Dict[int, EngineResult] = {}
        workers = min(self.workers, self.restarts)
        rebuilds = 0
        degraded = False
        if workers > 1:
            rebuilds, degraded = self._run_pool(
                workers, reports, results, control
            )
        if workers <= 1 or degraded:
            self._run_sequential(reports, results, control)
        for s in self.seeds:
            if s not in results and reports[s].status == "pending":
                stopped = control is not None and control.stop_requested
                reports[s].status = "skipped" if stopped else "failed"
        if not results:
            raise WorkerFailure(
                "every restart failed: "
                + "; ".join(reports[s].summary() for s in self.seeds)
            )
        ordered = [results[s] for s in self.seeds if s in results]
        best = min(ordered, key=lambda r: (r.cost, r.seed))
        return MultiStartResult(
            best=best,
            results=ordered,
            workers=workers,
            reports=[reports[s] for s in self.seeds],
            degraded=degraded,
            pool_rebuilds=rebuilds,
        )
