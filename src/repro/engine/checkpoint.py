"""Atomic annealing checkpoints and bit-identical resume.

A checkpoint is everything needed to continue an annealing run as if it
had never stopped:

* the **loop position** -- temperature-step index and the next move
  index within the step;
* the **RNG state** -- ``random.Random.getstate()``, so the resumed
  run consumes the exact same random stream the uninterrupted run
  would have;
* the **search state** -- current and best representation states with
  their cost breakdowns, plus ``t0`` and the objective's calibrated
  normalization constants (cost continuity requires the same norms);
* the **run configuration** -- netlist, representation name, seed,
  schedule, moves-per-temperature, and (when the engine was built from
  one) the picklable :class:`~repro.engine.multistart.ObjectiveSpec`,
  so ``AnnealEngine.resume(path)`` can reconstruct the whole engine
  from the file alone;
* **accounting** -- move/acceptance counters, per-step snapshots,
  elapsed wall-clock, and the cache statistics at checkpoint time (so
  a resumed run's report can cover the whole logical run; see
  :func:`~repro.perf.context.merge_cache_stats`).

Why resume is bit-identical: the evaluation pipeline recomputes
wirelength and congestion over the *full* edge arrays every evaluation
(the delta path only avoids rebuilding clean nets' edges), and every
cache is value-transparent, so re-evaluating the checkpointed current
state from scratch reproduces the incremental path's numbers exactly.
With the RNG stream restored verbatim, every subsequent
neighbor/accept decision is the one the uninterrupted run would have
made.

Files are written with write-temp-then-rename
(:mod:`repro.ioutil`), so a crash mid-checkpoint never corrupts the
previous good checkpoint.  Loading validates a magic header and format
version and raises :class:`~repro.errors.CheckpointError` on any
missing, foreign, truncated, or incompatible file.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import CheckpointError
from repro.ioutil import atomic_write_bytes

__all__ = [
    "CHECKPOINT_VERSION",
    "DRIVER_CHECKPOINT_VERSION",
    "LoopState",
    "Checkpoint",
    "CheckpointInfo",
    "DriverCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "peek_checkpoint",
    "save_driver_checkpoint",
    "load_driver_checkpoint",
]

CHECKPOINT_VERSION = 1
_MAGIC = b"repro-checkpoint"

DRIVER_CHECKPOINT_VERSION = 1
_DRIVER_MAGIC = b"repro-driver-ckpt"


@dataclass
class LoopState:
    """The annealing loop's complete position and search state.

    ``step`` / ``move`` address the *next* move to execute: a state
    captured at a temperature-step boundary has ``move == 0`` and
    ``step`` pointing at the upcoming step; a graceful mid-step stop
    records the move that had not yet run.
    """

    step: int
    move: int
    t0: float
    rng_state: Any
    current: Any
    current_eval: Any
    best: Any
    best_eval: Any
    n_moves: int
    n_accepted: int
    snapshots: List[Any] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    norms: Tuple[float, float, float] = (1.0, 1.0, 1.0)


@dataclass
class Checkpoint:
    """One annealing run frozen mid-flight, self-contained on disk."""

    representation: str
    seed: int
    netlist: Any
    moves_per_temperature: int
    schedule: Any
    loop: LoopState
    objective_spec: Any = None
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    @property
    def completed_steps(self) -> int:
        """Temperature steps fully behind the checkpoint."""
        return self.loop.step if self.loop.move == 0 else self.loop.step + 1


@dataclass
class DriverCheckpoint:
    """A search driver's scheduling state frozen at a round boundary.

    Engine-level checkpoints freeze one annealing loop;
    ``DriverCheckpoint`` freezes the layer *above* it -- a
    :class:`~repro.engine.drivers.SearchDriver`'s position in its own
    schedule: which round it is on, the temperature ladder and every
    replica's state (tempering), slot allocations and accumulated leg
    results (portfolio), the swap/allocation RNG state, and the
    decision ledger.  Resuming from one replays the remaining rounds
    bit-identically: the same swaps are proposed with the same uniforms
    and the same slots are allocated, because the entire scheduling RNG
    stream is restored verbatim.

    ``driver`` names the registered driver that wrote the file (resume
    under a different driver is refused); ``config`` is the picklable
    run configuration (netlist, spec, seeds, rounds...) so the CLI can
    reconstruct the whole run from the file alone; ``state`` is the
    driver-specific scheduling payload.
    """

    driver: str
    config: Any
    state: Any
    version: int = DRIVER_CHECKPOINT_VERSION


def _save_envelope(
    path: Union[str, Path],
    obj: Any,
    magic: bytes,
    version: int,
    what: str,
) -> Path:
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable state is a caller bug
        raise CheckpointError(
            f"{what} state is not picklable: {exc}"
        ) from exc
    blob = magic + version.to_bytes(4, "big") + payload
    try:
        return atomic_write_bytes(path, blob)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write {what} to {path}: {exc}"
        ) from exc


def _load_envelope(
    path: Union[str, Path],
    magic: bytes,
    version: int,
    cls: type,
    what: str,
) -> Any:
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read {what} {path}: {exc}") from exc
    header = len(magic) + 4
    if len(blob) < header or not blob.startswith(magic):
        raise CheckpointError(f"{path} is not a repro {what}")
    found = int.from_bytes(blob[len(magic) : header], "big")
    if found != version:
        raise CheckpointError(
            f"{path} has {what} format version {found}; this build "
            f"reads version {version}"
        )
    try:
        obj = pickle.loads(blob[header:])
    except Exception as exc:
        raise CheckpointError(
            f"{what} {path} is corrupt or truncated: {exc}"
        ) from exc
    if not isinstance(obj, cls):
        raise CheckpointError(
            f"{what} {path} does not contain a {cls.__name__} "
            f"(got {type(obj).__name__})"
        )
    return obj


def save_checkpoint(path: Union[str, Path], checkpoint: Checkpoint) -> Path:
    """Atomically write ``checkpoint`` to ``path``.

    The destination always holds either the previous complete
    checkpoint or the new one -- a crash mid-write loses only the
    in-flight checkpoint, never the file.
    """
    return _save_envelope(
        path, checkpoint, _MAGIC, CHECKPOINT_VERSION, "checkpoint"
    )


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`~repro.errors.CheckpointError` for a missing file,
    a file that is not a repro checkpoint, a truncated/corrupt payload,
    or a format version this code does not understand.
    """
    path = Path(path)
    try:
        head = path.read_bytes()[: len(_DRIVER_MAGIC)]
    except OSError:
        head = b""
    if head.startswith(_DRIVER_MAGIC):
        raise CheckpointError(
            f"{path} is a search-driver checkpoint; resume it through "
            f"the driver layer (--driver ... --resume), not AnnealEngine"
        )
    return _load_envelope(
        path, _MAGIC, CHECKPOINT_VERSION, Checkpoint, "checkpoint"
    )


@dataclass(frozen=True)
class CheckpointInfo:
    """A checkpoint file's identity card, cheap to obtain.

    Returned by :func:`peek_checkpoint`: enough to answer "what is
    this file, how far did it get, is it worth resuming" -- without
    constructing an engine, re-parsing a netlist, or touching any
    cache.  ``kind`` is ``"engine"`` or ``"driver"``; driver files
    fill ``driver`` and leave the loop-position fields ``None``.
    """

    kind: str
    version: int
    path: str
    representation: Optional[str] = None
    driver: Optional[str] = None
    seed: Optional[int] = None
    n_modules: Optional[int] = None
    step: Optional[int] = None
    move: Optional[int] = None
    completed_steps: Optional[int] = None
    n_moves: Optional[int] = None
    current_cost: Optional[float] = None
    best_cost: Optional[float] = None

    def summary(self) -> str:
        """One human-readable line (the CLI's ``--peek`` output)."""
        if self.kind == "driver":
            return (
                f"driver checkpoint v{self.version} ({self.driver}) "
                f"at {self.path}"
            )
        return (
            f"engine checkpoint v{self.version}: {self.representation} "
            f"seed {self.seed}, {self.n_modules} modules, "
            f"{self.completed_steps} step(s) done "
            f"(next step {self.step} move {self.move}), "
            f"best cost {self.best_cost}"
        )


def peek_checkpoint(path: Union[str, Path]) -> CheckpointInfo:
    """Identify a checkpoint file without rebuilding anything from it.

    Handles both engine and driver checkpoints (dispatching on the
    magic header) and raises :class:`~repro.errors.CheckpointError`
    with the same diagnostics as the loaders for anything that is not
    a valid checkpoint.  Unlike :meth:`AnnealEngine.resume`, peeking
    never constructs representations or objectives -- it is safe to
    call on files of unknown provenance before deciding what to do
    with them.
    """
    path = Path(path)
    try:
        head = path.read_bytes()[: len(_DRIVER_MAGIC)]
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if head.startswith(_DRIVER_MAGIC):
        checkpoint = load_driver_checkpoint(path)
        return CheckpointInfo(
            kind="driver",
            version=checkpoint.version,
            path=str(path),
            driver=checkpoint.driver,
        )
    checkpoint = load_checkpoint(path)
    loop = checkpoint.loop
    return CheckpointInfo(
        kind="engine",
        version=checkpoint.version,
        path=str(path),
        representation=checkpoint.representation,
        seed=checkpoint.seed,
        n_modules=getattr(checkpoint.netlist, "n_modules", None),
        step=loop.step,
        move=loop.move,
        completed_steps=checkpoint.completed_steps,
        n_moves=loop.n_moves,
        current_cost=getattr(loop.current_eval, "cost", None),
        best_cost=getattr(loop.best_eval, "cost", None),
    )


def save_driver_checkpoint(
    path: Union[str, Path], checkpoint: DriverCheckpoint
) -> Path:
    """Atomically write a :class:`DriverCheckpoint` to ``path``."""
    return _save_envelope(
        path,
        checkpoint,
        _DRIVER_MAGIC,
        DRIVER_CHECKPOINT_VERSION,
        "driver checkpoint",
    )


def load_driver_checkpoint(path: Union[str, Path]) -> DriverCheckpoint:
    """Read and validate a :func:`save_driver_checkpoint` file."""
    return _load_envelope(
        path,
        _DRIVER_MAGIC,
        DRIVER_CHECKPOINT_VERSION,
        DriverCheckpoint,
        "driver checkpoint",
    )
