"""Replica-exchange annealing (parallel tempering) as a search driver.

Plain multistart spends N runs independently; tempering couples them.
K replicas of the same circuit anneal at *fixed* temperatures -- the
rungs of a geometric ladder from a sampled hot temperature down to
``ladder_ratio`` of it -- and after every round of Metropolis sweeps,
adjacent rungs propose to exchange their current configurations.  The
standard acceptance rule

``P(swap i<->j) = min(1, exp((1/T_i - 1/T_j) * (E_i - E_j)))``

deterministically favors moving better solutions down the ladder
(toward cold rungs that refine them) while hot rungs keep exploring --
the hotter rung's scramble escapes local minima that would trap an
independent restart.

Determinism and supervision:

* every sweep is a **pure module-level function** of its arguments
  (fresh objective, fresh cache context, RNG stream restored verbatim
  from the replica record), so a pool round and a sequential round
  produce bit-identical replicas, and the driver parity test holds;
* all replicas share the *coordinator's* calibration norms -- energies
  must be comparable across replicas for the swap rule to mean
  anything, so per-replica calibration is explicitly not done;
* the swap RNG is seeded by integer arithmetic on the run seed (never
  ``hash()``, which varies per process), draws **exactly one uniform
  per proposed pair** whether or not the swap is taken, and its state
  lives in the driver checkpoint -- a resumed run proposes the same
  swaps with the same uniforms as the uninterrupted run;
* rounds run under :class:`~repro.engine.supervise.SupervisedRunner`
  (watchdog, retries, pool rebuild, degrade-to-sequential); a replica
  whose sweep exhausts its retries simply keeps its pre-round state;
* checkpoints have **round granularity**: a stop mid-round discards
  the partial round (replicas are committed only when the round fully
  completes), so resume-then-finish equals never-having-stopped, bit
  for bit.
"""

from __future__ import annotations

import math
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.anneal.schedule import initial_temperature
from repro.engine.drivers import (
    DriverConfig,
    SearchDriver,
    SearchResult,
    register_driver,
)
from repro.engine.engine import EngineResult
from repro.engine.multistart import ObjectiveSpec, RunReport
from repro.engine.representation import make_representation
from repro.engine.supervise import SupervisedRunner
from repro.errors import WorkerFailure
from repro.netlist import Netlist
from repro.perf.context import CacheContext

__all__ = ["ReplicaState", "TemperingDriver"]

# Round r's job keys are r * _ROUND_STRIDE + rung_index, so every
# (round, rung) pair is a distinct supervision key -- retries and
# targeted fault injection address one sweep, not "rung i forever".
_ROUND_STRIDE = 1000


@dataclass
class ReplicaState:
    """One rung's complete, picklable search state.

    ``rng_state is None`` marks a replica that has not run yet; its
    first sweep seeds a fresh RNG from the run seed plus the rung index
    and draws its initial configuration.  The rung's temperature is
    fixed for the whole run; swaps exchange ``current``/``current_eval``
    between rungs, never temperatures or RNG streams.

    ``progress`` carries the sweep's
    :class:`~repro.obs.ProgressSnapshot` when the run's observability
    plan sampled this round (``None`` otherwise); the coordinator
    re-emits it into the trace and drops it before checkpointing.
    """

    index: int
    temperature: float
    rng_state: Any = None
    current: Any = None
    current_eval: Any = None
    best: Any = None
    best_eval: Any = None
    n_moves: int = 0
    n_accepted: int = 0
    progress: Any = None


def _run_replica_sweep(
    netlist: Netlist,
    representation: str,
    spec: ObjectiveSpec,
    norms: tuple,
    replica: ReplicaState,
    base_seed: int,
    moves: int,
    key: int,
    obs_plan=None,
    attempt: int = 0,
    mode: str = "sequential",
    fault=None,
    control=None,
) -> ReplicaState:
    """One fixed-temperature Metropolis sweep of one replica.

    Module-level and pure so :class:`ProcessPoolExecutor` can pickle it
    and so pool and sequential execution are bit-identical.  ``fault``
    is the test-only injection hook, addressed by the supervision
    ``key`` (``round * 1000 + rung``) so it targets exactly one sweep
    attempt; ``control`` is accepted for the sequential call signature
    but deliberately unused -- a sweep is the atom of tempering work,
    and stopping between sweeps keeps parity exact.

    ``obs_plan`` (a :class:`repro.obs.ObsPlan`) makes the sweep attach
    a :class:`~repro.obs.ProgressSnapshot` to the returned replica on
    sampled rounds; the sampling runs strictly after the move loop and
    never touches the RNG, so sweeps are bit-identical either way.
    """
    if fault is not None:
        fault.maybe_fire(seed=key, attempt=attempt, mode=mode)
    sweep_start = time.perf_counter()
    context = CacheContext()
    objective = spec.build(netlist, context)
    objective.set_norms(*norms)
    rep = make_representation(
        representation,
        netlist,
        allow_rotation=objective.allow_rotation,
        cache_context=context,
    )

    def evaluate(state):
        return objective.evaluate_floorplan(rep.realize(state))

    rng = random.Random()
    if replica.rng_state is None:
        rng.seed(base_seed + replica.index)
        current = rep.initial(rng)
        current_eval = evaluate(current)
        objective.commit()
        best, best_eval = current, current_eval
        n_moves = n_accepted = 0
    else:
        rng.setstate(replica.rng_state)
        current = replica.current
        # Re-evaluate once to warm the incremental pipeline; full and
        # delta paths agree (see repro.engine.checkpoint), so this
        # reproduces the shipped numbers without touching the RNG.
        current_eval = evaluate(current)
        objective.commit()
        best, best_eval = replica.best, replica.best_eval
        n_moves, n_accepted = replica.n_moves, replica.n_accepted

    temperature = replica.temperature
    for _ in range(moves):
        candidate = rep.neighbor(current, rng)
        if candidate == current:
            continue
        candidate_eval = evaluate(candidate)
        delta = candidate_eval.cost - current_eval.cost
        n_moves += 1
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current, current_eval = candidate, candidate_eval
            objective.commit()
            n_accepted += 1
            if current_eval.cost < best_eval.cost:
                best, best_eval = current, current_eval
        else:
            objective.reject()
    progress = None
    if obs_plan is not None and obs_plan.enabled:
        round_i = key // _ROUND_STRIDE
        if (round_i + 1) % obs_plan.progress_every == 0:
            from repro.obs import ProgressSnapshot, top_congestion_densities

            progress = ProgressSnapshot(
                step=round_i,
                temperature=temperature,
                current_cost=current_eval.cost,
                best_cost=best_eval.cost,
                n_moves=n_moves,
                n_accepted=n_accepted,
                elapsed_seconds=time.perf_counter() - sweep_start,
                top_densities=top_congestion_densities(
                    objective, lambda: rep.realize(current), obs_plan.top_k
                ),
            )
    return ReplicaState(
        index=replica.index,
        temperature=temperature,
        rng_state=rng.getstate(),
        current=current,
        current_eval=current_eval,
        best=best,
        best_eval=best_eval,
        n_moves=n_moves,
        n_accepted=n_accepted,
        progress=progress,
    )


def _sample_setup(config: DriverConfig) -> tuple:
    """Coordinator-side calibration and hot-temperature sampling.

    Runs once, always in-process, always with the base seed: every
    replica must share these norms (cross-replica energies feed the
    swap rule) and the ladder must not depend on execution mode.
    Returns ``(t_hot, norms)``.
    """
    spec = config.spec()
    context = CacheContext()
    objective = spec.build(config.netlist, context)
    if config.calibrate:
        objective.calibrate(seed=config.seed)
    rep = make_representation(
        config.representation,
        config.netlist,
        allow_rotation=objective.allow_rotation,
        cache_context=context,
    )
    rng = random.Random(config.seed)
    walk = rep.initial(rng)
    walk_eval = objective.evaluate_floorplan(rep.realize(walk))
    objective.commit()
    deltas = []
    cost = walk_eval.cost
    for _ in range(30):
        walk = rep.neighbor(walk, rng)
        walk_eval = objective.evaluate_floorplan(rep.realize(walk))
        objective.commit()
        deltas.append(walk_eval.cost - cost)
        cost = walk_eval.cost
    return initial_temperature(deltas), objective.norms


class TemperingDriver(SearchDriver):
    """Replica-exchange annealing over ``config.restarts`` rungs.

    ``restarts`` is the replica count, ``rounds`` the number of
    sweep-then-swap rounds, ``moves_per_temperature`` the Metropolis
    moves per sweep.  The result's ``ledger["swaps"]`` records every
    proposal: round, rung pair, both energies, and the outcome.
    """

    name = "tempering"

    def run(self, control=None, resume_state=None, observer=None) -> SearchResult:
        """Run ``rounds`` sweep-then-swap rounds over the replica
        ladder; ``resume_state`` continues a driver checkpoint
        bit-identically (same sweeps, same swap uniforms).

        ``observer`` mirrors every swap proposal into the trace as it
        is decided (so a crashed run's ledger survives on disk),
        counts per-rung swap outcomes, and re-emits each sampled
        replica's progress snapshot.
        """
        cfg = self.config
        spec = cfg.spec()
        obs_plan = cfg.obs_plan()
        n_replicas = cfg.restarts
        moves = (
            cfg.moves_per_temperature
            if cfg.moves_per_temperature is not None
            else 10 * cfg.netlist.n_modules
        )
        if control is not None:
            control.begin()

        if resume_state is not None:
            ladder = list(resume_state["ladder"])
            replicas = list(resume_state["replicas"])
            norms = resume_state["norms"]
            t_hot = resume_state["t_hot"]
            swap_rng = random.Random()
            swap_rng.setstate(resume_state["swap_rng_state"])
            swap_ledger = list(resume_state["swaps"])
            all_reports = [
                RunReport.from_json(r) for r in resume_state["reports"]
            ]
            start_round = resume_state["round"]
            rebuilds_total = resume_state["pool_rebuilds"]
            degraded = resume_state["degraded"]
        else:
            t_hot, norms = _sample_setup(cfg)
            t_cold = t_hot * cfg.ladder_ratio
            if n_replicas == 1:
                ladder = [t_hot]
            else:
                ratio = t_cold / t_hot
                ladder = [
                    t_hot * ratio ** (i / (n_replicas - 1))
                    for i in range(n_replicas)
                ]
            replicas = [
                ReplicaState(index=i, temperature=ladder[i])
                for i in range(n_replicas)
            ]
            # Integer arithmetic, not hash(): hash of anything but
            # small ints varies with PYTHONHASHSEED across processes.
            swap_rng = random.Random(cfg.seed * 1_000_003 + 17)
            swap_ledger: List[Dict[str, Any]] = []
            all_reports: List[RunReport] = []
            start_round = 0
            rebuilds_total = 0
            degraded = False

        checkpoints_written = 0
        stop_reason: Optional[str] = None

        def snapshot(next_round: int) -> Dict[str, Any]:
            return {
                "round": next_round,
                "ladder": list(ladder),
                "replicas": list(replicas),
                "norms": norms,
                "t_hot": t_hot,
                "swap_rng_state": swap_rng.getstate(),
                "swaps": list(swap_ledger),
                "reports": [r.to_json() for r in all_reports],
                "pool_rebuilds": rebuilds_total,
                "degraded": degraded,
            }

        runner = SupervisedRunner(
            _run_replica_sweep,
            lambda key, attempt, mode: (
                cfg.netlist,
                cfg.representation,
                spec,
                norms,
                replicas[key % _ROUND_STRIDE],
                cfg.seed,
                moves,
                key,
                obs_plan,
                attempt,
                mode,
                cfg.inject_fault,
            ),
            timeout=cfg.restart_timeout,
            max_retries=cfg.max_retries,
            retry_backoff=cfg.retry_backoff,
            max_pool_rebuilds=cfg.max_pool_rebuilds,
            observer=observer,
        )

        for round_i in range(start_round, cfg.rounds):
            if control is not None:
                stop_reason = control.should_stop()
                if stop_reason is not None:
                    checkpoints_written += self._write_checkpoint(
                        snapshot(round_i), control, observer
                    )
                    break
            round_span = (
                observer.span("round", index=round_i, driver=self.name)
                if observer is not None
                else nullcontext()
            )
            with round_span:
                keys = [
                    round_i * _ROUND_STRIDE + i for i in range(n_replicas)
                ]
                reports = {
                    k: RunReport(
                        seed=k,
                        label=f"round {round_i} / rung {k % _ROUND_STRIDE}",
                    )
                    for k in keys
                }
                results: Dict[int, ReplicaState] = {}
                workers = 1 if degraded else min(cfg.workers, n_replicas)
                rebuilds, deg = runner.run(
                    keys, workers, reports, results, control
                )
                rebuilds_total += rebuilds
                degraded = degraded or deg
                stopped = control is not None and control.stop_requested
                if stopped and len(results) + sum(
                    1 for k in keys if reports[k].status == "failed"
                ) < len(keys):
                    # Partial round: some sweeps never ran.  Discard the
                    # round entirely (replicas stay at the round boundary)
                    # so the checkpoint resumes bit-identically.
                    for k in keys:
                        if (
                            k not in results
                            and reports[k].status == "pending"
                        ):
                            reports[k].status = "skipped"
                    all_reports.extend(reports[k] for k in keys)
                    stop_reason = control.should_stop() or "stop"
                    checkpoints_written += self._write_checkpoint(
                        snapshot(round_i), control, observer
                    )
                    break
                # Commit the round: successful sweeps advance their rung,
                # exhausted ones keep the pre-round state.
                for k in keys:
                    if k in results:
                        replicas[k % _ROUND_STRIDE] = results[k]
                    elif reports[k].status == "pending":
                        reports[k].status = "failed"
                all_reports.extend(reports[k] for k in keys)
                if not any(r.current is not None for r in replicas):
                    raise WorkerFailure(
                        "every replica sweep failed in round 0: "
                        + "; ".join(reports[k].summary() for k in keys)
                    )
                if observer is not None:
                    # Re-emit each sampled sweep's snapshot into the
                    # trace (rung order), then drop it so checkpoints
                    # stay lean.
                    for r in replicas:
                        if r.progress is not None:
                            observer.progress.append(r.progress)
                            observer.tracer.progress(
                                "replica",
                                {
                                    **r.progress.to_json(),
                                    "rung": r.index,
                                    "round": round_i,
                                },
                            )
                            r.progress = None
                # Swap phase: alternate even/odd adjacent pairs; exactly
                # one uniform per proposed pair, taken or not.
                offset = round_i % 2
                for i in range(offset, n_replicas - 1, 2):
                    a, b = replicas[i], replicas[i + 1]
                    u = swap_rng.random()
                    if a.current is None or b.current is None:
                        continue  # a rung that never ran cannot trade
                    e_a = a.current_eval.cost
                    e_b = b.current_eval.cost
                    delta = (1.0 / ladder[i] - 1.0 / ladder[i + 1]) * (
                        e_a - e_b
                    )
                    accepted = delta >= 0 or u < math.exp(delta)
                    if accepted:
                        a.current, b.current = b.current, a.current
                        a.current_eval, b.current_eval = (
                            b.current_eval,
                            a.current_eval,
                        )
                    entry = {
                        "round": round_i,
                        "low": i,
                        "high": i + 1,
                        "energy_low": e_a,
                        "energy_high": e_b,
                        "accepted": accepted,
                    }
                    swap_ledger.append(entry)
                    if observer is not None:
                        # The on-disk twin of the in-memory ledger: a
                        # crashed run still leaves every decided swap.
                        observer.event("swap", **entry)
                        observer.metrics.count(f"swaps_proposed[{i}]")
                        if accepted:
                            observer.metrics.count(f"swaps_accepted[{i}]")
                next_round = round_i + 1
                if next_round % cfg.checkpoint_every == 0 or (
                    next_round == cfg.rounds
                ):
                    checkpoints_written += self._write_checkpoint(
                        snapshot(next_round), control, observer
                    )

        live = [r for r in replicas if r.best is not None]
        if not live:
            raise WorkerFailure("tempering produced no replica results")
        rep = make_representation(
            cfg.representation, cfg.netlist, allow_rotation=spec.allow_rotation
        )
        results_out = [
            EngineResult(
                representation=cfg.representation,
                seed=cfg.seed + r.index,
                floorplan=rep.realize(r.best),
                state=r.best,
                breakdown=r.best_eval,
                n_moves=r.n_moves,
                n_accepted=r.n_accepted,
                completed=stop_reason is None,
                stop_reason=stop_reason,
                rng_state=r.rng_state,
            )
            for r in live
        ]
        best = min(results_out, key=lambda r: (r.cost, r.seed))
        return SearchResult(
            driver=self.name,
            best=best,
            results=results_out,
            workers=min(cfg.workers, n_replicas),
            reports=all_reports,
            degraded=degraded,
            pool_rebuilds=rebuilds_total,
            completed=stop_reason is None,
            stop_reason=stop_reason,
            checkpoints_written=checkpoints_written,
            ledger={
                "ladder": list(ladder),
                "t_hot": t_hot,
                "swaps": list(swap_ledger),
            },
        )


register_driver(
    "tempering",
    TemperingDriver,
    "replica-exchange annealing over a geometric temperature ladder",
)
