"""Cooperative run control: stop flags, deadlines, signal handling.

A :class:`RunControl` is the channel through which the outside world
asks a running engine to wind down without losing work.  The annealing
loop polls :meth:`RunControl.should_stop` once per move (an
``Event.is_set`` plus at most one clock read -- nanoseconds against an
evaluation's microseconds); when a stop is requested the loop exits at
the next move boundary, writes a final checkpoint if one is configured,
and returns the best-so-far result with ``stop_reason`` set, instead of
dying with work on the floor.

Stop requests come from three places:

* :func:`install_signal_handlers` -- SIGINT/SIGTERM set the flag
  cooperatively; a *second* SIGINT falls back to the previous handler
  (normally ``KeyboardInterrupt``) so a wedged run can still be killed;
* a ``deadline_seconds`` budget measured from :meth:`RunControl.begin`;
* any thread calling :meth:`RunControl.request_stop` directly.

The same control also carries the run's checkpoint policy (where to
write, how many temperature steps between checkpoints); the engine
binds the actual writer, keeping this module free of checkpoint-format
knowledge.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Optional, Union

__all__ = ["RunControl", "install_signal_handlers"]


class RunControl:
    """Cooperative stop flag + deadline + checkpoint policy for one run.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget measured from :meth:`begin`; when exceeded the
        run stops with reason ``"deadline"``.  ``None`` means no budget.
    checkpoint_path:
        Where periodic checkpoints go (atomically replaced in place).
        ``None`` disables checkpointing; stop handling still works.
    checkpoint_every:
        Temperature steps between periodic checkpoints (>= 1).

    A control is single-run state: share one between an engine and a
    signal handler, not between two concurrent runs.  The stop flag is
    a :class:`threading.Event`, so any thread (a signal handler runs in
    the main thread, a supervisor may run elsewhere) can request a stop.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
    ):
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.deadline_seconds = deadline_seconds
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self._stop = threading.Event()
        self._reason: Optional[str] = None
        self._started: Optional[float] = None
        self._writer: Optional[Callable[[object], None]] = None
        self.checkpoints_written = 0
        self.last_checkpoint_path: Optional[Path] = None

    # -- lifecycle -----------------------------------------------------

    def begin(self) -> None:
        """Start (or restart) the deadline clock.  Engines call this at
        run entry; resumed runs get a fresh budget for their segment."""
        self._started = time.monotonic()

    def elapsed_seconds(self) -> float:
        """Seconds since :meth:`begin` (0.0 before it)."""
        return 0.0 if self._started is None else time.monotonic() - self._started

    # -- stopping ------------------------------------------------------

    def request_stop(self, reason: str = "stop") -> None:
        """Ask the run to wind down; the first reason recorded wins."""
        if not self._stop.is_set():
            self._reason = reason
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    def should_stop(self) -> Optional[str]:
        """The stop reason if the run should wind down, else ``None``.

        Checks the flag first (cheap), then the deadline; crossing the
        deadline latches the flag so every later call agrees.
        """
        if self._stop.is_set():
            return self._reason or "stop"
        if (
            self.deadline_seconds is not None
            and self._started is not None
            and time.monotonic() - self._started >= self.deadline_seconds
        ):
            self.request_stop("deadline")
            return "deadline"
        return None

    # -- checkpointing -------------------------------------------------

    def bind_writer(self, writer: Callable[[object], None]) -> None:
        """Install the engine's checkpoint writer (called with a loop
        state; the engine wraps it in its full checkpoint format)."""
        self._writer = writer

    @property
    def checkpoint_enabled(self) -> bool:
        return self.checkpoint_path is not None and self._writer is not None

    def checkpoint_due(self, completed_steps: int) -> bool:
        """Whether a periodic checkpoint is due after ``completed_steps``
        temperature steps."""
        return (
            self.checkpoint_enabled
            and completed_steps % self.checkpoint_every == 0
        )

    def write_checkpoint(self, loop_state: object) -> None:
        """Write one checkpoint now (no-op when checkpointing is off)."""
        if not self.checkpoint_enabled:
            return
        self._writer(loop_state)
        self.checkpoints_written += 1
        self.last_checkpoint_path = self.checkpoint_path


@contextmanager
def install_signal_handlers(
    control: RunControl,
    signals: tuple = (signal.SIGINT, signal.SIGTERM),
):
    """Route SIGINT/SIGTERM into ``control.request_stop`` while active.

    The first signal requests a cooperative stop (the run checkpoints
    and returns best-so-far); a second delivery of the same signal is
    handed to the previously installed handler, so a double Ctrl-C
    still raises :class:`KeyboardInterrupt` if the loop is wedged.
    Previous handlers are always restored on exit.  Outside the main
    thread (where CPython forbids ``signal.signal``) this is a no-op
    context, so library callers never crash merely by asking.
    """
    previous = {}
    installed = []

    def handler(signum, frame):
        if control.stop_requested:
            prior = previous.get(signum)
            if callable(prior):
                prior(signum, frame)
                return
            if prior == signal.SIG_DFL and signum == signal.SIGINT:
                raise KeyboardInterrupt
            return
        control.request_stop("signal")

    try:
        for sig in signals:
            try:
                previous[sig] = signal.signal(sig, handler)
                installed.append(sig)
            except ValueError:
                # Not the main thread: cooperative stop still works via
                # request_stop; signals just are not ours to hook.
                break
        yield control
    finally:
        for sig in installed:
            signal.signal(sig, previous[sig])
