"""Structured run tracing: nested spans and events as JSONL.

A :class:`Tracer` writes one JSON object per line to a trace file --
``span_start`` / ``span_end`` pairs for nested phases (run -> round ->
restart -> warmup/anneal), point ``event`` records for scheduling
decisions (swaps, allocations, migrations, supervision incidents),
``progress`` records for convergence snapshots, and ``metric`` records
for aggregated registry dumps.  Every line carries a monotonic
timestamp relative to the tracer's creation, so span durations are
immune to wall-clock steps, and lines reach disk through
:func:`repro.ioutil.atomic_append_text` -- a single ``O_APPEND`` write
per flush, so a crashed run leaves a readable prefix, never interleaved
garbage.

The shared :data:`NULL_TRACER` is the default everywhere: it accepts
every call and does nothing, so instrumented code pays one attribute
lookup when nobody is tracing.  Neither tracer ever touches a random
number generator -- tracing on versus off is bit-identical by
construction (the determinism suite asserts it).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.ioutil import atomic_append_text, atomic_write_text
from repro.obs.schema import TRACE_VERSION

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]


class Tracer:
    """Buffered JSONL span/event writer.

    Parameters
    ----------
    path:
        Destination trace file; created (truncated) immediately so a
        rerun never appends to a stale trace.
    flush_every:
        Buffered lines per ``O_APPEND`` write; 1 flushes every line
        (crash evidence at the cost of more syscalls).
    """

    enabled = True

    def __init__(self, path: Union[str, Path], flush_every: int = 64):
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self.n_events = 0
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self._buffer: list = []
        self._next_span = 1
        self._stack: list = []
        atomic_write_text(self.path, "")

    # -- emission -----------------------------------------------------

    def _emit(
        self,
        kind: str,
        name: str,
        attrs: Optional[Dict[str, Any]],
        span: Optional[int],
        parent: Optional[int],
    ) -> None:
        record = {
            "v": TRACE_VERSION,
            "ts": round(time.monotonic() - self._t0, 6),
            "kind": kind,
            "name": name,
            "span": span,
            "parent": parent,
            "attrs": attrs or {},
        }
        line = json.dumps(record, sort_keys=True, default=_jsonable)
        with self._lock:
            self._buffer.append(line)
            self.n_events += 1
            if len(self._buffer) >= self.flush_every:
                self._flush_locked()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[int]:
        """Open a nested span for the ``with`` block; yields its id."""
        with self._lock:
            sid = self._next_span
            self._next_span += 1
            parent = self._stack[-1] if self._stack else None
            self._stack.append(sid)
        self._emit("span_start", name, attrs, sid, parent)
        try:
            yield sid
        finally:
            with self._lock:
                if self._stack and self._stack[-1] == sid:
                    self._stack.pop()
            self._emit("span_end", name, None, sid, parent)

    def _enclosing(self) -> Optional[int]:
        with self._lock:
            return self._stack[-1] if self._stack else None

    def event(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record a point event inside the innermost open span."""
        self._emit("event", name, attrs, self._enclosing(), None)

    def progress(
        self, name: str, attrs: Optional[Dict[str, Any]] = None
    ) -> None:
        """Record one convergence snapshot (cost, temperature, ...)."""
        self._emit("progress", name, attrs, self._enclosing(), None)

    def metric(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record an aggregated metrics-registry dump."""
        self._emit("metric", name, attrs, self._enclosing(), None)

    # -- flushing -----------------------------------------------------

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        text = "\n".join(self._buffer) + "\n"
        self._buffer = []
        atomic_append_text(self.path, text)

    def flush(self) -> None:
        """Write every buffered line to disk now."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        """Flush; the tracer stays usable (close is just a final flush)."""
        self.flush()


def _jsonable(obj: Any) -> Any:
    """Last-resort JSON encoder: tuples become lists, everything else
    its ``repr`` -- a trace line must never kill the run it observes."""
    if isinstance(obj, tuple):
        return list(obj)
    return repr(obj)


class NullTracer:
    """Do-nothing tracer; safe to share globally."""

    enabled = False
    path = None
    n_events = 0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[int]:
        """No-op span; yields a dummy id."""
        yield 0

    def event(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Discard the event."""

    def progress(
        self, name: str, attrs: Optional[Dict[str, Any]] = None
    ) -> None:
        """Discard the snapshot."""

    def metric(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Discard the metrics dump."""

    def flush(self) -> None:
        """Nothing buffered, nothing flushed."""

    def close(self) -> None:
        """Nothing to close."""


NULL_TRACER = NullTracer()
