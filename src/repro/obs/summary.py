"""Trace summarization: phase attribution, convergence, cost curve.

Reads a ``--trace`` JSONL file back through the schema validator and
condenses it into a :class:`TraceSummary`: wall-clock attributed to
span names (``span_start``/``span_end`` pairs matched by span id),
event counts, the convergence series from ``progress`` (or, failing
that, ``temperature_step``) records, swap/migration tallies, and the
final aggregated metrics dump.  :func:`format_trace_summary` renders
it for terminals -- tables plus an ASCII best-cost curve via
:func:`repro.viz.render_series_ascii` -- and powers the ``floorplan
trace`` CLI subcommand.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.schema import iter_trace

__all__ = ["SpanTotal", "TraceSummary", "summarize_trace", "format_trace_summary"]


@dataclass
class SpanTotal:
    """Accumulated wall-clock of every span sharing one name."""

    seconds: float = 0.0
    count: int = 0


@dataclass
class TraceSummary:
    """Everything the summarizer extracts from one trace file."""

    path: str
    n_events: int = 0
    duration_seconds: float = 0.0
    span_totals: Dict[str, SpanTotal] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    progress: List[Dict[str, Any]] = field(default_factory=list)
    best_costs: List[float] = field(default_factory=list)
    swaps_proposed: int = 0
    swaps_accepted: int = 0
    migrations: int = 0
    metrics: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable image of this summary."""
        return {
            "path": self.path,
            "n_events": self.n_events,
            "duration_seconds": self.duration_seconds,
            "span_totals": {
                name: {"seconds": t.seconds, "count": t.count}
                for name, t in sorted(self.span_totals.items())
            },
            "event_counts": dict(sorted(self.event_counts.items())),
            "n_progress": len(self.progress),
            "best_costs": list(self.best_costs),
            "swaps_proposed": self.swaps_proposed,
            "swaps_accepted": self.swaps_accepted,
            "migrations": self.migrations,
            "metrics": self.metrics,
        }


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    """Parse and validate a trace file into a :class:`TraceSummary`.

    Unclosed spans (a crashed run's open phases) are counted but
    contribute no time; the latest ``run_metrics`` dump wins.
    """
    summary = TraceSummary(path=str(path))
    open_spans: Dict[int, Tuple[str, float]] = {}
    counts: Counter = Counter()
    last_ts = 0.0
    step_best: List[float] = []
    progress_best: List[float] = []
    for record in iter_trace(path):
        summary.n_events += 1
        last_ts = max(last_ts, float(record["ts"]))
        kind, name = record["kind"], record["name"]
        attrs = record["attrs"]
        if kind == "span_start":
            open_spans[record["span"]] = (name, float(record["ts"]))
            counts[f"span:{name}"] += 1
        elif kind == "span_end":
            started = open_spans.pop(record["span"], None)
            total = summary.span_totals.setdefault(name, SpanTotal())
            total.count += 1
            if started is not None:
                total.seconds += float(record["ts"]) - started[1]
        elif kind == "progress":
            summary.progress.append({"name": name, **attrs})
            if "best_cost" in attrs:
                progress_best.append(float(attrs["best_cost"]))
        elif kind == "metric":
            if name == "run_metrics":
                summary.metrics = attrs
            counts[f"metric:{name}"] += 1
        else:  # event
            counts[f"event:{name}"] += 1
            if name == "temperature_step" and "best_cost" in attrs:
                step_best.append(float(attrs["best_cost"]))
            elif name == "swap":
                summary.swaps_proposed += 1
                if attrs.get("accepted"):
                    summary.swaps_accepted += 1
            elif name == "migration":
                summary.migrations += 1
    summary.event_counts = dict(counts)
    summary.duration_seconds = last_ts
    # Prefer explicit progress snapshots; fall back to per-step events.
    summary.best_costs = progress_best if progress_best else step_best
    return summary


def _span_table(summary: TraceSummary) -> List[str]:
    if not summary.span_totals:
        return []
    rows = sorted(
        summary.span_totals.items(), key=lambda kv: -kv[1].seconds
    )
    width = max(len(name) for name, _ in rows)
    wall = summary.duration_seconds or 1.0
    lines = [
        "-- phase time attribution --",
        f"{'span'.ljust(width)}  {'seconds':>10}  {'count':>6}  {'% wall':>7}",
    ]
    for name, total in rows:
        lines.append(
            f"{name.ljust(width)}  {total.seconds:>10.3f}  {total.count:>6d}"
            f"  {100.0 * total.seconds / wall:>6.1f}%"
        )
    return lines


def _convergence_table(summary: TraceSummary, max_rows: int = 12) -> List[str]:
    rows = [p for p in summary.progress if "best_cost" in p]
    if not rows:
        return []
    if len(rows) > max_rows:
        stride = (len(rows) + max_rows - 1) // max_rows
        sampled = rows[::stride]
        if sampled[-1] is not rows[-1]:
            sampled.append(rows[-1])
        rows = sampled
    lines = [
        "-- convergence --",
        f"{'step':>6}  {'temperature':>12}  {'current':>12}  {'best':>12}"
        f"  {'top density':>12}",
    ]
    for p in rows:
        tops = p.get("top_densities") or []
        top = f"{tops[0]:.4g}" if tops else "-"
        lines.append(
            f"{p.get('step', 0):>6}  {p.get('temperature', 0.0):>12.4g}"
            f"  {p.get('current_cost', 0.0):>12.6g}"
            f"  {p.get('best_cost', 0.0):>12.6g}  {top:>12}"
        )
    return lines


def format_trace_summary(summary: TraceSummary, width: int = 60) -> str:
    """Render a summary for the terminal (the ``floorplan trace``
    subcommand's output)."""
    from repro.viz import render_series_ascii

    lines = [
        f"trace {summary.path}: {summary.n_events} events, "
        f"{summary.duration_seconds:.3f} s"
    ]
    lines.extend(_span_table(summary))
    lines.extend(_convergence_table(summary))
    if summary.best_costs:
        lines.append("-- best cost --")
        lines.append(
            render_series_ascii(
                summary.best_costs, width=width, label="best cost"
            )
        )
    if summary.swaps_proposed:
        lines.append(
            f"replica swaps: {summary.swaps_accepted}/"
            f"{summary.swaps_proposed} accepted"
        )
    if summary.migrations:
        lines.append(f"champion migrations: {summary.migrations}")
    if summary.event_counts:
        top = sorted(summary.event_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        counted = "  ".join(f"{name}={n}" for name, n in top[:8])
        lines.append(f"events: {counted}")
    if summary.metrics:
        counters = summary.metrics.get("counters", {})
        interesting = {
            k: v
            for k, v in counters.items()
            if k
            in (
                "evaluations",
                "eval_delta",
                "eval_full",
                "congestion_exact_rescue",
                "supervision_retries",
                "pool_rebuilds",
                "champion_migrations",
            )
        }
        if interesting:
            lines.append(
                "counters: "
                + "  ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
            )
    return "\n".join(lines)
