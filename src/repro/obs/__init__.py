"""Run telemetry: structured tracing, unified metrics, progress streams.

The observability layer makes a long search *watchable* without making
it different: every hook is RNG-free and off by default, so a traced
strict-mode walk is bit-identical to an untraced one (the determinism
suite asserts it).  Four pieces:

* :class:`Tracer` (:mod:`repro.obs.trace`) -- nested spans (run ->
  round -> restart -> warmup/anneal) and point events as JSONL, one
  atomic ``O_APPEND`` write per flush, so a crashed run leaves its
  scheduling ledger on disk;
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) -- the
  :mod:`repro.perf` timers/counters behind one facade plus gauges and
  fixed-bucket histograms (acceptance rate by temperature, per-rung
  swap acceptance, per-arm slots, cache hit rates, supervision
  incidents);
* :class:`ProgressSnapshot` / :class:`ObsPlan`
  (:mod:`repro.obs.progress`) -- workers collect periodic convergence
  samples (cost, temperature, top-k congestion density) that ride the
  existing supervision seam home and merge into the trace;
* :func:`summarize_trace` / :func:`format_trace_summary`
  (:mod:`repro.obs.summary`) -- the ``floorplan trace`` subcommand's
  phase attribution, convergence table and ASCII cost curve.

:class:`RunObserver` (:mod:`repro.obs.observe`) bundles the first
three behind the single optional handle the engines and drivers take.
"""

from repro.obs.metrics import (
    DEFAULT_RATE_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.obs.observe import NULL_OBSERVER, RunObserver
from repro.obs.progress import (
    ObsPlan,
    ProgressSnapshot,
    top_congestion_densities,
)
from repro.obs.schema import (
    EVENT_KINDS,
    TRACE_VERSION,
    TraceSchemaError,
    iter_trace,
    validate_event,
    validate_trace_file,
)
from repro.obs.summary import (
    SpanTotal,
    TraceSummary,
    format_trace_summary,
    summarize_trace,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Histogram",
    "NULL_METRICS",
    "DEFAULT_RATE_BUCKETS",
    "RunObserver",
    "NULL_OBSERVER",
    "ObsPlan",
    "ProgressSnapshot",
    "top_congestion_densities",
    "TRACE_VERSION",
    "EVENT_KINDS",
    "TraceSchemaError",
    "validate_event",
    "iter_trace",
    "validate_trace_file",
    "TraceSummary",
    "SpanTotal",
    "summarize_trace",
    "format_trace_summary",
]
