"""The trace event schema and its validator.

Every line of a ``--trace`` JSONL file is one JSON object with exactly
these fields::

    {"v": 1,                  # schema version (this module's TRACE_VERSION)
     "ts": 0.1234,            # seconds since trace start (monotonic, >= 0)
     "kind": "span_start",    # one of EVENT_KINDS
     "name": "round",         # non-empty label
     "span": 3,               # span id (span kinds) / enclosing span (others)
     "parent": 1,             # enclosing span id, or null
     "attrs": {...}}          # JSON-safe structured attributes

``span_start`` / ``span_end`` lines carry their *own* span id in
``span``; ``event`` / ``progress`` / ``metric`` lines carry the
innermost *enclosing* span (or null at top level).  The validator is
deliberately strict about the envelope -- unknown keys, wrong types and
bad kinds all raise -- and permissive about ``attrs`` beyond requiring
JSON-safe values, so drivers can attach whatever their ledgers hold.
CI round-trips every smoke-run trace line through
:func:`validate_event`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, Union

__all__ = [
    "TRACE_VERSION",
    "EVENT_KINDS",
    "TraceSchemaError",
    "validate_event",
    "iter_trace",
    "validate_trace_file",
]

TRACE_VERSION = 1

EVENT_KINDS = ("span_start", "span_end", "event", "metric", "progress")

_REQUIRED_KEYS = frozenset({"v", "ts", "kind", "name", "span", "parent", "attrs"})

_JSON_SCALARS = (str, int, float, bool, type(None))


class TraceSchemaError(ValueError):
    """A trace line does not conform to the event schema."""


def _check_attrs(value: Any, path: str) -> None:
    if isinstance(value, _JSON_SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_attrs(item, f"{path}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TraceSchemaError(
                    f"attrs key {key!r} at {path} is not a string"
                )
            _check_attrs(item, f"{path}.{key}")
        return
    raise TraceSchemaError(
        f"attrs value at {path} is not JSON-safe: {type(value).__name__}"
    )


def validate_event(record: Any) -> Dict[str, Any]:
    """Check one parsed trace line against the schema; returns it.

    Raises :class:`TraceSchemaError` naming the first violation.
    """
    if not isinstance(record, dict):
        raise TraceSchemaError(
            f"trace line is not a JSON object: {type(record).__name__}"
        )
    keys = set(record)
    if keys != _REQUIRED_KEYS:
        missing = sorted(_REQUIRED_KEYS - keys)
        extra = sorted(keys - _REQUIRED_KEYS)
        raise TraceSchemaError(
            f"trace line keys mismatch: missing {missing}, unexpected {extra}"
        )
    if record["v"] != TRACE_VERSION:
        raise TraceSchemaError(
            f"unsupported trace version {record['v']!r} "
            f"(expected {TRACE_VERSION})"
        )
    ts = record["ts"]
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        raise TraceSchemaError(f"ts must be a non-negative number, got {ts!r}")
    kind = record["kind"]
    if kind not in EVENT_KINDS:
        raise TraceSchemaError(
            f"unknown kind {kind!r}; expected one of {EVENT_KINDS}"
        )
    name = record["name"]
    if not isinstance(name, str) or not name:
        raise TraceSchemaError(f"name must be a non-empty string, got {name!r}")
    span = record["span"]
    if span is not None and (not isinstance(span, int) or isinstance(span, bool)):
        raise TraceSchemaError(f"span must be an int or null, got {span!r}")
    if kind in ("span_start", "span_end") and span is None:
        raise TraceSchemaError(f"{kind} line must carry its span id")
    parent = record["parent"]
    if parent is not None and (
        not isinstance(parent, int) or isinstance(parent, bool)
    ):
        raise TraceSchemaError(f"parent must be an int or null, got {parent!r}")
    attrs = record["attrs"]
    if not isinstance(attrs, dict):
        raise TraceSchemaError(
            f"attrs must be an object, got {type(attrs).__name__}"
        )
    _check_attrs(attrs, "attrs")
    return record


def iter_trace(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield every validated event of a trace file, in file order.

    Raises :class:`TraceSchemaError` on the first malformed or
    non-conforming line (the message names the line number).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            try:
                yield validate_event(record)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"{path}:{lineno}: {exc}") from None


def validate_trace_file(path: Union[str, Path]) -> int:
    """Validate every line of a trace file; returns the event count."""
    return sum(1 for _ in iter_trace(path))
