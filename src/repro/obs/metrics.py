"""The unified metrics registry: timers, counters, gauges, histograms.

:class:`MetricsRegistry` subsumes the :mod:`repro.perf` facade -- its
``timeit`` / ``add_time`` / ``count`` delegate to an owned
:class:`~repro.perf.PerfRecorder`, so the annealing hot path keeps its
near-zero-overhead instrumentation -- and adds the two shapes the perf
layer lacks:

* **gauges**: last-written values (current temperature, best cost,
  per-cache hit rates);
* **fixed-bucket histograms**: distributions of per-step signals the
  runs already compute but drop -- move acceptance rate by temperature
  step, per-rung swap acceptance, per-arm slot allocations.

Everything snapshots to plain JSON (:meth:`MetricsRegistry.snapshot`)
and merges additively (:meth:`MetricsRegistry.merge_snapshot`), so
worker processes ship their registry home as a dict on the result
object and the coordinator folds every worker into one run-wide view.
The shared :data:`NULL_METRICS` is the do-nothing default.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.perf import NULL_RECORDER, PerfRecorder, PhaseStat

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_RATE_BUCKETS",
]

# Acceptance-style ratios live in [0, 1]; twenty 5%-wide buckets.
DEFAULT_RATE_BUCKETS: Tuple[float, ...] = tuple(
    round(i / 20.0, 2) for i in range(1, 21)
)


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches values above the last edge.  Tracks count, sum, min and
    max alongside the bucket counts.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one value."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of every observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe image: bounds, bucket counts, count/sum/min/max."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_snapshot(self, data: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` image into this histogram.

        The bounds must match -- merging histograms of different
        shapes is a caller bug, reported loudly.
        """
        bounds = tuple(float(b) for b in data["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {bounds} vs {self.bounds}"
            )
        for i, n in enumerate(data["counts"]):
            self.counts[i] += int(n)
        self.count += int(data["count"])
        self.total += float(data["sum"])
        for field, pick in (("min", min), ("max", max)):
            theirs = data.get(field)
            if theirs is None:
                continue
            mine = getattr(self, field)
            setattr(
                self,
                field,
                float(theirs) if mine is None else pick(mine, float(theirs)),
            )


class MetricsRegistry:
    """One facade over timers, counters, gauges and histograms.

    ``perf`` is the owned :class:`~repro.perf.PerfRecorder` (created on
    demand); wire it into an objective / annealing run and the run's
    phase timers and counters surface in :meth:`snapshot` alongside the
    registry's own gauges and histograms.
    """

    def __init__(self, perf: Optional[PerfRecorder] = None):
        self.perf = perf if perf is not None else PerfRecorder()
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- perf facade --------------------------------------------------

    def timeit(self, name: str):
        """Context manager timing one phase (delegates to ``perf``)."""
        return self.perf.timeit(name)

    def add_time(self, name: str, seconds: float) -> None:
        """Add one timed occurrence (delegates to ``perf``)."""
        self.perf.add_time(name, seconds)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a counter (delegates to ``perf``)."""
        self.perf.count(name, n)

    # -- gauges and histograms ---------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_RATE_BUCKETS,
    ) -> None:
        """Record ``value`` into histogram ``name`` (created on first
        use with ``bounds``)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        hist.observe(value)

    def set_cache_gauges(self, cache_stats: Mapping[str, Any]) -> None:
        """Publish per-cache hit-rate gauges from a ``name ->
        CacheStats`` snapshot (caches with zero lookups are skipped)."""
        for name, stats in cache_stats.items():
            if getattr(stats, "lookups", 0):
                self.gauge(f"cache_hit_rate.{name}", stats.hit_rate)

    # -- aggregation --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe image of every timer, counter, gauge, histogram."""
        perf = self.perf.snapshot()
        return {
            "timers": perf["timers"],
            "counters": perf["counters"],
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self.histograms.items())
            },
        }

    def merge_snapshot(self, data: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Timers, counters and histograms add; gauges last-write-wins --
        the shapes' natural merge semantics for stitching worker
        registries into the coordinator's.
        """
        for name, stat in data.get("timers", {}).items():
            mine = self.perf.timers.get(name)
            if mine is None:
                mine = self.perf.timers[name] = PhaseStat()
            mine.seconds += float(stat["seconds"])
            mine.calls += int(stat["calls"])
        for name, n in data.get("counters", {}).items():
            self.perf.count(name, int(n))
        for name, value in data.get("gauges", {}).items():
            self.gauge(name, value)
        for name, hist_data in data.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(hist_data["bounds"])
            hist.merge_snapshot(hist_data)


class _NullMetricsRegistry(MetricsRegistry):
    """Registry that records nothing; safe to share globally."""

    def __init__(self) -> None:
        super().__init__(perf=NULL_RECORDER)

    def gauge(self, name: str, value: float) -> None:
        """Discard the gauge write."""

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_RATE_BUCKETS,
    ) -> None:
        """Discard the observation."""

    def merge_snapshot(self, data: Mapping[str, Any]) -> None:
        """Discard the merge."""


NULL_METRICS = _NullMetricsRegistry()
