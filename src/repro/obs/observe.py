"""The run observer: one handle bundling tracer, metrics and progress.

Instrumented code (the annealing loop, the engines, the search
drivers) takes an optional :class:`RunObserver` and calls its hooks;
the observer fans each hook out to its tracer (JSONL events), its
:class:`~repro.obs.metrics.MetricsRegistry` (gauges / histograms /
perf counters) and its in-memory progress list.  ``observer=None``
everywhere means *fully off* -- the hot loop's only cost is one ``is
None`` test per temperature step, and none of the hooks ever touches a
random number generator, so instrumented and uninstrumented walks are
bit-identical (the determinism suite asserts exactly this).

Coordinators that want the event/span surface without conditionals can
use :data:`NULL_OBSERVER` (null tracer, null metrics, no progress);
never hand it to an engine run, though -- its null perf recorder would
silently replace the run's real one.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.progress import ProgressSnapshot, top_congestion_densities
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["RunObserver", "NULL_OBSERVER"]


class RunObserver:
    """Bundles a tracer, a metrics registry and progress collection.

    Parameters
    ----------
    tracer:
        Where spans/events/progress lines go; defaults to the no-op
        :data:`~repro.obs.trace.NULL_TRACER`.
    metrics:
        The unified registry; created on demand.  Engine runs wire
        ``metrics.perf`` into the objective, so phase timers and
        counters accumulate here.
    progress_every:
        Temperature steps between :class:`ProgressSnapshot` samples
        (0 disables sampling; per-step metrics still flow).
    progress_top_k:
        Top congestion densities attached to each sample.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress_every: int = 0,
        progress_top_k: int = 3,
    ):
        if progress_every < 0:
            raise ValueError(
                f"progress_every must be >= 0, got {progress_every}"
            )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.progress_every = int(progress_every)
        self.progress_top_k = int(progress_top_k)
        self.progress: List[ProgressSnapshot] = []

    # -- span/event surface (delegates to the tracer) -----------------

    def span(self, name: str, **attrs: Any):
        """Open a nested trace span for the ``with`` block."""
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point trace event."""
        self.tracer.event(name, attrs)

    # -- annealing-loop hook ------------------------------------------

    def step_complete(
        self,
        step: int,
        temperature: float,
        current_cost: float,
        best_cost: float,
        moves: int,
        accepted: int,
        total_moves: int,
        total_accepted: int,
        elapsed: float,
        objective: Any = None,
        floorplan: Optional[Callable[[], Any]] = None,
    ) -> None:
        """One temperature step finished; record its signals.

        ``floorplan`` is a zero-argument callable producing the current
        floorplan, invoked only when a progress snapshot is due, top-
        density sampling is on *and* the objective has no committed
        columnar state to read instead -- the common step pays nothing
        for the capability.  Never touches any RNG.
        """
        rate = accepted / moves if moves else 0.0
        m = self.metrics
        m.observe("move_acceptance_rate", rate)
        m.gauge("temperature", temperature)
        m.gauge("current_cost", current_cost)
        m.gauge("best_cost", best_cost)
        self.tracer.event(
            "temperature_step",
            {
                "step": step,
                "temperature": temperature,
                "current_cost": current_cost,
                "best_cost": best_cost,
                "moves": moves,
                "accepted": accepted,
                "acceptance_rate": round(rate, 6),
            },
        )
        if self.progress_every and (step + 1) % self.progress_every == 0:
            densities = ()
            if (
                self.progress_top_k > 0
                and objective is not None
                and floorplan is not None
            ):
                densities = top_congestion_densities(
                    objective, floorplan, self.progress_top_k
                )
            snapshot = ProgressSnapshot(
                step=step,
                temperature=temperature,
                current_cost=current_cost,
                best_cost=best_cost,
                n_moves=total_moves,
                n_accepted=total_accepted,
                elapsed_seconds=elapsed,
                top_densities=densities,
            )
            self.progress.append(snapshot)
            self.tracer.progress("anneal", snapshot.to_json())

    # -- coordinator-side merging -------------------------------------

    def merge_result(self, result: Any, **label: Any) -> None:
        """Fold one delivered worker result into this observer.

        Collects the worker's progress snapshots (re-emitting each as a
        trace line labelled with ``**label``, e.g. ``seed=...``),
        merges its metrics-registry snapshot, and publishes its cache
        hit-rate gauges.
        """
        for snapshot in getattr(result, "progress", ()) or ():
            self.progress.append(snapshot)
            self.tracer.progress("worker", {**snapshot.to_json(), **label})
        worker_metrics = getattr(result, "metrics", None)
        if worker_metrics:
            self.metrics.merge_snapshot(worker_metrics)
        cache_stats = getattr(result, "cache_stats", None)
        if cache_stats:
            self.metrics.set_cache_gauges(cache_stats)

    def finalize(self) -> None:
        """Emit the aggregated metrics snapshot as one ``metric`` trace
        line and flush the tracer; call once, at end of run."""
        if self.tracer.enabled:
            self.tracer.metric("run_metrics", self.metrics.snapshot())
        self.tracer.flush()

    # -- timing helper -------------------------------------------------

    @staticmethod
    def now() -> float:
        """Monotonic seconds; the clock every hook timestamp uses."""
        return time.monotonic()


NULL_OBSERVER = RunObserver(tracer=NULL_TRACER, metrics=NULL_METRICS)
