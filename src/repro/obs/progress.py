"""Progress snapshots: the worker -> coordinator streaming payload.

Pool workers cannot stream live (a queue does not survive the pickle
boundary, and polling one would perturb timing-sensitive supervision),
so progress flows over the *existing* supervision seam: a worker
collects periodic :class:`ProgressSnapshot` records during its run,
they come home on the result object with everything else, and the
coordinator merges them into the trace and the per-job
:class:`~repro.engine.multistart.RunReport`.  Sequential runs stream
the same snapshots live into the tracer as they happen.

:class:`ObsPlan` is the picklable *recipe* shipped to workers -- how
often to snapshot (in temperature steps / rounds) and how many top
congestion densities to attach; the worker builds a fresh
:class:`~repro.obs.observe.RunObserver` from it.  Snapshot-time
congestion (:func:`top_congestion_densities`) only ever *reads* the
incremental pipeline's committed state (or evaluates the model on a
fresh pin assignment when there is none), so observing a walk can
never change it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["ProgressSnapshot", "ObsPlan", "top_congestion_densities"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """One periodic convergence sample of one annealing run.

    ``top_densities`` holds the run's hottest congestion-cell densities
    at snapshot time (empty when the objective has no congestion model
    or the plan disabled them) -- the predicted-congestion trajectory
    the Early Routability Assessment framing calls for.
    """

    step: int
    temperature: float
    current_cost: float
    best_cost: float
    n_moves: int
    n_accepted: int
    elapsed_seconds: float
    top_densities: Tuple[float, ...] = field(default=())

    def to_json(self) -> Dict[str, Any]:
        """A lossless JSON-serializable image of this snapshot."""
        return {
            "step": self.step,
            "temperature": self.temperature,
            "current_cost": self.current_cost,
            "best_cost": self.best_cost,
            "n_moves": self.n_moves,
            "n_accepted": self.n_accepted,
            "elapsed_seconds": self.elapsed_seconds,
            "top_densities": list(self.top_densities),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ProgressSnapshot":
        """Rebuild a snapshot from :meth:`to_json` output."""
        return cls(
            step=int(data["step"]),
            temperature=float(data["temperature"]),
            current_cost=float(data["current_cost"]),
            best_cost=float(data["best_cost"]),
            n_moves=int(data["n_moves"]),
            n_accepted=int(data["n_accepted"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            top_densities=tuple(
                float(d) for d in data.get("top_densities", ())
            ),
        )


@dataclass(frozen=True)
class ObsPlan:
    """Picklable worker-side observability recipe.

    ``progress_every`` is the snapshot cadence in temperature steps
    (annealing runs) or rounds (tempering sweeps); 0 disables
    collection entirely.  ``top_k`` is how many top congestion-cell
    densities each snapshot carries (0 skips the extra congestion
    evaluation).
    """

    progress_every: int = 0
    top_k: int = 3

    def __post_init__(self) -> None:
        if self.progress_every < 0:
            raise ValueError(
                f"progress_every must be >= 0, got {self.progress_every}"
            )
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")

    @property
    def enabled(self) -> bool:
        """Whether this plan collects anything at all."""
        return self.progress_every > 0

    def build_observer(self) -> Optional["RunObserver"]:
        """A fresh in-worker observer (None when the plan is off).

        The observer carries no tracer -- trace files belong to the
        coordinator process; the worker only collects snapshots and a
        metrics registry that ship home on the result.
        """
        if not self.enabled:
            return None
        from repro.obs.observe import RunObserver

        return RunObserver(
            progress_every=self.progress_every, progress_top_k=self.top_k
        )


def top_congestion_densities(objective, floorplan, k: int) -> Tuple[float, ...]:
    """The ``k`` hottest congestion-cell densities of one floorplan.

    ``floorplan`` may be the floorplan itself or a zero-argument
    callable producing it; the callable is only invoked on the slow
    path.  When the objective's incremental pipeline holds a committed
    columnar state -- which at snapshot time *is* the current floorplan
    (an accepted move promotes the candidate, a rejected one rolls
    back) -- the densities come straight from its placed-edge arrays
    through the model's cache-warm batched kernel; otherwise the model
    is evaluated on a fresh pin assignment.  Either way the pipeline's
    transaction state is never mutated, so calling this mid-anneal
    cannot perturb the walk.  Returns ``()`` when the objective has no
    congestion model, ``k`` is 0, or the evaluation fails (progress
    reporting must never kill the run it reports on).
    """
    model = getattr(objective, "congestion_model", None)
    if model is None or k <= 0:
        return ()
    try:
        committed = getattr(
            getattr(objective, "pipeline", None), "committed", None
        )
        dens_fn = getattr(model, "densities_arrays", None)
        if committed is not None and dens_fn is not None:
            densities = dens_fn(committed.chip, committed.edges)
            return tuple(
                float(d) for d in sorted(densities, reverse=True)[:k]
            )
        if callable(floorplan):
            floorplan = floorplan()
        from repro.pins import assign_pins

        assignment = assign_pins(
            floorplan, objective.netlist, objective.pin_grid_size
        )
        congestion_map = model.evaluate(
            floorplan.chip, assignment.two_pin_nets
        )
        densities = sorted(congestion_map.densities(), reverse=True)
        return tuple(densities[:k])
    except Exception:
        return ()
