"""Circuit model: modules, nets and their 2-pin decomposition.

The paper's problem instance (Section 2) is a set of rectangular modules
and a set of 2-pin nets; real benchmark circuits have multi-pin nets,
which the experiments decompose into 2-pin nets with a minimum spanning
tree over Manhattan distance (Section 5).  This package provides:

* :class:`~repro.netlist.module.Module` -- a hard rectangular block;
* :class:`~repro.netlist.net.Net` -- a multi-pin net over module names;
* :class:`~repro.netlist.net.TwoPinNet` -- a placed 2-pin net with the
  paper's type-I/type-II orientation classification;
* :class:`~repro.netlist.netlist.Netlist` -- the circuit container;
* :func:`~repro.netlist.decompose.decompose_to_two_pin` -- the MST
  decomposition;
* :mod:`~repro.netlist.generators` -- seeded synthetic circuits.
"""

from repro.netlist.module import Module
from repro.netlist.net import Net, NetType, TwoPinNet
from repro.netlist.netlist import Netlist
from repro.netlist.decompose import (
    batched_mst_edges,
    decompose_to_two_pin,
    mst_edges,
    star_decomposition,
)
from repro.netlist.edge_arrays import (
    TwoPinArrays,
    classify_edges,
    nets_to_arrays,
)
from repro.netlist.soft import SoftModule, soften
from repro.netlist.generators import (
    random_circuit,
    clustered_circuit,
    grid_circuit,
)

__all__ = [
    "Module",
    "Net",
    "NetType",
    "TwoPinNet",
    "Netlist",
    "SoftModule",
    "soften",
    "TwoPinArrays",
    "nets_to_arrays",
    "classify_edges",
    "batched_mst_edges",
    "decompose_to_two_pin",
    "mst_edges",
    "star_decomposition",
    "random_circuit",
    "clustered_circuit",
    "grid_circuit",
]
