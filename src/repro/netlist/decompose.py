"""Multi-pin to 2-pin net decomposition.

The paper's congestion model is defined on 2-pin nets; Section 5
decomposes each multi-pin net "into several 2-pin nets by minimum
spanning tree".  We build the MST over the pins' Manhattan distances
with Prim's algorithm (dense O(k^2), which beats heap-based variants for
the small per-net pin counts of floorplan netlists).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.geometry import Point
from repro.netlist.net import Net, TwoPinNet

__all__ = [
    "mst_edges",
    "batched_mst_edges",
    "decompose_to_two_pin",
    "star_decomposition",
]


def mst_edges(points: Sequence[Point]) -> List[Tuple[int, int]]:
    """Minimum spanning tree of ``points`` under Manhattan distance.

    Returns ``len(points) - 1`` index pairs ``(i, j)`` with ``i < j``.
    Ties are broken deterministically by scan order, so decomposition is
    reproducible across runs.
    """
    k = len(points)
    if k < 2:
        return []
    if k == 2:
        # The overwhelmingly common case in floorplan netlists; the
        # single edge needs no Prim bookkeeping.
        return [(0, 1)]
    in_tree = [False] * k
    best_dist = [float("inf")] * k
    best_from = [0] * k
    in_tree[0] = True
    for j in range(1, k):
        best_dist[j] = points[0].manhattan_distance(points[j])
    edges: List[Tuple[int, int]] = []
    for _ in range(k - 1):
        nxt = -1
        nxt_d = float("inf")
        for j in range(k):
            if not in_tree[j] and best_dist[j] < nxt_d:
                nxt, nxt_d = j, best_dist[j]
        a, b = best_from[nxt], nxt
        edges.append((min(a, b), max(a, b)))
        in_tree[nxt] = True
        for j in range(k):
            if not in_tree[j]:
                d = points[nxt].manhattan_distance(points[j])
                if d < best_dist[j]:
                    best_dist[j] = d
                    best_from[j] = nxt
    return edges


def batched_mst_edges(
    xs: np.ndarray, ys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Prim MSTs of many same-size point sets at once.

    ``xs`` / ``ys`` have shape ``(m, k)``: row ``r`` holds the ``k``
    pin coordinates of one net.  Returns ``(i, j)`` index arrays of
    shape ``(m, k - 1)`` with ``i < j`` columnwise, emitting edges in
    the same order -- and breaking distance ties the same way -- as
    :func:`mst_edges` run on each row (``argmin`` picks the first
    minimum exactly like the scalar scan; updates use the same strict
    ``<``).  The annealer's delta path uses this to re-decompose every
    dirty multi-pin net without per-net Python.
    """
    m, k = xs.shape
    if k < 2:
        return (
            np.empty((m, 0), dtype=np.intp),
            np.empty((m, 0), dtype=np.intp),
        )
    dist = np.abs(xs[:, :, None] - xs[:, None, :]) + np.abs(
        ys[:, :, None] - ys[:, None, :]
    )
    rows = np.arange(m)
    in_tree = np.zeros((m, k), dtype=bool)
    in_tree[:, 0] = True
    best_dist = dist[:, 0, :].copy()
    best_from = np.zeros((m, k), dtype=np.intp)
    out_i = np.empty((m, k - 1), dtype=np.intp)
    out_j = np.empty((m, k - 1), dtype=np.intp)
    for t in range(k - 1):
        masked = np.where(in_tree, np.inf, best_dist)
        nxt = masked.argmin(axis=1)
        a = best_from[rows, nxt]
        out_i[:, t] = np.minimum(a, nxt)
        out_j[:, t] = np.maximum(a, nxt)
        in_tree[rows, nxt] = True
        d = dist[rows, nxt, :]
        update = ~in_tree & (d < best_dist)
        best_dist = np.where(update, d, best_dist)
        best_from = np.where(update, nxt[:, None], best_from)
    return out_i, out_j


def decompose_to_two_pin(
    net: Net,
    pin_locations: Mapping[str, Point],
) -> List[TwoPinNet]:
    """Decompose one placed net into 2-pin nets along its pin MST.

    ``pin_locations`` maps each terminal (module name) of ``net`` to its
    pin coordinate in the current floorplan.  Each MST edge becomes a
    :class:`TwoPinNet` named ``<net>#<k>``, inheriting the net's weight
    and recording the source net for traceability.

    Two terminals placed at the *same* coordinate still produce an edge
    (a zero-length degenerate net); the congestion models treat it as a
    single-cell crossing with probability 1.
    """
    missing = [t for t in net.terminals if t not in pin_locations]
    if missing:
        raise KeyError(
            f"net {net.name!r}: no pin locations for terminals {missing}"
        )
    points = [pin_locations[t] for t in net.terminals]
    out: List[TwoPinNet] = []
    for k, (i, j) in enumerate(mst_edges(points)):
        out.append(
            TwoPinNet(
                name=f"{net.name}#{k}",
                p1=points[i],
                p2=points[j],
                weight=net.weight,
                source_net=net.name,
            )
        )
    return out


def star_decomposition(
    net: Net,
    pin_locations: Mapping[str, Point],
) -> List[TwoPinNet]:
    """Decompose one placed net as a star around its best hub.

    The hub is the terminal minimizing the total Manhattan distance to
    the others (the 1-median over the pins).  Stars over-estimate
    congestion near the hub relative to the paper's MST decomposition;
    the decomposition ablation quantifies the difference.
    """
    missing = [t for t in net.terminals if t not in pin_locations]
    if missing:
        raise KeyError(
            f"net {net.name!r}: no pin locations for terminals {missing}"
        )
    points = {t: pin_locations[t] for t in net.terminals}
    hub = min(
        net.terminals,
        key=lambda t: sum(
            points[t].manhattan_distance(points[u])
            for u in net.terminals
            if u != t
        ),
    )
    out: List[TwoPinNet] = []
    k = 0
    for t in net.terminals:
        if t == hub:
            continue
        out.append(
            TwoPinNet(
                name=f"{net.name}#{k}",
                p1=points[hub],
                p2=points[t],
                weight=net.weight,
                source_net=net.name,
            )
        )
        k += 1
    return out


def decompose_all(
    nets: Sequence[Net],
    pin_locations_by_net: Mapping[str, Mapping[str, Point]],
) -> List[TwoPinNet]:
    """Decompose every net of a placed circuit.

    ``pin_locations_by_net`` maps net name -> (terminal -> location);
    pin positions may differ per net when a pin-assignment scheme
    spreads a module's pins (intersection-to-intersection does).
    """
    out: List[TwoPinNet] = []
    for net in nets:
        out.extend(decompose_to_two_pin(net, pin_locations_by_net[net.name]))
    return out
