"""The circuit container."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import NetlistValidationError
from repro.netlist.module import Module
from repro.netlist.net import Net

__all__ = ["Netlist"]


class Netlist:
    """A named circuit: modules plus the nets that connect them.

    The container validates eagerly on construction -- duplicate module
    names, non-positive module dimensions (enforced by
    :class:`~repro.netlist.module.Module` itself), nets referencing
    unknown modules, and nets with fewer than two pins (enforced by
    :class:`~repro.netlist.net.Net`) all raise
    :class:`~repro.errors.NetlistValidationError` naming the offending
    entity -- so downstream layers can index without checking and a
    malformed input file fails with an actionable message instead of a
    deep ``KeyError``.  Iteration orders are deterministic (insertion
    order), which keeps every experiment reproducible for a fixed seed.
    """

    def __init__(
        self,
        name: str,
        modules: Iterable[Module],
        nets: Iterable[Net] = (),
    ):
        self.name = name
        self._modules: Dict[str, Module] = {}
        for m in modules:
            if m.name in self._modules:
                raise NetlistValidationError(
                    f"duplicate module name {m.name!r} in netlist {name!r}"
                )
            if m.width <= 0 or m.height <= 0:
                # Unreachable through Module's own validation; guards
                # hand-built Module-likes arriving via duck typing.
                raise NetlistValidationError(
                    f"module {m.name!r} has zero/negative area "
                    f"({m.width} x {m.height}) in netlist {name!r}"
                )
            self._modules[m.name] = m
        self._nets: Dict[str, Net] = {}
        for net in nets:
            self.add_net(net)
        if not self._modules:
            raise NetlistValidationError(f"netlist {name!r} has no modules")

    # -- construction ----------------------------------------------------

    def add_net(self, net: Net) -> None:
        """Add a net, validating its terminals."""
        if net.name in self._nets:
            raise NetlistValidationError(
                f"duplicate net name {net.name!r} in netlist {self.name!r}"
            )
        if len(net.terminals) < 2:
            raise NetlistValidationError(
                f"net {net.name!r} has fewer than 2 pins "
                f"({len(net.terminals)}) in netlist {self.name!r}"
            )
        missing = [t for t in net.terminals if t not in self._modules]
        if missing:
            raise NetlistValidationError(
                f"net {net.name!r} references unknown modules {missing} "
                f"in netlist {self.name!r}"
            )
        self._nets[net.name] = net

    # -- access ------------------------------------------------------------

    @property
    def modules(self) -> Tuple[Module, ...]:
        return tuple(self._modules.values())

    @property
    def nets(self) -> Tuple[Net, ...]:
        return tuple(self._nets.values())

    @property
    def module_names(self) -> Tuple[str, ...]:
        return tuple(self._modules)

    def module(self, name: str) -> Module:
        """Look up a module by name (raises ``KeyError`` if absent)."""
        try:
            return self._modules[name]
        except KeyError:
            raise KeyError(f"no module named {name!r} in netlist {self.name!r}")

    def net(self, name: str) -> Net:
        """Look up a net by name (raises ``KeyError`` if absent)."""
        try:
            return self._nets[name]
        except KeyError:
            raise KeyError(f"no net named {name!r} in netlist {self.name!r}")

    def nets_of_module(self, module_name: str) -> List[Net]:
        """All nets with a terminal on ``module_name``."""
        self.module(module_name)  # raise on unknown module
        return [n for n in self._nets.values() if module_name in n.terminals]

    # -- statistics ----------------------------------------------------

    @property
    def n_modules(self) -> int:
        return len(self._modules)

    @property
    def n_nets(self) -> int:
        return len(self._nets)

    @property
    def total_module_area(self) -> float:
        return sum(m.area for m in self._modules.values())

    @property
    def n_pins(self) -> int:
        """Total terminal count over all nets."""
        return sum(n.degree for n in self._nets.values())

    def degree_histogram(self) -> Mapping[int, int]:
        """Net degree -> count, for workload characterisation."""
        hist: Dict[int, int] = {}
        for n in self._nets.values():
            hist[n.degree] = hist.get(n.degree, 0) + 1
        return dict(sorted(hist.items()))

    def with_nets(self, nets: Iterable[Net], name: Optional[str] = None) -> "Netlist":
        """A copy of this netlist with a replacement net set."""
        return Netlist(name or self.name, self._modules.values(), nets)

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {self.n_modules} modules, "
            f"{self.n_nets} nets)"
        )
