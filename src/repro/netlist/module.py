"""Hard rectangular modules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetlistValidationError

__all__ = ["Module"]


@dataclass(frozen=True)
class Module:
    """A hard block with a fixed outline (micrometres).

    The floorplanner may rotate a module by 90 degrees
    (:meth:`rotated`), which is the only shape freedom a hard block has.
    Names are the identity used by nets and by placements; they must be
    unique within a :class:`~repro.netlist.netlist.Netlist`.
    """

    name: str
    width: float
    height: float

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistValidationError("module name must be non-empty")
        if self.width <= 0 or self.height <= 0:
            raise NetlistValidationError(
                f"module {self.name!r} needs positive dimensions "
                f"(zero/negative area), got {self.width} x {self.height}"
            )

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        """height / width."""
        return self.height / self.width

    def rotated(self) -> "Module":
        """The same block turned 90 degrees."""
        return Module(self.name, self.height, self.width)

    def shapes(self, allow_rotation: bool = True):
        """The realizable ``(width, height)`` outlines, widest first.

        Square blocks yield a single shape even when rotation is
        allowed, so shape-curve code never carries duplicates.
        """
        if allow_rotation and self.width != self.height:
            first = (max(self.width, self.height), min(self.width, self.height))
            second = (first[1], first[0])
            return [first, second]
        return [(self.width, self.height)]
