"""Nets: multi-pin logical nets and placed 2-pin nets.

A :class:`Net` is topological -- a named set of module terminals.  A
:class:`TwoPinNet` is geometric: two pin locations produced after
placement and MST decomposition, carrying the paper's type-I/type-II
classification (Section 2, Figure 1) and the routing range that the
congestion models evaluate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import NetlistValidationError
from repro.geometry import Point, Rect

__all__ = ["Net", "NetType", "TwoPinNet"]


@dataclass(frozen=True)
class Net:
    """A logical net connecting two or more module terminals.

    ``weight`` multiplies the net's contribution to wirelength and
    congestion (criticality weighting); the paper's experiments use
    uniform weights.
    """

    name: str
    terminals: Tuple[str, ...]
    weight: float = 1.0

    def __init__(self, name: str, terminals, weight: float = 1.0):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "terminals", tuple(terminals))
        object.__setattr__(self, "weight", float(weight))
        if not self.name:
            raise NetlistValidationError("net name must be non-empty")
        if len(self.terminals) < 2:
            raise NetlistValidationError(
                f"net {self.name!r} needs at least 2 terminals (pins), got "
                f"{len(self.terminals)}"
            )
        if len(set(self.terminals)) != len(self.terminals):
            raise NetlistValidationError(
                f"net {self.name!r} lists a terminal twice"
            )
        if self.weight <= 0:
            raise NetlistValidationError(
                f"net {self.name!r} weight must be positive"
            )

    @property
    def degree(self) -> int:
        return len(self.terminals)

    @property
    def is_two_pin(self) -> bool:
        return self.degree == 2


class NetType(enum.Enum):
    """Orientation classes of a placed 2-pin net (paper Figure 1).

    * ``TYPE_I``: one pin is lower-left of the other (routes go up-right).
    * ``TYPE_II``: one pin is upper-left of the other (routes go
      down-right).
    * ``DEGENERATE``: pins share an x or y coordinate (the routing range
      is a segment or point -- every shortest route crosses the same
      cells with probability 1).
    """

    TYPE_I = "I"
    TYPE_II = "II"
    DEGENERATE = "degenerate"


@dataclass(frozen=True)
class TwoPinNet:
    """A placed 2-pin net.

    ``p1`` is always the left pin (smaller x; ties broken by smaller y),
    matching the paper's convention that pin 1 is "on the other pin's
    left".  The routing range is the pins' bounding box; all shortest
    Manhattan routes live inside it (Section 2).
    """

    name: str
    p1: Point
    p2: Point
    weight: float = 1.0
    source_net: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if (self.p2.x, self.p2.y) < (self.p1.x, self.p1.y):
            p1, p2 = self.p2, self.p1
            object.__setattr__(self, "p1", p1)
            object.__setattr__(self, "p2", p2)
        if self.weight <= 0:
            raise ValueError(f"net {self.name!r} weight must be positive")

    @property
    def net_type(self) -> NetType:
        if self.p1.x == self.p2.x or self.p1.y == self.p2.y:
            return NetType.DEGENERATE
        if self.p1.y < self.p2.y:
            return NetType.TYPE_I
        return NetType.TYPE_II

    @property
    def routing_range(self) -> Rect:
        return Rect.from_points(self.p1, self.p2)

    @property
    def manhattan_length(self) -> float:
        return self.p1.manhattan_distance(self.p2)

    def translated(self, dx: float, dy: float) -> "TwoPinNet":
        """A copy with both pins shifted by ``(dx, dy)``."""
        return TwoPinNet(
            self.name,
            self.p1.translated(dx, dy),
            self.p2.translated(dx, dy),
            self.weight,
            self.source_net,
        )
