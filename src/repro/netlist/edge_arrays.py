"""Flat array representation of placed 2-pin nets.

The annealing hot loop evaluates congestion thousands of times per
second; materializing a :class:`~repro.netlist.net.TwoPinNet` object
per edge per evaluation (plus re-reading its attributes inside the
congestion kernels) costs more than the kernels' arithmetic.
:class:`TwoPinArrays` is the struct-of-arrays equivalent: endpoint
coordinate vectors plus weights, in edge order.  Endpoints need *not*
be in the lexicographic ``p1 <= p2`` order :class:`TwoPinNet` enforces
-- every consumer normalizes internally (see :func:`classify_edges`),
so producers can fill the arrays straight from pin coordinates.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence, Tuple

import numpy as np

from repro.netlist.net import TwoPinNet

__all__ = ["TwoPinArrays", "nets_to_arrays", "classify_edges"]


class TwoPinArrays(NamedTuple):
    """Placed 2-pin nets as parallel coordinate/weight vectors.

    ``p1x[k], p1y[k]`` and ``p2x[k], p2y[k]`` are edge ``k``'s pin
    coordinates (in either order) and ``weights[k]`` its net weight.
    """

    p1x: np.ndarray
    p1y: np.ndarray
    p2x: np.ndarray
    p2y: np.ndarray
    weights: np.ndarray

    def __len__(self) -> int:
        return len(self.p1x)


def nets_to_arrays(nets: Sequence[TwoPinNet]) -> TwoPinArrays:
    """Unpack :class:`TwoPinNet` objects into a :class:`TwoPinArrays`."""
    n = len(nets)
    p1x = np.empty(n)
    p1y = np.empty(n)
    p2x = np.empty(n)
    p2y = np.empty(n)
    weights = np.empty(n)
    for k, net in enumerate(nets):
        p1 = net.p1
        p2 = net.p2
        p1x[k] = p1.x
        p1y[k] = p1.y
        p2x[k] = p2.x
        p2y[k] = p2.y
        weights[k] = net.weight
    return TwoPinArrays(p1x, p1y, p2x, p2y, weights)


def classify_edges(arr: TwoPinArrays) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :attr:`TwoPinNet.net_type`: ``(type_two, degenerate)``.

    Replicates the scalar classification exactly: an edge is degenerate
    when its pins share an x or y coordinate; otherwise, after ordering
    the pins lexicographically (x then y, as ``TwoPinNet.__post_init__``
    does), type II means the first pin sits *above* the second.
    """
    degenerate = (arr.p1x == arr.p2x) | (arr.p1y == arr.p2y)
    swap = (arr.p1x > arr.p2x) | ((arr.p1x == arr.p2x) & (arr.p1y > arr.p2y))
    lo_y = np.where(swap, arr.p2y, arr.p1y)
    hi_y = np.where(swap, arr.p1y, arr.p2y)
    type_two = ~degenerate & (lo_y > hi_y)
    return type_two, degenerate
