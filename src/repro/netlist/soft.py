"""Soft modules: fixed area, flexible outline.

The paper floorplans hard MCNC blocks, but the Wong-Liu machinery this
library implements handles *soft* modules (fixed area, bounded aspect
ratio) with no change beyond richer leaf shape lists.  A
:class:`SoftModule` discretizes its feasible aspect-ratio interval into
a small set of candidate outlines; the shape-curve packer then picks
per-instance outlines exactly as it picks hard-module rotations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.netlist.module import Module
from repro.netlist.netlist import Netlist

__all__ = ["SoftModule", "soften"]


@dataclass(frozen=True)
class SoftModule:
    """A module with fixed area and a feasible aspect-ratio range.

    ``min_aspect``/``max_aspect`` bound height/width.  ``n_shapes``
    candidate outlines are sampled geometrically over the interval
    (geometric spacing keeps relative dimension steps uniform).
    Duck-type-compatible with :class:`Module` everywhere the library
    needs a module: ``name``, ``area``, ``width``/``height`` (the
    square-most feasible outline) and ``shapes()``.
    """

    name: str
    area: float
    min_aspect: float = 0.5
    max_aspect: float = 2.0
    n_shapes: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("module name must be non-empty")
        if self.area <= 0:
            raise ValueError(f"module {self.name!r} needs positive area")
        if not 0 < self.min_aspect <= self.max_aspect:
            raise ValueError(
                f"module {self.name!r}: need 0 < min_aspect <= max_aspect, "
                f"got [{self.min_aspect}, {self.max_aspect}]"
            )
        if self.n_shapes < 1:
            raise ValueError(f"module {self.name!r}: n_shapes must be >= 1")

    def _outline(self, aspect: float) -> Tuple[float, float]:
        width = math.sqrt(self.area / aspect)
        return width, self.area / width

    @property
    def _default_aspect(self) -> float:
        """The feasible aspect closest to square."""
        return min(max(1.0, self.min_aspect), self.max_aspect)

    @property
    def width(self) -> float:
        return self._outline(self._default_aspect)[0]

    @property
    def height(self) -> float:
        return self._outline(self._default_aspect)[1]

    @property
    def aspect_ratio(self) -> float:
        return self._default_aspect

    def rotated(self) -> "SoftModule":
        """Rotation swaps the aspect bounds (h/w -> w/h)."""
        return SoftModule(
            self.name,
            self.area,
            1.0 / self.max_aspect,
            1.0 / self.min_aspect,
            self.n_shapes,
        )

    def shapes(self, allow_rotation: bool = True) -> List[Tuple[float, float]]:
        """Candidate ``(width, height)`` outlines.

        With rotation allowed the effective aspect interval is the
        union of ``[min, max]`` and its reciprocal.
        """
        lo, hi = self.min_aspect, self.max_aspect
        if allow_rotation:
            lo = min(lo, 1.0 / hi)
            hi = max(hi, 1.0 / self.min_aspect)
        if self.n_shapes == 1 or lo == hi:
            return [self._outline(lo)]
        ratio = (hi / lo) ** (1.0 / (self.n_shapes - 1))
        out = []
        aspect = lo
        for _ in range(self.n_shapes):
            out.append(self._outline(aspect))
            aspect *= ratio
        return out


def soften(
    netlist: Netlist,
    min_aspect: float = 0.5,
    max_aspect: float = 2.0,
    n_shapes: int = 8,
) -> Netlist:
    """A copy of ``netlist`` with every hard module made soft.

    Each soft module keeps its original area; the hard outline is
    forgotten.  Useful for studying how much area/congestion the hard
    outlines cost (the soft-vs-hard bench).
    """
    soft_modules = [
        SoftModule(m.name, m.area, min_aspect, max_aspect, n_shapes)
        for m in netlist.modules
    ]
    return Netlist(netlist.name + "_soft", soft_modules, netlist.nets)
