"""Seeded synthetic circuit generators.

Three families cover the workloads the test suite and the experiments
need beyond the MCNC-like circuits in :mod:`repro.data.mcnc`:

* :func:`random_circuit` -- i.i.d. module sizes, uniform random nets;
* :func:`clustered_circuit` -- modules grouped into clusters with
  intra-cluster connection bias, which is what makes congestion
  *localized* (the regime the Irregular-Grid is designed for);
* :func:`grid_circuit` -- near-uniform modules with mesh connectivity,
  the adversarial near-homogeneous case where irregular and fixed grids
  should agree.

All generators are deterministic functions of their ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.netlist.module import Module
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist

__all__ = ["random_circuit", "clustered_circuit", "grid_circuit"]


def _module_sizes(
    rng: random.Random,
    n_modules: int,
    mean_area: float,
    area_spread: float,
    max_aspect: float,
) -> List[Module]:
    modules = []
    for i in range(n_modules):
        # Log-uniform area spread keeps all areas positive and gives the
        # long-tailed size mix real block-level designs have.
        area = mean_area * (area_spread ** rng.uniform(-1.0, 1.0))
        aspect = rng.uniform(1.0, max_aspect)
        if rng.random() < 0.5:
            aspect = 1.0 / aspect
        width = (area / aspect) ** 0.5
        height = area / width
        modules.append(Module(f"m{i}", round(width, 3), round(height, 3)))
    return modules


def _sample_degree(rng: random.Random, max_degree: int) -> int:
    """Net degree with the empirical heavy-2-pin mix of real netlists
    (roughly: 60% 2-pin, 25% 3-pin, rest spread up to ``max_degree``)."""
    u = rng.random()
    if u < 0.60 or max_degree == 2:
        return 2
    if u < 0.85 or max_degree == 3:
        return 3
    return rng.randint(4, max_degree)


def random_circuit(
    n_modules: int,
    n_nets: int,
    seed: int = 0,
    mean_area: float = 40_000.0,
    area_spread: float = 4.0,
    max_aspect: float = 3.0,
    max_degree: int = 5,
    name: Optional[str] = None,
) -> Netlist:
    """A circuit with uniformly random connectivity.

    ``mean_area`` is per-module in square micrometres (default ~200 µm
    square blocks).
    """
    if n_modules < 2:
        raise ValueError("need at least 2 modules")
    rng = random.Random(seed)
    modules = _module_sizes(rng, n_modules, mean_area, area_spread, max_aspect)
    names = [m.name for m in modules]
    nets = []
    for j in range(n_nets):
        degree = min(_sample_degree(rng, max_degree), n_modules)
        terminals = rng.sample(names, degree)
        nets.append(Net(f"n{j}", terminals))
    return Netlist(name or f"random_{n_modules}m_{n_nets}n_s{seed}", modules, nets)


def clustered_circuit(
    n_modules: int,
    n_nets: int,
    n_clusters: int = 4,
    intra_cluster_prob: float = 0.8,
    seed: int = 0,
    mean_area: float = 40_000.0,
    area_spread: float = 4.0,
    max_aspect: float = 3.0,
    max_degree: int = 5,
    name: Optional[str] = None,
) -> Netlist:
    """A circuit whose nets prefer to stay within module clusters.

    With probability ``intra_cluster_prob`` a net draws all its
    terminals from one cluster; otherwise it spans clusters.  High
    intra-cluster probability concentrates routing demand and produces
    the hot spots Figure 4 of the paper motivates.
    """
    if not 1 <= n_clusters <= n_modules:
        raise ValueError(
            f"n_clusters must be in [1, n_modules], got {n_clusters}"
        )
    if not 0.0 <= intra_cluster_prob <= 1.0:
        raise ValueError("intra_cluster_prob must be in [0, 1]")
    rng = random.Random(seed)
    modules = _module_sizes(rng, n_modules, mean_area, area_spread, max_aspect)
    names = [m.name for m in modules]
    clusters: List[List[str]] = [[] for _ in range(n_clusters)]
    for i, nm in enumerate(names):
        clusters[i % n_clusters].append(nm)
    nets = []
    for j in range(n_nets):
        degree = min(_sample_degree(rng, max_degree), n_modules)
        cluster = clusters[rng.randrange(n_clusters)]
        if rng.random() < intra_cluster_prob and len(cluster) >= degree:
            terminals = rng.sample(cluster, degree)
        else:
            terminals = rng.sample(names, degree)
        nets.append(Net(f"n{j}", terminals))
    return Netlist(
        name or f"clustered_{n_modules}m_{n_nets}n_s{seed}", modules, nets
    )


def grid_circuit(
    rows: int,
    cols: int,
    module_size: float = 200.0,
    size_jitter: float = 0.1,
    seed: int = 0,
    name: Optional[str] = None,
) -> Netlist:
    """A mesh: one module per (row, col), nets between grid neighbours.

    Near-uniform routing demand everywhere -- the case where a fixed
    grid wastes no effort and the Irregular-Grid's advantage should
    vanish; used by the ablation benches as a control workload.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    if rows * cols < 2:
        raise ValueError("mesh needs at least 2 modules")
    rng = random.Random(seed)
    modules = []
    for r in range(rows):
        for c in range(cols):
            w = module_size * (1.0 + rng.uniform(-size_jitter, size_jitter))
            h = module_size * (1.0 + rng.uniform(-size_jitter, size_jitter))
            modules.append(Module(f"m{r}_{c}", round(w, 3), round(h, 3)))
    nets = []
    k = 0
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                nets.append(Net(f"n{k}", (f"m{r}_{c}", f"m{r}_{c + 1}")))
                k += 1
            if r + 1 < rows:
                nets.append(Net(f"n{k}", (f"m{r}_{c}", f"m{r + 1}_{c}")))
                k += 1
    return Netlist(name or f"grid_{rows}x{cols}_s{seed}", modules, nets)
