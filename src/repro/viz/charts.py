"""Minimal SVG line charts for experiment figures.

Dependency-free plotting sufficient for the paper's Figure 8 and
Figure 9 style comparisons: multiple named series over a shared x axis,
automatic scaling, axis ticks, a legend, and optional per-series
normalization (the paper rescales its curves to compare slopes --
``normalize=True`` does that honestly by min-max mapping each series to
[0, 1]).
"""

from __future__ import annotations

import html
from typing import List, Mapping, Optional, Sequence

__all__ = ["line_chart_svg"]

_COLORS = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
)

_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 36
_MARGIN_BOTTOM = 44


def line_chart_svg(
    series: Mapping[str, Sequence[float]],
    x_values: Optional[Sequence[float]] = None,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 720,
    height: int = 420,
    normalize: bool = False,
) -> str:
    """Render named series as an SVG line chart.

    All series must share a length; ``x_values`` defaults to
    ``1..n``.  With ``normalize=True`` every series is min-max scaled
    to [0, 1] before plotting (shape comparison across different
    units, as in the paper's Figure 9).
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    n = lengths.pop()
    if n < 2:
        raise ValueError("series need at least two points")
    if x_values is None:
        x_values = list(range(1, n + 1))
    if len(x_values) != n:
        raise ValueError("x_values length does not match the series")

    plotted = {}
    for name, values in series.items():
        vals = [float(v) for v in values]
        if normalize:
            lo, hi = min(vals), max(vals)
            span = hi - lo
            vals = [0.5 if span == 0 else (v - lo) / span for v in vals]
        plotted[name] = vals

    x_lo, x_hi = min(x_values), max(x_values)
    y_lo = min(min(v) for v in plotted.values())
    y_hi = max(max(v) for v in plotted.values())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(x: float) -> float:
        return _MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return _MARGIN_TOP + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">'
    ]
    parts.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-size="14">{html.escape(title)}</text>'
        )

    # Axes.
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{sy(y_lo)}" x2="{sx(x_hi)}" '
        f'y2="{sy(y_lo)}" stroke="#333"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{sy(y_lo)}" x2="{_MARGIN_LEFT}" '
        f'y2="{sy(y_hi)}" stroke="#333"/>'
    )
    # Ticks: 5 per axis.
    for k in range(5):
        xv = x_lo + (x_hi - x_lo) * k / 4
        yv = y_lo + (y_hi - y_lo) * k / 4
        parts.append(
            f'<text x="{sx(xv):.1f}" y="{sy(y_lo) + 16:.1f}" '
            f'text-anchor="middle">{xv:g}</text>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 6}" y="{sy(yv) + 4:.1f}" '
            f'text-anchor="end">{yv:.3g}</text>'
        )
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{sy(yv):.1f}" x2="{sx(x_hi):.1f}" '
            f'y2="{sy(yv):.1f}" stroke="#eee"/>'
        )
    if x_label:
        parts.append(
            f'<text x="{(_MARGIN_LEFT + width - _MARGIN_RIGHT) / 2}" '
            f'y="{height - 8}" text-anchor="middle">'
            f"{html.escape(x_label)}</text>"
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{(_MARGIN_TOP + height - _MARGIN_BOTTOM) / 2}" '
            f'text-anchor="middle" transform="rotate(-90 14 '
            f'{(_MARGIN_TOP + height - _MARGIN_BOTTOM) / 2})">'
            f"{html.escape(y_label)}</text>"
        )

    # Series.
    for idx, (name, vals) in enumerate(plotted.items()):
        color = _COLORS[idx % len(_COLORS)]
        points = " ".join(
            f"{sx(x):.2f},{sy(v):.2f}" for x, v in zip(x_values, vals)
        )
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'points="{points}"/>'
        )
        for x, v in zip(x_values, vals):
            parts.append(
                f'<circle cx="{sx(x):.2f}" cy="{sy(v):.2f}" r="2.5" '
                f'fill="{color}"/>'
            )
        # Legend entry.
        ly = _MARGIN_TOP + 14 * idx
        lx = width - _MARGIN_RIGHT - 150
        parts.append(
            f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" y2="{ly}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{lx + 24}" y="{ly + 4}">{html.escape(name)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)
