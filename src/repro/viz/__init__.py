"""Rendering: ASCII for terminals and logs, SVG for reports."""

from repro.viz.ascii_art import (
    render_congestion_ascii,
    render_floorplan_ascii,
    render_series_ascii,
)
from repro.viz.svg import floorplan_svg, congestion_svg, irgrid_svg
from repro.viz.charts import line_chart_svg

__all__ = [
    "render_floorplan_ascii",
    "render_congestion_ascii",
    "render_series_ascii",
    "floorplan_svg",
    "congestion_svg",
    "irgrid_svg",
    "line_chart_svg",
]
