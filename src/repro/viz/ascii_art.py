"""Terminal rendering of floorplans and congestion maps.

Deliberately dependency-free: fixed-pitch character rasters good enough
to eyeball a packing or a hotspot in CI logs and doctest examples.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.congestion.base import CongestionMap
from repro.floorplan import Floorplan

__all__ = [
    "render_floorplan_ascii",
    "render_congestion_ascii",
    "render_series_ascii",
]

# Density ramp from cold to hot.
_RAMP = " .:-=+*#%@"


def render_floorplan_ascii(floorplan: Floorplan, width: int = 72) -> str:
    """Raster the floorplan; each module fills its outline with the
    first letter of its name, with ``#`` marking boundary collisions.

    ``width`` is the output character width; height follows the chip's
    aspect ratio (halved, since terminal cells are ~2x taller than
    wide).
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    chip = floorplan.chip
    if chip.width <= 0 or chip.height <= 0:
        raise ValueError("cannot render a degenerate chip")
    height = max(2, int(round(width * (chip.height / chip.width) * 0.5)))
    raster: List[List[str]] = [[" "] * width for _ in range(height)]
    for name, rect in floorplan.placements.items():
        c0 = int((rect.x_lo - chip.x_lo) / chip.width * width)
        c1 = int((rect.x_hi - chip.x_lo) / chip.width * width)
        r0 = int((rect.y_lo - chip.y_lo) / chip.height * height)
        r1 = int((rect.y_hi - chip.y_lo) / chip.height * height)
        c1 = min(max(c1, c0 + 1), width)
        r1 = min(max(r1, r0 + 1), height)
        fill = name[-1] if name[-1].isalnum() else name[0]
        for r in range(r0, r1):
            for c in range(c0, c1):
                cell = raster[r][c]
                raster[r][c] = fill if cell == " " else "#"
    # y grows upward on chips, downward on terminals: flip rows.
    lines = ["".join(row) for row in reversed(raster)]
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + line + "|" for line in lines] + [border])


def render_congestion_ascii(congestion_map: CongestionMap, width: int = 72) -> str:
    """Raster a congestion map as a density heat map.

    Each character samples the density of the cell under its center,
    normalized to the map's maximum; the ramp runs ``' '`` (cold) to
    ``'@'`` (hot).  Works for both fixed grids and IR-grids.
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    chip = congestion_map.chip
    if chip.width <= 0 or chip.height <= 0:
        raise ValueError("cannot render a degenerate chip")
    height = max(2, int(round(width * (chip.height / chip.width) * 0.5)))
    peak = congestion_map.max_density
    raster: List[List[str]] = [[" "] * width for _ in range(height)]
    if peak > 0:
        for cell in congestion_map.cells:
            level = cell.density / peak
            char = _RAMP[min(int(level * (len(_RAMP) - 1) + 0.5), len(_RAMP) - 1)]
            if char == " ":
                continue
            rect = cell.rect
            c0 = int((rect.x_lo - chip.x_lo) / chip.width * width)
            c1 = int((rect.x_hi - chip.x_lo) / chip.width * width)
            r0 = int((rect.y_lo - chip.y_lo) / chip.height * height)
            r1 = int((rect.y_hi - chip.y_lo) / chip.height * height)
            c1 = min(max(c1, c0 + 1), width)
            r1 = min(max(r1, r0 + 1), height)
            for r in range(r0, r1):
                for c in range(c0, c1):
                    raster[r][c] = char
    lines = ["".join(row) for row in reversed(raster)]
    border = "+" + "-" * width + "+"
    legend = f"density ramp '{_RAMP}' | peak density {peak:.4g}"
    return "\n".join(
        [border] + ["|" + line + "|" for line in lines] + [border, legend]
    )


def render_series_ascii(
    values: Sequence[float],
    width: int = 60,
    height: int = 10,
    label: str = "",
) -> str:
    """Raster a numeric series as an ASCII line chart.

    The x axis is the sample index (the series is resampled to
    ``width`` columns by bucket minimum, so downward spikes in a cost
    curve survive); the y axis is linear between the series' min and
    max, annotated on the left.  Trace summaries use this for the
    best-cost convergence curve.
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    values = [float(v) for v in values]
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    # Resample to `width` columns: each column shows its bucket's min.
    columns: List[float] = []
    n = len(values)
    for c in range(min(width, n)):
        start = c * n // min(width, n)
        end = max((c + 1) * n // min(width, n), start + 1)
        columns.append(min(values[start:end]))
    span = hi - lo
    raster = [[" "] * len(columns) for _ in range(height)]
    for c, v in enumerate(columns):
        level = 0.0 if span <= 0 else (v - lo) / span
        r = min(int(level * (height - 1) + 0.5), height - 1)
        raster[height - 1 - r][c] = "*"
    axis_labels = [f"{hi:.6g}"] + [""] * (height - 2) + [f"{lo:.6g}"]
    pad = max(len(s) for s in axis_labels)
    lines = [
        f"{axis_labels[r]:>{pad}} |" + "".join(raster[r])
        for r in range(height)
    ]
    footer = f"{'':>{pad}} +" + "-" * len(columns)
    tail = f"{'':>{pad}}  n={n}" + (f"  {label}" if label else "")
    return "\n".join(lines + [footer, tail])
