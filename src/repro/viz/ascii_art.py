"""Terminal rendering of floorplans and congestion maps.

Deliberately dependency-free: fixed-pitch character rasters good enough
to eyeball a packing or a hotspot in CI logs and doctest examples.
"""

from __future__ import annotations

from typing import List

from repro.congestion.base import CongestionMap
from repro.floorplan import Floorplan

__all__ = ["render_floorplan_ascii", "render_congestion_ascii"]

# Density ramp from cold to hot.
_RAMP = " .:-=+*#%@"


def render_floorplan_ascii(floorplan: Floorplan, width: int = 72) -> str:
    """Raster the floorplan; each module fills its outline with the
    first letter of its name, with ``#`` marking boundary collisions.

    ``width`` is the output character width; height follows the chip's
    aspect ratio (halved, since terminal cells are ~2x taller than
    wide).
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    chip = floorplan.chip
    if chip.width <= 0 or chip.height <= 0:
        raise ValueError("cannot render a degenerate chip")
    height = max(2, int(round(width * (chip.height / chip.width) * 0.5)))
    raster: List[List[str]] = [[" "] * width for _ in range(height)]
    for name, rect in floorplan.placements.items():
        c0 = int((rect.x_lo - chip.x_lo) / chip.width * width)
        c1 = int((rect.x_hi - chip.x_lo) / chip.width * width)
        r0 = int((rect.y_lo - chip.y_lo) / chip.height * height)
        r1 = int((rect.y_hi - chip.y_lo) / chip.height * height)
        c1 = min(max(c1, c0 + 1), width)
        r1 = min(max(r1, r0 + 1), height)
        fill = name[-1] if name[-1].isalnum() else name[0]
        for r in range(r0, r1):
            for c in range(c0, c1):
                cell = raster[r][c]
                raster[r][c] = fill if cell == " " else "#"
    # y grows upward on chips, downward on terminals: flip rows.
    lines = ["".join(row) for row in reversed(raster)]
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + line + "|" for line in lines] + [border])


def render_congestion_ascii(congestion_map: CongestionMap, width: int = 72) -> str:
    """Raster a congestion map as a density heat map.

    Each character samples the density of the cell under its center,
    normalized to the map's maximum; the ramp runs ``' '`` (cold) to
    ``'@'`` (hot).  Works for both fixed grids and IR-grids.
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    chip = congestion_map.chip
    if chip.width <= 0 or chip.height <= 0:
        raise ValueError("cannot render a degenerate chip")
    height = max(2, int(round(width * (chip.height / chip.width) * 0.5)))
    peak = congestion_map.max_density
    raster: List[List[str]] = [[" "] * width for _ in range(height)]
    if peak > 0:
        for cell in congestion_map.cells:
            level = cell.density / peak
            char = _RAMP[min(int(level * (len(_RAMP) - 1) + 0.5), len(_RAMP) - 1)]
            if char == " ":
                continue
            rect = cell.rect
            c0 = int((rect.x_lo - chip.x_lo) / chip.width * width)
            c1 = int((rect.x_hi - chip.x_lo) / chip.width * width)
            r0 = int((rect.y_lo - chip.y_lo) / chip.height * height)
            r1 = int((rect.y_hi - chip.y_lo) / chip.height * height)
            c1 = min(max(c1, c0 + 1), width)
            r1 = min(max(r1, r0 + 1), height)
            for r in range(r0, r1):
                for c in range(c0, c1):
                    raster[r][c] = char
    lines = ["".join(row) for row in reversed(raster)]
    border = "+" + "-" * width + "+"
    legend = f"density ramp '{_RAMP}' | peak density {peak:.4g}"
    return "\n".join(
        [border] + ["|" + line + "|" for line in lines] + [border, legend]
    )
