"""SVG rendering of floorplans and congestion maps.

Self-contained SVG strings (no external assets) for reports and
notebooks.  Coordinates are flipped so chip-y grows upward like every
floorplan figure in the literature.
"""

from __future__ import annotations

import html
from typing import List, Optional

from repro.congestion.base import CongestionMap
from repro.floorplan import Floorplan
from repro.geometry import Rect

__all__ = ["floorplan_svg", "congestion_svg", "irgrid_svg"]

_MODULE_FILL = "#8ab6d6"
_MODULE_STROKE = "#1f4e79"


def _header(chip: Rect, px_width: int) -> tuple:
    scale = px_width / chip.width
    px_height = max(1, int(round(chip.height * scale)))
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{px_width}" '
        f'height="{px_height}" viewBox="0 0 {px_width} {px_height}">'
    )
    return head, scale, px_height


def _rect_svg(
    rect: Rect,
    chip: Rect,
    scale: float,
    px_height: int,
    fill: str,
    stroke: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    x = (rect.x_lo - chip.x_lo) * scale
    y = px_height - (rect.y_hi - chip.y_lo) * scale
    w = max(rect.width * scale, 0.5)
    h = max(rect.height * scale, 0.5)
    stroke_attr = f' stroke="{stroke}" stroke-width="1"' if stroke else ""
    label = f"<title>{html.escape(title)}</title>" if title else ""
    return (
        f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
        f'fill="{fill}"{stroke_attr}>{label}</rect>'
    )


def floorplan_svg(floorplan: Floorplan, px_width: int = 640) -> str:
    """Render module outlines with hover-tooltips of names/sizes."""
    if px_width < 16:
        raise ValueError(f"px_width must be >= 16, got {px_width}")
    chip = floorplan.chip
    head, scale, px_height = _header(chip, px_width)
    parts: List[str] = [head]
    parts.append(
        _rect_svg(chip, chip, scale, px_height, "#f4f4f4", stroke="#444444")
    )
    for name, rect in sorted(floorplan.placements.items()):
        parts.append(
            _rect_svg(
                rect,
                chip,
                scale,
                px_height,
                _MODULE_FILL,
                stroke=_MODULE_STROKE,
                title=f"{name}: {rect.width:.1f} x {rect.height:.1f} um",
            )
        )
    parts.append("</svg>")
    return "".join(parts)


def congestion_svg(
    congestion_map: CongestionMap,
    px_width: int = 640,
    floorplan: Optional[Floorplan] = None,
) -> str:
    """Render a congestion heat map (white -> red by density), optionally
    with module outlines overlaid."""
    if px_width < 16:
        raise ValueError(f"px_width must be >= 16, got {px_width}")
    chip = congestion_map.chip
    head, scale, px_height = _header(chip, px_width)
    parts: List[str] = [head]
    peak = congestion_map.max_density
    for cell in congestion_map.cells:
        level = cell.density / peak if peak > 0 else 0.0
        parts.append(
            _rect_svg(
                cell.rect,
                chip,
                scale,
                px_height,
                _heat_color(level),
                title=f"density {cell.density:.4g}, mass {cell.mass:.4g}",
            )
        )
    if floorplan is not None:
        for name, rect in sorted(floorplan.placements.items()):
            parts.append(
                _rect_svg(
                    rect,
                    chip,
                    scale,
                    px_height,
                    "none",
                    stroke=_MODULE_STROKE,
                    title=name,
                )
            )
    parts.append("</svg>")
    return "".join(parts)


def irgrid_svg(
    irgrid,
    floorplan: Optional[Floorplan] = None,
    nets=None,
    px_width: int = 640,
) -> str:
    """Render an Irregular-Grid's cut lines (the paper's Figure 5).

    Optionally overlays the floorplan's module outlines and the nets'
    routing ranges (gray), showing how the ranges' boundaries become
    the partition.
    """
    if px_width < 16:
        raise ValueError(f"px_width must be >= 16, got {px_width}")
    chip = irgrid.chip
    head, scale, px_height = _header(chip, px_width)
    parts: List[str] = [head]
    parts.append(
        _rect_svg(chip, chip, scale, px_height, "#ffffff", stroke="#333333")
    )
    if nets:
        for net in nets:
            rng = net.routing_range
            clipped = chip.intersection(rng)
            if clipped is None:
                continue
            parts.append(
                _rect_svg(
                    clipped,
                    chip,
                    scale,
                    px_height,
                    "rgba(120,120,120,0.15)",
                    title=net.name,
                )
            )
    if floorplan is not None:
        for name, rect in sorted(floorplan.placements.items()):
            parts.append(
                _rect_svg(
                    rect,
                    chip,
                    scale,
                    px_height,
                    "none",
                    stroke=_MODULE_STROKE,
                    title=name,
                )
            )
    for x in irgrid.x_lines:
        px = (x - chip.x_lo) * scale
        parts.append(
            f'<line x1="{px:.2f}" y1="0" x2="{px:.2f}" y2="{px_height}" '
            f'stroke="#c03030" stroke-width="0.8"/>'
        )
    for y in irgrid.y_lines:
        py = px_height - (y - chip.y_lo) * scale
        parts.append(
            f'<line x1="0" y1="{py:.2f}" x2="{px_width}" y2="{py:.2f}" '
            f'stroke="#c03030" stroke-width="0.8"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _heat_color(level: float) -> str:
    """White (0) to saturated red (1)."""
    level = min(max(level, 0.0), 1.0)
    other = int(round(255 * (1.0 - level)))
    return f"rgb(255,{other},{other})"
