#!/usr/bin/env python
"""Search-driver determinism + fault-recovery smoke test (CI).

Two checks on a small synthetic circuit, both cheap enough for CI:

* **Tempering resume bit-identity.**  A straight 3-round replica-
  exchange run must equal a 2-round run that checkpoints, is reloaded
  through :func:`repro.engine.resume_driver`, and finishes the third
  round -- same per-replica costs, same swap ledger (every proposed
  swap's uniforms included), same winner.  A divergence means the
  driver checkpoint misses scheduler state (swap RNG, ladder,
  replica RNGs).

* **Portfolio crash recovery.**  A portfolio run on a two-process pool
  with one leg hard-killed (``os._exit`` via the deterministic fault
  harness in :mod:`repro.testing.faults`) must retry the affected legs
  and deliver the unfaulted sequential run's exact costs and
  allocation ledger, with the crash recorded in the charged legs'
  :class:`~repro.engine.RunReport` entries.

Exits non-zero on any mismatch.  ``--out`` writes a JSON summary
(atomically) whose reports are the structured ``RunReport.to_json``
payloads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import (  # noqa: E402
    DriverConfig,
    ObjectiveSpec,
    make_driver,
    resume_driver,
)
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402
from repro.testing import FaultSpec  # noqa: E402

# Fire inside round 1's second job, pool attempt 0.  Driver supervision
# keys are round * 1000 + index, so this targets exactly one (round,
# leg) and the retry (attempt 1) runs clean.
CRASH_KEY = 1001


def _base_config(netlist, **overrides):
    defaults = dict(
        netlist=netlist,
        restarts=3,
        seed=11,
        objective_spec=ObjectiveSpec(
            alpha=1.0, beta=1.0, gamma=1.0, congestion_grid_size=30.0
        ),
        moves_per_temperature=15,
        retry_backoff=0.0,
    )
    defaults.update(overrides)
    return DriverConfig(**defaults)


def check_tempering_resume(netlist, failures):
    straight = make_driver("tempering", _base_config(netlist, rounds=3)).run()
    with TemporaryDirectory() as tmp:
        path = Path(tmp) / "tempering.ckpt"
        make_driver(
            "tempering",
            _base_config(netlist, rounds=2, checkpoint_path=str(path)),
        ).run()
        driver, state = resume_driver(path, rounds=3)
        resumed = driver.run(resume_state=state)

    print(f"tempering straight costs: {straight.costs}")
    print(f"tempering resumed costs : {resumed.costs}")
    if resumed.costs != straight.costs:
        failures.append("tempering: resumed costs differ from straight run")
    if resumed.ledger["swaps"] != straight.ledger["swaps"]:
        failures.append("tempering: resumed swap ledger diverged")
    if resumed.best.seed != straight.best.seed:
        failures.append("tempering: resumed winner differs")
    return straight, resumed


def check_portfolio_crash_recovery(netlist, failures):
    clean = make_driver(
        "portfolio", _base_config(netlist, rounds=2, workers=1)
    ).run()
    fault = FaultSpec(kind="crash", seed=CRASH_KEY, attempt=0, mode="pool")
    faulted = make_driver(
        "portfolio",
        _base_config(netlist, rounds=2, workers=2, inject_fault=fault),
    ).run()

    print(f"portfolio clean costs  : {clean.costs}")
    print(f"portfolio faulted costs: {faulted.costs}")
    if faulted.costs != clean.costs:
        failures.append("portfolio: costs differ after crash recovery")
    if faulted.ledger != clean.ledger:
        failures.append("portfolio: allocation ledger differs after crash")
    # A pool-worker crash takes the whole round's in-flight legs down
    # with it; the supervisor charges each of them a "crash" failure
    # and retries them all.  Every charged leg must have recovered.
    crashed = [
        r
        for r in faulted.reports
        if any(f.kind == "crash" for f in r.failures)
    ]
    if not crashed:
        failures.append(
            "portfolio: injected crash missing from the run reports"
        )
    elif any(r.status != "ok" or r.attempts < 2 for r in crashed):
        failures.append(
            "portfolio: a crash-charged leg did not recover on retry"
        )
    return clean, faulted


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None, help="write a JSON summary here"
    )
    args = parser.parse_args(argv)

    netlist = random_circuit(10, 24, seed=3)
    failures: list[str] = []

    straight, resumed = check_tempering_resume(netlist, failures)
    clean, faulted = check_portfolio_crash_recovery(netlist, failures)

    if args.out is not None:
        atomic_write_json(
            args.out,
            {
                "check": "search-driver determinism + fault recovery",
                "tempering": {
                    "straight_costs": straight.costs,
                    "resumed_costs": resumed.costs,
                    "swaps": resumed.ledger["swaps"],
                    "resume_identical": resumed.costs == straight.costs,
                },
                "portfolio": {
                    "clean_costs": clean.costs,
                    "faulted_costs": faulted.costs,
                    "reports": [r.to_json() for r in faulted.reports],
                    "recovered_identical": faulted.costs == clean.costs,
                },
                "failures": failures,
                "ok": not failures,
            },
        )
        print(f"wrote {args.out}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("ok: driver resume is bit-identical and crash recovery is exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
