#!/usr/bin/env python
"""Floorplanning-service smoke test (CI): faults, SIGTERM, identity.

The full service story on one small machine, end to end:

1. start a service (2 pool workers) on a fresh root and submit **8
   jobs with mixed priorities across 2 tenants** through the HTTP
   client -- one of them armed with a deterministic worker **kill**
   (``os._exit`` at a chosen temperature step, via
   :class:`repro.testing.faults.JobFault`);
2. deliver a real **SIGTERM** mid-run; the handler drains the
   service -- running jobs checkpoint and requeue, the journal
   compacts, readiness goes 503 -- and the process would exit cleanly;
3. **restart** a brand-new service on the same root (the journal
   replays; requeued jobs resume their checkpoints) and wait for every
   job to finish;
4. assert all 8 results are **bit-identical** to direct, uninterrupted
   :class:`~repro.engine.engine.AnnealEngine` runs of the same specs --
   the kill, the drain, and the restart must leave no trace in any
   answer;
5. validate the ``/metrics`` snapshot shape and each job's supervision
   report.

Exits non-zero on any violation.  ``--out`` writes a JSON summary
atomically.  Gates are structural (states, identity, report kinds) --
never wall-clock.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import dumps_yal  # noqa: E402
from repro.engine.engine import AnnealEngine  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402
from repro.service import (  # noqa: E402
    FloorplanService,
    JobSpec,
    ServiceClient,
    ServiceThread,
    result_payload,
)
from repro.testing.faults import JobFault  # noqa: E402

N_JOBS = 8
KILLED_JOB = "j000003"  # submission order is deterministic


def make_specs() -> list[dict]:
    """8 specs: two tenants, priorities 0/3/7, distinct seeds (distinct
    content -- no accidental cache hits), two heavier jobs so the
    SIGTERM lands while something is genuinely running."""
    yal = dumps_yal(random_circuit(6, 8, seed=3))
    # Priorities chosen so the killed job (index 2) lands in the first
    # claimed batch and the two heavier jobs run in later batches --
    # the SIGTERM then interrupts heavy work *after* the crash/retry
    # story has fully played out (its report must survive to the end).
    priorities = [0, 3, 7, 7, 3, 3, 0, 0]
    specs = []
    for i in range(N_JOBS):
        heavier = i in (4, 5)
        specs.append(
            {
                "netlist_yal": yal,
                "seed": 100 + i,
                "max_steps": 300 if heavier else 12,
                "moves_per_temperature": 150 if heavier else 20,
                "checkpoint_every": 1,
                "priority": priorities[i],
                "tenant": ("acme", "zenith")[i % 2],
                "idempotency_key": f"smoke-{i}",
            }
        )
    return specs


def direct_result(spec_json: dict) -> dict:
    spec = JobSpec.from_json(spec_json)
    engine = AnnealEngine(
        spec.build_netlist(),
        representation=spec.representation,
        objective_spec=spec.objective_spec(),
        seed=spec.seed,
        moves_per_temperature=spec.moves_per_temperature,
        schedule=spec.schedule(),
    )
    return result_payload(engine.run(), spec)


def check_metrics_shape(
    snapshot: dict, counter: str, minimum: int, failures: list[str]
) -> None:
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            failures.append(f"metrics snapshot missing {section!r}")
    observed = snapshot.get("counters", {}).get(counter, 0)
    if observed < minimum:
        failures.append(
            f"metrics counter {counter} = {observed}, wanted >= {minimum}"
        )


def run_smoke(root: Path, out: Path | None) -> int:
    failures: list[str] = []
    specs = make_specs()

    # -- phase 1: serve, kill a worker, SIGTERM mid-run ---------------
    term = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda *_: term.set())
    service = FloorplanService(root, workers=2, heartbeat_timeout=30.0)
    service.fleet.faults[KILLED_JOB] = JobFault(
        kind="crash", attempt=0, mode="pool", at_step=3
    )
    thread = ServiceThread(service).start()
    client = ServiceClient(port=thread.port)

    job_ids = [client.submit(spec)["job_id"] for spec in specs]
    if job_ids[2] != KILLED_JOB:
        failures.append(f"expected third job {KILLED_JOB}, got {job_ids[2]}")

    # Let the crash/retry story finish and the fleet get into heavier
    # work, then terminate ourselves mid-run.
    heavy_ids = [job_ids[4], job_ids[5]]
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        killed_done = client.status(KILLED_JOB)["state"] == "done"
        heavy_running = any(
            client.status(j)["state"] == "running" for j in heavy_ids
        )
        if killed_done and heavy_running:
            break
        time.sleep(0.05)
    else:
        failures.append("never saw killed job done + a heavy job running")
    check_metrics_shape(
        client.metrics(), "service_jobs_submitted", N_JOBS, failures
    )
    os.kill(os.getpid(), signal.SIGTERM)
    if not term.wait(timeout=10):
        failures.append("SIGTERM handler never fired")
    signal.signal(signal.SIGTERM, previous)
    service.drain()  # what `floorplan serve`'s signal path does
    ready, ready_payload = client.readyz()
    if ready or not ready_payload.get("draining"):
        failures.append(f"readyz should be 503/draining, got {ready_payload}")
    thread.stop(drain=False)
    interrupted = [
        j
        for j in job_ids
        if service.queue.get(j).state in ("queued", "running")
    ]
    print(f"phase 1: drained with {len(interrupted)} job(s) interrupted")

    # -- phase 2: restart on the same root, finish everything ---------
    service2 = FloorplanService(root, workers=2, heartbeat_timeout=30.0)
    recovered = list(service2.queue.recovered_jobs)
    thread2 = ServiceThread(service2).start()
    client2 = ServiceClient(port=thread2.port)
    results = {}
    try:
        for job_id in job_ids:
            results[job_id] = client2.wait(job_id, timeout=300)
    except Exception as exc:
        failures.append(f"job did not finish after restart: {exc}")
    check_metrics_shape(client2.metrics(), "service_jobs_done", 1, failures)
    thread2.stop(drain=True)

    # -- identity + report gates --------------------------------------
    killed_report = service2.queue.get(KILLED_JOB).report or {}
    kinds = [f["kind"] for f in killed_report.get("failures", [])]
    if "crash" not in kinds:
        failures.append(
            f"killed job's report never recorded the crash: {kinds}"
        )
    agree = 0
    for job_id, spec in zip(job_ids, specs):
        if job_id not in results:
            continue
        expected = direct_result(spec)
        if results[job_id] == expected:
            agree += 1
        else:
            failures.append(
                f"{job_id}: service result differs from direct engine run"
            )
    results_agree = agree == N_JOBS

    report = {
        "ok": not failures,
        "failures": failures,
        "n_jobs": N_JOBS,
        "killed_job": KILLED_JOB,
        "crash_kinds": kinds,
        "interrupted_by_sigterm": interrupted,
        "recovered_on_restart": recovered,
        "results_agree": results_agree,
    }
    if out is not None:
        atomic_write_json(out, report)
    print(
        f"phase 2: {agree}/{N_JOBS} results bit-identical to direct runs; "
        f"recovered on restart: {recovered or 'none'}"
    )
    if failures:
        print("FAILURES:", *failures, sep="\n  ")
        return 1
    print("service smoke ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="service root directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write a JSON summary here"
    )
    args = parser.parse_args(argv)
    root = args.root or Path(tempfile.mkdtemp(prefix="service-smoke-"))
    return run_smoke(root, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
