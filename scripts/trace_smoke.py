#!/usr/bin/env python
"""Observability smoke test (CI): traced runs, schema, summarizer.

Three checks on a small synthetic circuit, all through the real CLI
(:func:`repro.cli.main`), cheap enough for CI:

* **Trace transparency.**  A ``--trace``/``--metrics-every`` run of
  each search driver (tempering and portfolio) must print exactly the
  untraced run's report -- observability may add its own "wrote
  trace" line but must never change a cost, a swap ledger or an
  allocation decision.

* **Schema round-trip.**  Every line of both trace files must pass the
  strict :mod:`repro.obs.schema` validator, and the files must carry
  the driver's scheduling evidence: proposed swaps and replica
  progress for tempering, leg plans and per-round allocations for the
  portfolio.

* **Summarizer.**  ``floorplan trace`` must render phase attribution
  and the convergence table from each file, and its ``--json`` image
  must agree with the validator's event count.

Exits non-zero on any mismatch.  ``--out`` writes a JSON summary
(atomically) with per-driver event counts and the summarizer images.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.data import write_yal  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402
from repro.obs import summarize_trace, validate_trace_file  # noqa: E402


def _run_cli(argv):
    """Run the CLI capturing stdout; raises on nonzero exit."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = cli_main(argv)
    output = buffer.getvalue()
    if code != 0:
        raise RuntimeError(f"cli {argv} exited {code}:\n{output}")
    return output


def _report_lines(output):
    """The run's deterministic report: every line except the trace
    pointer observability adds."""
    return [
        line
        for line in output.splitlines()
        if not line.startswith("wrote trace to ")
    ]


def _check_driver(driver, circuit, trace_path, rounds, restarts, failures):
    base = [
        "floorplan", str(circuit), "--driver", driver,
        "--restarts", str(restarts), "--rounds", str(rounds),
        "--seed", "1",
    ]
    plain = _run_cli(base)
    traced = _run_cli(
        base + ["--trace", str(trace_path), "--metrics-every", "1"]
    )
    if _report_lines(plain) != _report_lines(traced):
        failures.append(
            f"{driver}: traced run changed the report\n"
            f"--- untraced ---\n{plain}\n--- traced ---\n{traced}"
        )

    n_events = validate_trace_file(trace_path)  # raises on schema breach
    summary = summarize_trace(trace_path)
    if summary.n_events != n_events:
        failures.append(
            f"{driver}: summarizer saw {summary.n_events} events, "
            f"validator {n_events}"
        )
    if not summary.progress:
        failures.append(f"{driver}: no progress snapshots reached the trace")
    if "span:round" not in summary.event_counts:
        failures.append(f"{driver}: round spans missing from the trace")
    if driver == "tempering" and summary.swaps_proposed < 1:
        failures.append("tempering: no swap events in the trace")
    if driver == "portfolio":
        for required in ("event:leg_planned", "event:allocation"):
            if required not in summary.event_counts:
                failures.append(f"portfolio: {required} missing from trace")

    rendered = _run_cli(["trace", str(trace_path)])
    for needle in ("phase time attribution", "convergence", "best cost"):
        if needle not in rendered:
            failures.append(
                f"{driver}: summary output lacks {needle!r}:\n{rendered}"
            )
    machine = json.loads(_run_cli(["trace", str(trace_path), "--json"]))
    if machine["n_events"] != n_events:
        failures.append(
            f"{driver}: --json n_events {machine['n_events']} != {n_events}"
        )
    return {"n_events": n_events, "summary": machine}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--restarts", type=int, default=3)
    parser.add_argument(
        "--out", type=Path, default=None, help="write a JSON report here"
    )
    args = parser.parse_args(argv)

    failures = []
    report = {"ok": False, "failures": failures}
    with TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        circuit = tmp / "tiny.yal"
        write_yal(random_circuit(8, 20, seed=3), circuit)
        for driver in ("tempering", "portfolio"):
            print(f"== {driver} ==")
            report[driver] = _check_driver(
                driver,
                circuit,
                tmp / f"{driver}.jsonl",
                args.rounds,
                args.restarts,
                failures,
            )
            print(
                f"{driver}: {report[driver]['n_events']} trace events, "
                f"{len(failures)} failure(s) so far"
            )
    report["ok"] = not failures
    if args.out is not None:
        atomic_write_json(args.out, report, indent=2)
        print(f"wrote {args.out}")
    if failures:
        print("TRACE SMOKE FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("trace smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
