"""Render the paper's figures as SVG files.

Produces, under ``benchmarks/results/figures/``:

* ``figure8b.svg`` / ``figure8d.svg`` -- exact vs approximate
  Function (1) (paper Figure 8);
* ``figure9.svg`` -- the three Experiment-2 curves, min-max normalized
  for shape comparison (the paper rescales curve B by 2.5 for the same
  purpose);
* ``figure5.svg`` -- the Irregular-Grid partition over a real
  floorplan (cut lines + routing ranges);
* ``figure3_*.svg`` / ``figure4_*.svg`` -- the motivation examples'
  congestion heat maps at two pitches.

Run:  python scripts/make_figures.py  [--profile smoke|quick|paper]
"""

import os
import sys
from pathlib import Path

from repro.congestion import FixedGridModel
from repro.experiments.config import active_profile
from repro.experiments.exp2 import run_experiment2
from repro.experiments.figures import figure8_default_cases, motivation_nets
from repro.viz import congestion_svg, irgrid_svg, line_chart_svg

OUT = Path(__file__).resolve().parent.parent / "benchmarks" / "results" / "figures"


def figure8(out: Path) -> None:
    case_b, case_d = figure8_default_cases()
    for label, series in (("figure8b", case_b), ("figure8d", case_d)):
        xs = [p.x for p in series]
        exact = [p.exact for p in series]
        # Plot the approximation only where it exists; SVG charts need
        # aligned series, so missing points repeat the exact value and
        # the caption explains the error grid.
        approx = [p.exact if p.approx is None else p.approx for p in series]
        svg = line_chart_svg(
            {"exact Function (1)": exact, "normal approximation": approx},
            x_values=xs,
            title=f"Figure 8 {label[-1]}: 31x21 type-I routing range",
            x_label="x (unit-grid column)",
            y_label="crossing mass",
        )
        (out / f"{label}.svg").write_text(svg)
        print(f"wrote {out / (label + '.svg')}")


def figure9(out: Path) -> None:
    profile = active_profile()
    result = run_experiment2("ami33", profile, seed=0)
    svg = line_chart_svg(
        {
            "A: IR-grid cost": result.ir_costs,
            "B: judge 10um": result.fine_judging_costs,
            "C: judge 50um": result.coarse_judging_costs,
        },
        title=f"Figure 9 (ami33, {profile.name} profile; min-max normalized)",
        x_label="temperature step",
        y_label="normalized congestion cost",
        normalize=True,
    )
    (out / "figure9.svg").write_text(svg)
    print(f"wrote {out / 'figure9.svg'}")


def figure5(out: Path) -> None:
    """The Irregular-Grid partition of a real floorplan."""
    import random

    from repro import assign_pins, evaluate_polish, initial_expression, load_mcnc
    from repro.congestion import build_irgrid

    circuit = load_mcnc("hp")
    modules = {m.name: m for m in circuit.modules}
    rng = random.Random(0)
    expr = initial_expression(list(modules), rng)
    for _ in range(10 * len(modules)):
        expr = expr.random_neighbor(rng)
    floorplan = evaluate_polish(expr, modules)
    assignment = assign_pins(floorplan, circuit, 30.0)
    irgrid = build_irgrid(floorplan.chip, assignment.two_pin_nets, 30.0)
    path = out / "figure5.svg"
    path.write_text(
        irgrid_svg(
            irgrid,
            floorplan=floorplan,
            nets=assignment.two_pin_nets[:25],
            px_width=720,
        )
    )
    print(f"wrote {path}")


def motivation(out: Path) -> None:
    for case, shapes in (("figure3", (4, 6)), ("figure4", (6, 12))):
        chip, nets = motivation_nets(case)
        for cells in shapes:
            model = FixedGridModel(chip.width / cells)
            cmap = model.evaluate(chip, nets)
            path = out / f"{case}_{cells}cols.svg"
            path.write_text(congestion_svg(cmap, px_width=540))
            print(f"wrote {path}")


def main() -> int:
    if "--profile" in sys.argv:
        os.environ["REPRO_PROFILE"] = sys.argv[sys.argv.index("--profile") + 1]
    OUT.mkdir(parents=True, exist_ok=True)
    figure8(OUT)
    figure5(OUT)
    motivation(OUT)
    figure9(OUT)
    return 0


if __name__ == "__main__":
    sys.exit(main())
