"""Resumable full-experiment runner.

Runs the paper's three experiments at the profile selected by
REPRO_PROFILE / REPRO_SEEDS, one step per invocation argument, writing
each artifact to benchmarks/results/ as it completes:

    python scripts/run_experiments.py exp1 apte      # one circuit
    python scripts/run_experiments.py exp2           # figure 9
    python scripts/run_experiments.py exp3           # tables 4-5
    python scripts/run_experiments.py render1        # merge exp1 rows

Each step stays well inside a CI timeout; `render1` merges the
per-circuit exp1 pickles into the Tables 1-3 text artifacts.
"""

import pickle
import sys
from pathlib import Path

from repro.experiments.config import active_profile
from repro.experiments.exp1 import format_experiment1, run_experiment1
from repro.experiments.exp2 import format_experiment2, run_experiment2
from repro.experiments.exp3 import format_experiment3, run_experiment3

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
PARTS = RESULTS / "exp1_parts"


def main() -> int:
    RESULTS.mkdir(parents=True, exist_ok=True)
    profile = active_profile()
    step = sys.argv[1]
    if step == "exp1":
        circuit = sys.argv[2]
        PARTS.mkdir(parents=True, exist_ok=True)
        rows = run_experiment1((circuit,), profile)
        with open(PARTS / f"{circuit}.pkl", "wb") as fh:
            pickle.dump(rows, fh)
        print(f"exp1[{circuit}] done ({profile.name}, {profile.n_seeds} seeds)")
    elif step == "render1":
        merged = {}
        for path in sorted(PARTS.glob("*.pkl")):
            with open(path, "rb") as fh:
                merged.update(pickle.load(fh))
        text = format_experiment1(merged)
        (RESULTS / f"exp1_{profile.name}.txt").write_text(text + "\n")
        print(text)
    elif step == "exp2":
        result = run_experiment2("ami33", profile, seed=0)
        text = format_experiment2(result)
        (RESULTS / f"figure9_{profile.name}.txt").write_text(text + "\n")
        print(text)
    elif step == "exp3":
        rows = run_experiment3("ami33", profile)
        text = format_experiment3(rows, "ami33")
        (RESULTS / f"exp3_{profile.name}.txt").write_text(text + "\n")
        print(text)
    else:
        raise SystemExit(f"unknown step {step!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
