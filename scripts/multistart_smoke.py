#!/usr/bin/env python
"""Multi-start determinism smoke test (CI).

Runs a small synthetic circuit through :class:`MultiStartEngine` twice
with the same seeds -- once sequentially (``workers=1``) and once over a
two-process pool (``workers=2``) -- and asserts the per-restart costs
and the winning restart are bit-identical.  Because every restart owns a
fresh :class:`CacheContext` and caches are value-transparent, the pool
must not change any result; a divergence means shared mutable state
leaked between restarts.

Exits non-zero on any mismatch.  Cheap enough for CI (a few seconds).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import MultiStartEngine, ObjectiveSpec  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402


def run_smoke(representation: str, restarts: int, workers: int) -> int:
    netlist = random_circuit(10, 24, seed=3)
    spec = ObjectiveSpec(alpha=1.0, beta=1.0, gamma=0.0, pin_grid_size=30.0)

    def engine(n_workers: int) -> MultiStartEngine:
        return MultiStartEngine(
            netlist,
            representation=representation,
            restarts=restarts,
            seed=11,
            objective_spec=spec,
            moves_per_temperature=30,
            workers=n_workers,
        )

    sequential = engine(1).run()
    pooled = engine(workers).run()

    seq_costs = [r.cost for r in sequential.results]
    pool_costs = [r.cost for r in pooled.results]
    print(f"sequential costs: {seq_costs}")
    print(f"pooled costs    : {pool_costs}")

    failures = []
    if seq_costs != pool_costs:
        failures.append("per-restart costs differ between workers=1 and pool")
    if sequential.best.seed != pooled.best.seed:
        failures.append(
            f"winning seed differs: sequential {sequential.best.seed} "
            f"vs pooled {pooled.best.seed}"
        )
    if sequential.best.cost != pooled.best.cost:
        failures.append("best cost differs between workers=1 and pool")
    if len({r.seed for r in sequential.results}) != restarts:
        failures.append("restart seeds are not distinct")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(
        f"OK: {restarts} restarts x {representation!r} deterministic across "
        f"{workers} workers; best seed {sequential.best.seed} "
        f"cost {sequential.best.cost:.12g}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repr", dest="representation", default="polish",
                        choices=("polish", "sp", "btree"))
    parser.add_argument("--restarts", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    return run_smoke(args.representation, args.restarts, args.workers)


if __name__ == "__main__":
    sys.exit(main())
