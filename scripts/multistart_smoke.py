#!/usr/bin/env python
"""Multi-start determinism + supervision smoke test (CI).

Runs a small synthetic circuit through :class:`MultiStartEngine` twice
with the same seeds -- once sequentially (``workers=1``) and once over a
two-process pool (``workers=2``) -- and asserts the per-restart costs
and the winning restart are bit-identical.  Because every restart owns a
fresh :class:`CacheContext` and caches are value-transparent, the pool
must not change any result; a divergence means shared mutable state
leaked between restarts.

With ``--inject-crash``, the pooled run's first restart is killed with
``os._exit`` on its first attempt (via the deterministic fault harness
in :mod:`repro.testing.faults`); the supervisor must retry it, every
restart must still deliver the sequential run's exact costs, and the
crash must appear in the restart's :class:`RunReport`.

Exits non-zero on any mismatch.  ``--out`` writes a JSON summary
(atomically -- a killed run never leaves a truncated file).  Cheap
enough for CI (a few seconds).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import MultiStartEngine, ObjectiveSpec  # noqa: E402
from repro.ioutil import atomic_write_json  # noqa: E402
from repro.netlist import random_circuit  # noqa: E402
from repro.testing import FaultSpec  # noqa: E402


def run_smoke(
    representation: str,
    restarts: int,
    workers: int,
    inject_crash: bool = False,
    out: Path | None = None,
) -> int:
    netlist = random_circuit(10, 24, seed=3)
    spec = ObjectiveSpec(alpha=1.0, beta=1.0, gamma=0.0, pin_grid_size=30.0)
    first_seed = 11
    fault = (
        FaultSpec(kind="crash", seed=first_seed, attempt=0, mode="pool")
        if inject_crash
        else None
    )

    def engine(n_workers: int) -> MultiStartEngine:
        return MultiStartEngine(
            netlist,
            representation=representation,
            restarts=restarts,
            seed=first_seed,
            objective_spec=spec,
            moves_per_temperature=30,
            workers=n_workers,
            inject_fault=fault if n_workers > 1 else None,
            retry_backoff=0.0,
        )

    sequential = engine(1).run()
    pooled = engine(workers).run()

    seq_costs = [r.cost for r in sequential.results]
    pool_costs = [r.cost for r in pooled.results]
    print(f"sequential costs: {seq_costs}")
    print(f"pooled costs    : {pool_costs}")

    failures = []
    if seq_costs != pool_costs:
        failures.append("per-restart costs differ between workers=1 and pool")
    if sequential.best.seed != pooled.best.seed:
        failures.append(
            f"winning seed differs: sequential {sequential.best.seed} "
            f"vs pooled {pooled.best.seed}"
        )
    if sequential.best.cost != pooled.best.cost:
        failures.append("best cost differs between workers=1 and pool")
    if len({r.seed for r in sequential.results}) != restarts:
        failures.append("restart seeds are not distinct")
    if inject_crash:
        crashed = [
            rep
            for rep in pooled.reports
            if any(f.kind == "crash" for f in rep.failures)
        ]
        if not crashed:
            failures.append(
                "injected crash left no crash entry in any RunReport"
            )
        else:
            for rep in crashed:
                print(f"supervised: {rep.summary()}")
        if any(rep.status != "ok" for rep in pooled.reports):
            failures.append(
                "a restart did not recover from the injected crash: "
                + "; ".join(r.summary() for r in pooled.reports)
            )

    if out is not None:
        atomic_write_json(
            out,
            {
                "representation": representation,
                "restarts": restarts,
                "workers": workers,
                "inject_crash": inject_crash,
                "sequential_costs": seq_costs,
                "pooled_costs": pool_costs,
                "best_seed": sequential.best.seed,
                "best_cost": sequential.best.cost,
                "pool_rebuilds": pooled.pool_rebuilds,
                "degraded": pooled.degraded,
                "reports": [r.summary() for r in pooled.reports],
                "ok": not failures,
                "failures": failures,
            },
        )
        print(f"wrote {out}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(
        f"OK: {restarts} restarts x {representation!r} deterministic across "
        f"{workers} workers; best seed {sequential.best.seed} "
        f"cost {sequential.best.cost:.12g}"
        + (" (injected crash supervised)" if inject_crash else "")
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repr", dest="representation", default="polish",
                        choices=("polish", "sp", "btree"))
    parser.add_argument("--restarts", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--inject-crash",
        action="store_true",
        help="kill the pooled run's first restart on attempt 0 and "
        "require supervised recovery with identical results",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write a JSON summary here (atomic write-temp-then-rename)",
    )
    args = parser.parse_args(argv)
    return run_smoke(
        args.representation,
        args.restarts,
        args.workers,
        inject_crash=args.inject_crash,
        out=args.out,
    )


if __name__ == "__main__":
    sys.exit(main())
