"""Library-wide API hygiene: docstrings and ``__all__`` integrity.

These meta-tests keep the public surface honest as the library grows:
every module, public class and public function carries a docstring, and
every name exported via ``__all__`` actually exists.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_names_resolve(module):
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # Only enforce on objects defined in this package.
            if getattr(obj, "__module__", "").startswith("repro"):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module.__name__}.{name} lacks a docstring"
                )


def test_public_classes_have_documented_public_methods():
    undocumented = []
    seen = set()
    for module in MODULES:
        for name in getattr(module, "__all__", ()):
            obj = getattr(module, name)
            if not inspect.isclass(obj) or obj in seen:
                continue
            if not getattr(obj, "__module__", "").startswith("repro"):
                continue
            seen.add(obj)
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    undocumented.append(f"{obj.__name__}.{attr_name}")
    # Simple accessors (properties) are exempt; methods are not.
    assert not undocumented, f"undocumented public methods: {undocumented}"
